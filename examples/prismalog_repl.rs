//! A tiny interactive shell for the PRISMA machine: SQL statements and
//! PRISMAlog programs/queries against the same fragmented relations.
//!
//! ```sh
//! cargo run --release --example prismalog_repl
//! ```
//!
//! Commands:
//! * any SQL statement ending in `;` — executed via the SQL front end;
//! * `rule <clause>` — add a PRISMAlog rule to the session program;
//! * `?- query(...)` — answer a PRISMAlog query with the session rules;
//! * `rules` / `clear` — show or reset the session program;
//! * `explain <query>;` — show optimizer output;
//! * `quit`.

use std::io::{BufRead, Write};

use prisma::{PrismaMachine, QueryOutcome};

fn main() -> prisma::Result<()> {
    let db = PrismaMachine::builder().pes(16).build()?;
    println!("PRISMA database machine — 16 PEs. Type `quit` to exit.");
    println!("Pre-loading demo relation: parent(p, c)…");
    db.sql("CREATE TABLE parent (p STRING, c STRING) FRAGMENTED BY HASH(p) INTO 4")?;
    db.sql(
        "INSERT INTO parent VALUES ('ann','bob'), ('bob','carol'), ('carol','dave'), \
         ('ann','eve'), ('eve','frank')",
    )?;

    let mut program = String::new();
    let stdin = std::io::stdin();
    loop {
        print!("prisma> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "quit" | "exit" => break,
            "rules" => {
                println!("{}", if program.is_empty() { "(none)" } else { &program });
                continue;
            }
            "clear" => {
                program.clear();
                continue;
            }
            _ => {}
        }
        let result = if let Some(rule) = line.strip_prefix("rule ") {
            program.push_str(rule);
            program.push('\n');
            // Validate eagerly so mistakes surface immediately.
            prisma::prismalog::parse_program(&program)
                .map(|_| println!("ok ({} clauses)", program.lines().count()))
                .inspect_err(|_e| {
                    // Roll the bad rule back.
                    let keep: Vec<&str> = program.lines().collect();
                    program = keep[..keep.len() - 1].join("\n");
                    if !program.is_empty() {
                        program.push('\n');
                    }
                })
        } else if line.starts_with("?-") {
            db.prismalog(&program, line).map(|rows| println!("{rows}"))
        } else if let Some(q) = line.strip_prefix("explain ") {
            db.explain(q.trim_end_matches(';'))
                .map(|plan| println!("{plan}"))
        } else {
            db.sql(line.trim_end_matches(';')).map(|out| match out {
                QueryOutcome::Rows(r) => println!("{r}"),
                QueryOutcome::Affected(n) => println!("{n} row(s) affected"),
                QueryOutcome::Done => println!("ok"),
            })
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
    }
    db.shutdown();
    Ok(())
}
