//! E1 — the paper's interconnect simulation (§3.2).
//!
//! "Various simulations show an average network throughput of up to
//! 20.000 packets (of 256 bits) per second for each processing element
//! simultaneously." This example re-runs that simulation: an offered-load
//! sweep of uniform random traffic on the 64-PE machine, for both the
//! mesh and the chordal-ring topology.
//!
//! ```sh
//! cargo run --release --example network_sim
//! ```

use prisma::multicomputer::traffic::{throughput_sweep, TrafficPattern};
use prisma::{MachineConfig, TopologyKind};

fn main() {
    let rates = [
        2_000.0, 5_000.0, 10_000.0, 15_000.0, 20_000.0, 25_000.0, 30_000.0, 40_000.0,
    ];
    for (label, topology) in [
        ("8x8 mesh", TopologyKind::Mesh),
        ("chordal ring (stride 8)", TopologyKind::ChordalRing { stride: 8 }),
    ] {
        let cfg = MachineConfig::paper_prototype().with_topology(topology);
        println!("\n== {label}: 64 PEs, 4 x 10 Mbit/s links, 256-bit packets ==");
        println!(
            "{:>14} {:>16} {:>14} {:>16}",
            "offered/PE", "delivered/PE", "latency µs", "queue-wait µs"
        );
        let points = throughput_sweep(&cfg, TrafficPattern::UniformRandom, &rates, 20, 80, 42);
        let mut peak: f64 = 0.0;
        for p in &points {
            peak = peak.max(p.delivered_pps);
            println!(
                "{:>14.0} {:>16.0} {:>14.1} {:>16.1}",
                p.offered_pps, p.delivered_pps, p.mean_latency_us, p.mean_queue_wait_us
            );
        }
        println!(
            "saturation throughput ≈ {:.0} packets/s per PE (paper: \"up to 20.000\")",
            peak
        );
    }
}
