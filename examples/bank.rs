//! Bank transfers: distributed transactions with strict 2PL and two-phase
//! commit across fragments on different PEs.
//!
//! Demonstrates the paper's claim that "evaluation of several queries and
//! updates can be done in parallel, except for accesses to the same copy
//! of base fragments" — concurrent transfer streams keep total balance
//! invariant.
//!
//! ```sh
//! cargo run --release --example bank
//! ```

use std::sync::Arc;

use prisma::workload::{accounts_rows, transfer_stream, values_clause};
use prisma::{PrismaMachine, Value};

fn main() -> prisma::Result<()> {
    let db = Arc::new(PrismaMachine::builder().pes(16).build()?);
    db.sql("CREATE TABLE accounts (id INT, branch INT, balance INT) FRAGMENTED BY HASH(id) INTO 8")?;

    let n_accounts = 200;
    let initial = 1_000;
    let rows = accounts_rows(n_accounts, 10, initial);
    db.sql(&format!(
        "INSERT INTO accounts VALUES {}",
        values_clause(&rows)
    ))?;
    let expected_total = (n_accounts as i64) * initial;
    println!("loaded {n_accounts} accounts, total balance {expected_total}");

    // Four concurrent clients, each running a stream of transfers as
    // explicit transactions (debit + credit, then 2PC commit).
    let mut handles = Vec::new();
    for client in 0..4u64 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let transfers = transfer_stream(n_accounts, 50, client);
            let mut committed = 0;
            let mut aborted = 0;
            for t in transfers {
                let txn = db.begin();
                let res = db
                    .sql_in(
                        txn,
                        &format!(
                            "UPDATE accounts SET balance = balance - {} WHERE id = {}",
                            t.amount, t.from
                        ),
                    )
                    .and_then(|_| {
                        db.sql_in(
                            txn,
                            &format!(
                                "UPDATE accounts SET balance = balance + {} WHERE id = {}",
                                t.amount, t.to
                            ),
                        )
                    });
                match res {
                    Ok(_) => {
                        db.commit(txn).expect("commit");
                        committed += 1;
                    }
                    Err(_) => {
                        let _ = db.abort(txn);
                        aborted += 1;
                    }
                }
            }
            (committed, aborted)
        }));
    }
    let mut committed = 0;
    let mut aborted = 0;
    for h in handles {
        let (c, a) = h.join().expect("client thread");
        committed += c;
        aborted += a;
    }
    println!("transfers committed: {committed}, aborted (deadlock victims retried as no-ops): {aborted}");

    // Money is conserved.
    let total = db
        .query("SELECT SUM(balance) AS total FROM accounts")?
        .tuples()[0]
        .get(0)
        .clone();
    println!("total balance after transfers: {total}");
    assert_eq!(total, Value::Int(expected_total), "conservation of money");

    // Per-branch summary.
    let by_branch = db.query(
        "SELECT branch, COUNT(*) AS accounts, SUM(balance) AS total \
         FROM accounts GROUP BY branch ORDER BY branch",
    )?;
    println!("\nper-branch balances:\n{by_branch}");

    db.shutdown();
    Ok(())
}
