//! Parts explosion — the classic recursive-query workload that motivated
//! PRISMAlog's transitive-closure support (paper §2.3/§2.5): given a
//! bill-of-materials edge relation, find every part transitively contained
//! in an assembly, via (a) the SQL `CLOSURE()` table function backed by
//! the OFM transitive-closure operator and (b) a recursive PRISMAlog
//! program.
//!
//! ```sh
//! cargo run --release --example parts_explosion
//! ```

use prisma::workload::{graph_edges, values_clause, GraphShape};
use prisma::PrismaMachine;

fn main() -> prisma::Result<()> {
    let db = PrismaMachine::builder().pes(8).build()?;

    // A bill of materials shaped as a binary tree: assembly 0 at the root.
    db.sql("CREATE TABLE contains (assembly INT, part INT) FRAGMENTED BY HASH(assembly) INTO 4")?;
    let edges = graph_edges(GraphShape::BinaryTree, 63, 0);
    db.sql(&format!(
        "INSERT INTO contains VALUES {}",
        values_clause(&edges)
    ))?;
    println!("bill of materials: {} direct containment edges", edges.len());

    // (a) SQL: the PRISMA-specific CLOSURE table function.
    let all_parts = db.query(
        "SELECT COUNT(*) AS parts FROM CLOSURE(contains) c WHERE c.assembly = 0",
    )?;
    println!("\nparts transitively inside assembly 0 (SQL CLOSURE): {all_parts}");

    // (b) PRISMAlog: the same question as a recursive rule.
    let via_rules = db.prismalog(
        "inside(P, A) :- contains(A, P).
         inside(P, A) :- contains(A, Q), inside(P, Q).",
        "?- inside(P, 0).",
    )?;
    println!("via PRISMAlog rules: {} parts", via_rules.len());
    assert_eq!(
        all_parts.tuples()[0].get(0).as_int().unwrap() as usize,
        via_rules.len(),
        "both interfaces must agree"
    );

    // Depth-limited explosion with plain SQL over the closure.
    let subassembly = db.query(
        "SELECT c.part FROM CLOSURE(contains) c \
         WHERE c.assembly = 1 ORDER BY c.part LIMIT 10",
    )?;
    println!("\nfirst parts inside sub-assembly 1:\n{subassembly}");

    db.shutdown();
    Ok(())
}
