//! Quickstart: boot the PRISMA machine, create fragmented relations, and
//! run SQL and PRISMAlog against them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use prisma::PrismaMachine;

fn main() -> prisma::Result<()> {
    // The paper's prototype: 64 processing elements, 16 MB each, 8×8 mesh.
    let db = PrismaMachine::boot()?;
    println!(
        "booted PRISMA machine: {} PEs, {:?} topology",
        db.gdh().config().num_pes,
        db.gdh().config().topology
    );

    // DDL with explicit fragmentation — the data-allocation manager
    // places each fragment's One-Fragment Manager on its own PE.
    db.sql("CREATE TABLE emp (id INT, dept INT, salary DOUBLE) FRAGMENTED BY HASH(id) INTO 8")?;
    db.sql("CREATE TABLE dept (id INT, name STRING) FRAGMENTED INTO 2")?;

    // Load data.
    let mut values = String::new();
    for i in 0..1000 {
        if i > 0 {
            values.push(',');
        }
        values.push_str(&format!("({i}, {}, {}.50)", i % 4, 1000 + i));
    }
    db.sql(&format!("INSERT INTO emp VALUES {values}"))?;
    db.sql("INSERT INTO dept VALUES (0,'engineering'),(1,'sales'),(2,'research'),(3,'ops')")?;
    db.refresh_stats("emp")?;
    db.refresh_stats("dept")?;

    // A fragment-parallel join + aggregation.
    let rows = db.query(
        "SELECT d.name, COUNT(*) AS heads, MAX(e.salary) AS top \
         FROM emp e JOIN dept d ON e.dept = d.id \
         WHERE e.salary > 1500.0 \
         GROUP BY d.name ORDER BY d.name",
    )?;
    println!("\nheadcount and top salary per department (salary > 1500):\n{rows}");

    // EXPLAIN shows the knowledge-based optimizer at work.
    let explain = db.explain(
        "SELECT e.id FROM emp e, dept d WHERE e.dept = d.id AND d.name = 'sales'",
    )?;
    println!("\n{explain}");

    // The logic-programming interface (paper §2.3).
    db.sql("CREATE TABLE reports_to (emp INT, boss INT) FRAGMENTED INTO 2")?;
    db.sql("INSERT INTO reports_to VALUES (1,2),(2,3),(3,4),(5,4)")?;
    let chain = db.prismalog(
        "chain(X, Y) :- reports_to(X, Y).
         chain(X, Y) :- reports_to(X, Z), chain(Z, Y).",
        "?- chain(1, Who).",
    )?;
    println!("management chain above employee 1:\n{chain}");

    db.shutdown();
    Ok(())
}
