//! Cross-crate integration tests: the distributed machine must agree with
//! the single-node reference evaluator on every query, and the two front
//! ends (SQL and PRISMAlog) must agree with each other.

use std::collections::HashMap;

use prisma::relalg::{eval, Relation};
use prisma::sqlfe::{self, PlannedStatement};
use prisma::workload::{graph_edges, values_clause, wisconsin_rows, GraphShape};
use prisma::{PrismaMachine, Value};

/// Load the same data into the distributed machine and into a local map,
/// then check a battery of queries for agreement.
#[test]
fn distributed_execution_matches_reference_evaluator() {
    let db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql(
        "CREATE TABLE wisc (unique1 INT, unique2 INT, two INT, ten INT, hundred INT, string4 STRING) \
         FRAGMENTED BY HASH(unique1) INTO 4",
    )
    .unwrap();
    let rows = wisconsin_rows(800, 9);
    db.sql(&format!("INSERT INTO wisc VALUES {}", values_clause(&rows)))
        .unwrap();
    db.refresh_stats("wisc").unwrap();

    let schema = prisma::workload::wisconsin_schema();
    let mut reference: HashMap<String, Relation> = HashMap::new();
    reference.insert("wisc".to_owned(), Relation::new(schema.clone(), rows));

    let catalog: HashMap<String, prisma::Schema> =
        [("wisc".to_owned(), schema)].into_iter().collect();

    let queries = [
        "SELECT unique2 FROM wisc WHERE unique1 < 50",
        "SELECT two, ten, COUNT(*) AS n, SUM(hundred) AS s FROM wisc GROUP BY two, ten",
        "SELECT COUNT(*) AS n, MIN(unique1) AS lo, MAX(unique1) AS hi FROM wisc",
        "SELECT string4, COUNT(*) AS n FROM wisc WHERE ten BETWEEN 2 AND 5 GROUP BY string4",
        "SELECT a.unique2 FROM wisc a, wisc b \
         WHERE a.unique1 = b.unique2 AND b.ten = 3 AND a.two = 1",
        "SELECT unique2 FROM wisc WHERE two = 0 EXCEPT SELECT unique2 FROM wisc WHERE ten = 4",
        "SELECT DISTINCT hundred FROM wisc WHERE unique2 < 500",
        "SELECT unique1 FROM wisc WHERE unique1 < 100 ORDER BY unique1 DESC LIMIT 7",
    ];
    for sql in queries {
        let via_machine = db.query(sql).unwrap().canonicalized();
        let stmt = sqlfe::parse_statement(sql).unwrap();
        let PlannedStatement::Query(plan) = sqlfe::plan(&stmt, &catalog).unwrap() else {
            panic!("{sql} is not a query")
        };
        let via_reference = eval(&plan, &reference).unwrap().canonicalized();
        assert_eq!(
            via_machine.tuples(),
            via_reference.tuples(),
            "machine and reference disagree on: {sql}"
        );
    }
    db.shutdown();
}

/// Two large relations (above the broadcast threshold) must take the
/// hash-partitioned grace-join path and still agree with the reference
/// evaluator; a small build side must stay on the broadcast path.
#[test]
fn partitioned_and_broadcast_joins_agree_with_reference() {
    let db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql("CREATE TABLE big_l (k INT, grp INT, v INT) FRAGMENTED BY HASH(k) INTO 4")
        .unwrap();
    db.sql("CREATE TABLE big_r (k INT, grp INT, v INT) FRAGMENTED BY HASH(grp) INTO 3")
        .unwrap();
    db.sql("CREATE TABLE tiny (k INT, label STRING) FRAGMENTED INTO 2")
        .unwrap();
    let lrows: Vec<prisma::Tuple> = (0..1500)
        .map(|i| prisma::types::tuple![i, i % 40, i * 2])
        .collect();
    let rrows: Vec<prisma::Tuple> = (0..1300)
        .map(|i| prisma::types::tuple![i, i % 40, i * 3])
        .collect();
    let trows: Vec<prisma::Tuple> = (0..30)
        .map(|i| prisma::types::tuple![i, format!("t{i}")])
        .collect();
    db.sql(&format!("INSERT INTO big_l VALUES {}", values_clause(&lrows)))
        .unwrap();
    db.sql(&format!("INSERT INTO big_r VALUES {}", values_clause(&rrows)))
        .unwrap();
    db.sql(&format!("INSERT INTO tiny VALUES {}", values_clause(&trows)))
        .unwrap();
    for t in ["big_l", "big_r", "tiny"] {
        db.refresh_stats(t).unwrap();
    }

    let mut reference: HashMap<String, Relation> = HashMap::new();
    let lr_schema = prisma::Schema::new(vec![
        prisma::types::Column::new("k", prisma::types::DataType::Int),
        prisma::types::Column::new("grp", prisma::types::DataType::Int),
        prisma::types::Column::new("v", prisma::types::DataType::Int),
    ]);
    let tiny_schema = prisma::Schema::new(vec![
        prisma::types::Column::new("k", prisma::types::DataType::Int),
        prisma::types::Column::new("label", prisma::types::DataType::Str),
    ]);
    reference.insert("big_l".into(), Relation::new(lr_schema.clone(), lrows));
    reference.insert("big_r".into(), Relation::new(lr_schema.clone(), rrows));
    reference.insert("tiny".into(), Relation::new(tiny_schema.clone(), trows));
    let catalog: HashMap<String, prisma::Schema> = [
        ("big_l".to_owned(), lr_schema.clone()),
        ("big_r".to_owned(), lr_schema),
        ("tiny".to_owned(), tiny_schema),
    ]
    .into_iter()
    .collect();

    let check = |sql: &str| -> prisma::gdh::exec::ExecMetrics {
        let (rows, metrics) = db.query_with_metrics(sql).unwrap();
        let stmt = sqlfe::parse_statement(sql).unwrap();
        let PlannedStatement::Query(plan) = sqlfe::plan(&stmt, &catalog).unwrap() else {
            panic!("{sql} is not a query")
        };
        let via_reference = eval(&plan, &reference).unwrap().canonicalized();
        assert_eq!(
            rows.canonicalized().tuples(),
            via_reference.tuples(),
            "machine and reference disagree on: {sql}"
        );
        metrics
    };

    // Both sides large: grace join.
    let m = check("SELECT l.v, r.v FROM big_l l, big_r r WHERE l.k = r.k");
    assert!(m.partitioned_joins >= 1, "expected a grace join: {m:?}");
    assert_eq!(m.repartition_tasks, 7, "4 left + 3 right fragments: {m:?}");
    assert!(m.batches_shipped > 0, "{m:?}");

    // Residual predicates survive the partitioned path.
    let m = check(
        "SELECT l.k FROM big_l l, big_r r WHERE l.k = r.k AND l.v < r.v",
    );
    assert!(m.partitioned_joins >= 1, "{m:?}");

    // Small build side: broadcast.
    let m = check("SELECT l.v, t.label FROM big_l l, tiny t WHERE l.grp = t.k");
    assert!(m.broadcast_joins >= 1, "expected broadcast: {m:?}");
    assert_eq!(m.partitioned_joins, 0, "{m:?}");

    // Decomposable aggregate over the grace join output.
    let m = check(
        "SELECT l.grp, COUNT(*) AS n, SUM(r.v) AS s FROM big_l l, big_r r \
         WHERE l.k = r.k GROUP BY l.grp",
    );
    assert!(m.partitioned_joins >= 1, "{m:?}");
    db.shutdown();
}

#[test]
fn streamed_batch_shipping_overlaps_scan_and_merge() {
    let mut db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql("CREATE TABLE s (a INT, b INT) FRAGMENTED BY HASH(a) INTO 4")
        .unwrap();
    let rows: Vec<prisma::Tuple> = (0..6000).map(|i| prisma::types::tuple![i, i % 11]).collect();
    for chunk in rows.chunks(500) {
        db.sql(&format!("INSERT INTO s VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    let sql = "SELECT a, b FROM s WHERE b < 9";

    // Streaming (the default): the first merged batch lands while other
    // fragments are still scanning, so first-batch latency is measured
    // and bounded by the full-result latency; every fragment's stream
    // was in flight at once.
    let (streamed, m) = db.query_with_metrics(sql).unwrap();
    assert!(db.gdh().executor_streaming());
    assert!(m.batches_shipped >= 4, "{m:?}");
    assert!(
        m.first_batch_micros > 0 && m.first_batch_micros <= m.full_result_micros,
        "scan/merge overlap not observed: {m:?}"
    );
    assert_eq!(m.max_in_flight_streams, 4, "{m:?}");

    // The materialized baseline ships the same batches and agrees
    // exactly; it only loses the overlap.
    db.gdh_mut().set_streaming(false);
    let (materialized, m2) = db.query_with_metrics(sql).unwrap();
    assert_eq!(
        streamed.canonicalized().tuples(),
        materialized.canonicalized().tuples()
    );
    assert_eq!(m.tuples_shipped, m2.tuples_shipped);
    db.shutdown();
}

#[test]
fn sql_closure_and_prismalog_agree_on_reachability() {
    let db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql("CREATE TABLE edge (src INT, dst INT) FRAGMENTED BY HASH(src) INTO 4")
        .unwrap();
    let edges = graph_edges(GraphShape::Random { out_degree: 2 }, 60, 4);
    db.sql(&format!("INSERT INTO edge VALUES {}", values_clause(&edges)))
        .unwrap();

    let via_sql = db
        .query("SELECT c.dst FROM CLOSURE(edge) c WHERE c.src = 0")
        .unwrap();
    let via_rules = db
        .prismalog(
            "reach(X, Y) :- edge(X, Y).
             reach(X, Y) :- edge(X, Z), reach(Z, Y).",
            "?- reach(0, Y).",
        )
        .unwrap();
    let mut a: Vec<i64> = via_sql
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    let mut b: Vec<i64> = via_rules
        .tuples()
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    a.sort_unstable();
    a.dedup();
    b.sort_unstable();
    assert_eq!(a, b, "SQL CLOSURE and PRISMAlog recursion must agree");
    db.shutdown();
}

#[test]
fn optimizer_ablations_agree_on_results() {
    use prisma::optimizer::OptimizerConfig;
    let mut db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql("CREATE TABLE t (a INT, b INT) FRAGMENTED BY HASH(a) INTO 4")
        .unwrap();
    db.sql("CREATE TABLE u (b INT, c STRING) FRAGMENTED INTO 2")
        .unwrap();
    let trows: Vec<prisma::Tuple> = (0..500)
        .map(|i| prisma::types::tuple![i, i % 20])
        .collect();
    db.sql(&format!("INSERT INTO t VALUES {}", values_clause(&trows)))
        .unwrap();
    let urows: Vec<prisma::Tuple> = (0..20)
        .map(|i| prisma::types::tuple![i, format!("u{i}")])
        .collect();
    db.sql(&format!("INSERT INTO u VALUES {}", values_clause(&urows)))
        .unwrap();

    let sql = "SELECT t.a, u.c FROM t, u WHERE t.b = u.b AND t.a < 100 ORDER BY t.a";
    let with_rules = db.query(sql).unwrap();
    db.gdh_mut().set_optimizer_config(OptimizerConfig::disabled());
    let without_rules = db.query(sql).unwrap();
    assert_eq!(with_rules.tuples(), without_rules.tuples());
    assert_eq!(with_rules.len(), 100);
    db.shutdown();
}

#[test]
fn money_conservation_under_concurrent_transfers() {
    use std::sync::Arc;
    let db = Arc::new(PrismaMachine::builder().pes(8).build().unwrap());
    db.sql("CREATE TABLE acct (id INT, bal INT) FRAGMENTED BY HASH(id) INTO 4")
        .unwrap();
    let rows: Vec<prisma::Tuple> = (0..50).map(|i| prisma::types::tuple![i, 100]).collect();
    db.sql(&format!("INSERT INTO acct VALUES {}", values_clause(&rows)))
        .unwrap();
    let mut handles = Vec::new();
    for seed in 0..3u64 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            for t in prisma::workload::transfer_stream(50, 30, seed) {
                let txn = db.begin();
                let ok = db
                    .sql_in(
                        txn,
                        &format!(
                            "UPDATE acct SET bal = bal - {} WHERE id = {}",
                            t.amount, t.from
                        ),
                    )
                    .and_then(|_| {
                        db.sql_in(
                            txn,
                            &format!(
                                "UPDATE acct SET bal = bal + {} WHERE id = {}",
                                t.amount, t.to
                            ),
                        )
                    })
                    .is_ok();
                if ok {
                    db.commit(txn).unwrap();
                } else {
                    let _ = db.abort(txn);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = db.query("SELECT SUM(bal) AS t FROM acct").unwrap();
    assert_eq!(total.tuples()[0].get(0), &Value::Int(5000));
    db.shutdown();
}

#[test]
fn durability_of_committed_work_after_machine_recovery() {
    let db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql("CREATE TABLE log_t (k INT, v INT) FRAGMENTED BY HASH(k) INTO 4")
        .unwrap();
    for i in 0..20 {
        db.sql(&format!("INSERT INTO log_t VALUES ({i}, {})", i * 2))
            .unwrap();
    }
    db.checkpoint("log_t").unwrap();
    db.sql("UPDATE log_t SET v = 0 WHERE k < 5").unwrap();
    db.sql("DELETE FROM log_t WHERE k = 19").unwrap();
    db.recover("log_t").unwrap();
    let rows = db
        .query("SELECT COUNT(*) AS n, SUM(v) AS s FROM log_t")
        .unwrap();
    assert_eq!(rows.tuples()[0].get(0).as_int(), Some(19));
    // sum = Σ(2i for i in 5..19) = 2*(5+..+18) = 2*161 = 322
    assert_eq!(rows.tuples()[0].get(1).as_int(), Some(322));
    db.shutdown();
}
