//! Property-based tests over the core invariants.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use prisma::relalg::eval::{transitive_closure, transitive_closure_naive};
use prisma::relalg::{eval, execute_physical, lower, AggExpr, AggFunc, LogicalPlan, Relation};
use prisma::stable::encoding;
use prisma::storage::expr::{ArithOp, CmpOp, ScalarExpr};
use prisma::storage::{Marking, Rid};
use prisma::types::wire::BlockChunk;
use prisma::types::{tuple, Column, ColumnVec, DataType, LazyColumns, Schema, SelVec, Tuple, Value};
use prisma::workload::values_clause;
use prisma::PrismaMachine;

// ---------- strategies ----------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Double),
        "[a-z]{0,12}".prop_map(Value::Str),
    ]
}

fn arb_tuple(max_arity: usize) -> impl Strategy<Value = Tuple> {
    prop::collection::vec(arb_value(), 0..=max_arity).prop_map(Tuple::new)
}

/// Expressions over a fixed 3-int-column schema, with depth control.
fn arb_int_expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(ScalarExpr::Col),
        (-50i64..50).prop_map(|v| ScalarExpr::Lit(Value::Int(v))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::arith(
                ArithOp::Add,
                a,
                b
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::arith(
                ArithOp::Mul,
                a,
                b
            )),
            inner.clone().prop_map(|a| ScalarExpr::Neg(Box::new(a))),
        ]
    })
}

fn arb_predicate() -> impl Strategy<Value = ScalarExpr> {
    let cmp = (
        arb_int_expr(),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        arb_int_expr(),
    )
        .prop_map(|(l, op, r)| ScalarExpr::cmp(op, l, r));
    cmp.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::or(a, b)),
            inner.clone().prop_map(|a| ScalarExpr::Not(Box::new(a))),
        ]
    })
}

fn int3_schema() -> Schema {
    Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("c", DataType::Int),
    ])
}

// ---------- strategies for the vectorized-kernel properties ----------

/// Nullable mixed-type schema the vectorized kernels are exercised over:
/// Int, Double, Int — so comparisons and arithmetic hit the typed
/// Int/Int, Double/Double and widened Int/Double paths as well as NULLs.
fn mixed_schema() -> Schema {
    Schema::new(vec![
        Column::nullable("a", DataType::Int),
        Column::nullable("b", DataType::Double),
        Column::nullable("c", DataType::Int),
    ])
}

fn arb_null_int() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-40i64..40).prop_map(Value::Int),
    ]
}

fn arb_null_double() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-80i64..80).prop_map(|v| Value::Double(v as f64 / 2.0)),
    ]
}

/// Rows over [`mixed_schema`], including the empty batch.
fn arb_mixed_rows(max: usize) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((arb_null_int(), arb_null_double(), arb_null_int()), 0..=max)
        .prop_map(|rows| {
            rows.into_iter()
                .map(|(a, b, c)| Tuple::new(vec![a, b, c]))
                .collect()
        })
}

/// Numeric expressions over the mixed schema (Int and Double literals, so
/// Int/Double widening shows up mid-tree).
fn arb_mixed_expr() -> impl Strategy<Value = ScalarExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(ScalarExpr::Col),
        (-20i64..20).prop_map(|v| ScalarExpr::Lit(Value::Int(v))),
        (-40i64..40).prop_map(|v| ScalarExpr::Lit(Value::Double(v as f64 / 2.0))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ScalarExpr::arith(ArithOp::Add, a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ScalarExpr::arith(ArithOp::Sub, a, b)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ScalarExpr::arith(ArithOp::Mul, a, b)),
            inner.clone().prop_map(|a| ScalarExpr::Neg(Box::new(a))),
        ]
    })
}

/// Boolean predicates over the mixed schema: comparisons (all six ops,
/// mixed Int/Double operands), IS NULL, and Kleene connectives.
fn arb_mixed_predicate() -> impl Strategy<Value = ScalarExpr> {
    let cmp = (
        arb_mixed_expr(),
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
        arb_mixed_expr(),
    )
        .prop_map(|(l, op, r)| ScalarExpr::cmp(op, l, r));
    let leaf = prop_oneof![
        cmp,
        arb_mixed_expr().prop_map(|e| ScalarExpr::IsNull(Box::new(e))),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ScalarExpr::or(a, b)),
            inner.clone().prop_map(|a| ScalarExpr::Not(Box::new(a))),
        ]
    })
}

/// Wrap rows in the executor's own lazily-pivoting column set
/// (`LazyColumns`), so kernels are tested over exactly the columns the
/// pipeline would build. For the empty batch, where arity is unknowable
/// from the rows, three empty columns stand in so kernels still see
/// every ordinal they reference.
fn pivot_columns(rows: &[Tuple]) -> LazyColumns {
    if rows.is_empty() {
        return LazyColumns::from_cols(
            (0..3).map(|_| Arc::new(ColumnVec::Mixed(Vec::new()))).collect(),
        );
    }
    LazyColumns::from_rows(Arc::new(rows.to_vec()))
}

// ---------- randomized plans for executor-vs-oracle properties ----------

/// One encoded plan-building step; the interpreter clamps every parameter
/// against the current arity, so any byte triple yields a valid plan.
type PlanOp = (u8, u8, u8);

fn arb_plan_ops(max_ops: usize) -> impl Strategy<Value = Vec<PlanOp>> {
    prop::collection::vec((0u8..7, 0u8..255, 0u8..255), 0..=max_ops)
}

/// Interpret encoded ops into a valid plan over `l`/`r` (3 int columns).
/// Joins always key the right side on its unique first column so output
/// sizes stay bounded by the left side; limits only ever follow a total
/// sort, so results are deterministic up to row order.
fn build_plan(ops: &[PlanOp], lschema: &Schema, rschema: &Schema) -> LogicalPlan {
    let mut plan = LogicalPlan::scan("l", lschema.clone());
    for &(op, p1, p2) in ops {
        let arity = plan.output_schema().expect("valid by construction").arity();
        let c1 = p1 as usize % arity;
        let c2 = p2 as usize % arity;
        plan = match op {
            0 => {
                let cmp = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
                    [p2 as usize % 6];
                plan.select(ScalarExpr::cmp(
                    cmp,
                    ScalarExpr::col(c1),
                    ScalarExpr::lit(p2 as i64 - 127),
                ))
            }
            1 => plan.project_cols(&[c1, c2]).expect("ordinals clamped"),
            2 => plan.join(LogicalPlan::scan("r", rschema.clone()), vec![(c1, 0)]),
            3 => LogicalPlan::Union {
                left: Box::new(plan.clone()),
                right: Box::new(plan),
                all: p1 % 2 == 0,
            },
            4 => {
                let aggs = if p2 % 4 == 0 {
                    // Non-decomposable: merges at the coordinator.
                    vec![
                        AggExpr::new(AggFunc::CountStar, 0, "n"),
                        AggExpr::new(AggFunc::Avg, c2, "avg"),
                    ]
                } else {
                    // Decomposable: per-fragment partials + merge.
                    vec![
                        AggExpr::new(AggFunc::CountStar, 0, "n"),
                        AggExpr::new(AggFunc::Sum, c2, "s"),
                        AggExpr::new(AggFunc::Min, c2, "mn"),
                        AggExpr::new(AggFunc::Max, c2, "mx"),
                    ]
                };
                LogicalPlan::Aggregate {
                    input: Box::new(plan),
                    group_by: vec![c1],
                    aggs,
                }
            }
            5 => LogicalPlan::Distinct {
                input: Box::new(plan),
            },
            _ => {
                let keys: Vec<(usize, bool)> = (0..arity).map(|i| (i, true)).collect();
                LogicalPlan::Limit {
                    input: Box::new(LogicalPlan::Sort {
                        input: Box::new(plan),
                        keys,
                    }),
                    n: 1 + p1 as usize % 40,
                }
            }
        };
    }
    plan
}

/// DDL + loads shared by [`shared_machine`] and its row-wire twin.
fn load_lr(db: &PrismaMachine) {
    db.sql("CREATE TABLE l (a INT, b INT, c INT) FRAGMENTED BY HASH(a) INTO 4")
        .unwrap();
    db.sql("CREATE TABLE r (a INT, b INT, c INT) FRAGMENTED BY HASH(b) INTO 3")
        .unwrap();
    let (lrows, rrows) = machine_rows();
    for chunk in lrows.chunks(500) {
        db.sql(&format!("INSERT INTO l VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    for chunk in rrows.chunks(500) {
        db.sql(&format!("INSERT INTO r VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    db.refresh_stats("l").unwrap();
    db.refresh_stats("r").unwrap();
}

/// The distributed machine the randomized-plan property queries; built
/// once (same rows as [`machine_reference`]), with `l` large enough that
/// scan-scan joins cross the broadcast threshold and take the
/// hash-partitioned path while filtered/aggregated sides broadcast.
fn shared_machine() -> &'static Arc<PrismaMachine> {
    static MACHINE: OnceLock<Arc<PrismaMachine>> = OnceLock::new();
    MACHINE.get_or_init(|| {
        let db = PrismaMachine::builder().pes(8).build().unwrap();
        load_lr(&db);
        Arc::new(db)
    })
}

/// The same machine shape and data as [`shared_machine`], pinned to the
/// legacy row wire — the differential half of the wire-format property:
/// both machines must give the same answer as the eval oracle on every
/// generated plan.
fn shared_row_wire_machine() -> &'static Arc<PrismaMachine> {
    static MACHINE: OnceLock<Arc<PrismaMachine>> = OnceLock::new();
    MACHINE.get_or_init(|| {
        let mut db = PrismaMachine::builder().pes(8).build().unwrap();
        db.gdh_mut().set_columnar_wire(false);
        load_lr(&db);
        Arc::new(db)
    })
}

fn machine_rows() -> (Vec<Tuple>, Vec<Tuple>) {
    let l = (0..1200i64).map(|i| tuple![i, i % 37, (i * 7) % 50]).collect();
    let r = (0..1100i64).map(|i| tuple![i, i % 37, (i * 11) % 50]).collect();
    (l, r)
}

fn machine_reference() -> &'static HashMap<String, Relation> {
    static REFERENCE: OnceLock<HashMap<String, Relation>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let (lrows, rrows) = machine_rows();
        let mut m = HashMap::new();
        m.insert("l".to_owned(), Relation::new(int3_schema(), lrows));
        m.insert("r".to_owned(), Relation::new(int3_schema(), rrows));
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Value's total order really is total, antisymmetric and transitive
    // enough for sorting (we check sort stability round-trips).
    #[test]
    fn value_total_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) == Ordering::Equal {
            prop_assert_eq!(a.total_cmp(&c), b.total_cmp(&c));
        }
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    // Eq ⇒ same hash (join/index correctness).
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = std::collections::hash_map::DefaultHasher::new();
            let mut hb = std::collections::hash_map::DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    // Stable-storage encoding round-trips every tuple exactly.
    #[test]
    fn tuple_encoding_roundtrip(t in arb_tuple(6)) {
        let mut out = bytes_mut();
        encoding::encode_tuple(&t, &mut out);
        let mut buf = out.freeze();
        let back = encoding::decode_tuple(&mut buf).unwrap();
        prop_assert_eq!(back, t);
        prop_assert!(buf.is_empty());
    }

    // The expression compiler agrees with the interpreter on every
    // predicate over every row (the E5 correctness precondition).
    #[test]
    fn compiled_predicate_equals_interpreted(
        pred in arb_predicate(),
        rows in prop::collection::vec((-50i64..50, -50i64..50, -50i64..50), 1..20),
    ) {
        let compiled = pred.compile_predicate();
        for (a, b, c) in rows {
            let t = tuple![a, b, c];
            // Interpreter may fail on overflow; compiled maps failures to
            // NULL (reject). Compare only when the interpreter succeeds.
            if let Ok(keep) = pred.eval_predicate(&t) {
                prop_assert_eq!(compiled(&t), keep, "predicate {} on {}", pred, t);
            } else {
                prop_assert!(!compiled(&t));
            }
        }
    }

    // Selection pushdown / constant folding etc. preserve semantics on
    // random filtered joins (checked through the optimizer driver).
    #[test]
    fn optimizer_preserves_select_join_semantics(
        pred in arb_predicate(),
        left in prop::collection::vec((-20i64..20, -20i64..20, -20i64..20), 0..30),
        right in prop::collection::vec((-20i64..20, -20i64..20, -20i64..20), 0..30),
    ) {
        use prisma::optimizer::{Optimizer, stats::NoStats};
        let schema = int3_schema();
        let mut db: HashMap<String, Relation> = HashMap::new();
        db.insert("l".into(), Relation::new(schema.clone(), left.into_iter().map(|(a,b,c)| tuple![a,b,c]).collect()));
        db.insert("r".into(), Relation::new(schema.clone(), right.into_iter().map(|(a,b,c)| tuple![a,b,c]).collect()));
        // Join predicate references the 6-wide concatenated schema: remap
        // half the columns to the right side.
        let join_pred = pred.remap_columns(&|c| if c % 2 == 0 { c } else { c + 3 });
        let plan = LogicalPlan::scan("l", schema.clone())
            .join(LogicalPlan::scan("r", schema), vec![])
            .select(join_pred);
        let opt = Optimizer::new(&NoStats);
        let (optimized, _) = opt.optimize(&plan).unwrap();
        let before = eval(&plan, &db);
        let after = eval(&optimized, &db);
        match (before, after) {
            (Ok(b), Ok(a)) => {
                let (b, a) = (b.canonicalized(), a.canonicalized());
                prop_assert_eq!(b.tuples(), a.tuples());
            }
            (Err(_), _) => {} // interpreter-side arithmetic error: skip
            (Ok(_), Err(e)) => prop_assert!(false, "optimized plan failed: {e}"),
        }
    }

    // Transitive closure: semi-naive and naive agree on arbitrary graphs,
    // and the closure is idempotent (TC(TC(G)) = TC(G)).
    #[test]
    fn closure_agreement_and_idempotence(
        edges in prop::collection::vec((0i64..12, 0i64..12), 0..40),
    ) {
        let schema = Schema::new(vec![
            Column::new("s", DataType::Int),
            Column::new("d", DataType::Int),
        ]);
        let rel = Relation::new(
            schema,
            edges.into_iter().map(|(a, b)| tuple![a, b]).collect(),
        ).distinct();
        let semi = transitive_closure(&rel).unwrap().canonicalized();
        let naive = transitive_closure_naive(&rel).unwrap().canonicalized();
        prop_assert_eq!(semi.tuples(), naive.tuples());
        let twice = transitive_closure(&semi).unwrap().canonicalized();
        prop_assert_eq!(twice.tuples(), semi.tuples());
    }

    // Marking set algebra behaves like sets.
    #[test]
    fn marking_set_laws(
        xs in prop::collection::hash_set(0u32..100, 0..40),
        ys in prop::collection::hash_set(0u32..100, 0..40),
    ) {
        let a = Marking::from_rids(xs.iter().map(|&i| Rid(i)));
        let b = Marking::from_rids(ys.iter().map(|&i| Rid(i)));
        prop_assert_eq!(a.and(&b).len(), xs.intersection(&ys).count());
        prop_assert_eq!(a.or(&b).len(), xs.union(&ys).count());
        prop_assert_eq!(a.minus(&b).len(), xs.difference(&ys).count());
        // De Morgan-ish: |A∪B| = |A| + |B| - |A∩B|
        prop_assert_eq!(a.or(&b).len() + a.and(&b).len(), a.len() + b.len());
    }

    // Schema tuple checking accepts exactly what try_new accepts.
    #[test]
    fn relation_validation_consistency(rows in prop::collection::vec(arb_tuple(2), 0..10)) {
        let schema = Schema::new(vec![
            Column::nullable("x", DataType::Int),
            Column::nullable("y", DataType::Str),
        ]);
        let all_ok = rows.iter().all(|t| schema.check_tuple(t.values()).is_ok());
        let built = Relation::try_new(schema, rows);
        prop_assert_eq!(all_ok, built.is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The pull-based batch executor agrees with the reference evaluator
    // on arbitrary plans over arbitrary data (up to row order).
    #[test]
    fn batch_executor_matches_reference_evaluator(
        ops in arb_plan_ops(6),
        lrows in prop::collection::vec((-30i64..30, -30i64..30, -30i64..30), 0..25),
        rrows in prop::collection::vec((-30i64..30, -30i64..30, -30i64..30), 0..20),
    ) {
        let schema = int3_schema();
        let mut db: HashMap<String, Relation> = HashMap::new();
        db.insert(
            "l".into(),
            Relation::new(schema.clone(), lrows.into_iter().map(|(a, b, c)| tuple![a, b, c]).collect()),
        );
        db.insert(
            "r".into(),
            Relation::new(schema.clone(), rrows.into_iter().map(|(a, b, c)| tuple![a, b, c]).collect()),
        );
        let plan = build_plan(&ops, &schema, &schema);
        let physical = lower(&plan).unwrap();
        let via_exec = execute_physical(&physical, &db).unwrap().canonicalized();
        let via_eval = eval(&plan, &db).unwrap().canonicalized();
        prop_assert_eq!(via_exec.tuples(), via_eval.tuples(), "plan:\n{}", plan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Streamed batch shipping: however BatchChunk arrivals interleave
    // across fragments — and however chunks *within* one fragment's
    // stream are reordered, end markers overtaking chunks included —
    // reassembly releases every stream's chunks in sequence order and
    // the merged result matches the reference evaluator's answer for
    // the unfragmented relation.
    #[test]
    fn shuffled_stream_delivery_matches_eval_oracle(
        frag_sizes in prop::collection::vec(0usize..700, 2..5),
        chunk_rows in 37usize..300,
        keys in prop::collection::vec(any::<u64>(), 80),
    ) {
        use prisma::multicomputer::StreamReassembly;
        use prisma::relalg::Batch;

        enum Ev {
            Chunk(u64, u64, Batch),
            End(u64, u64),
        }

        let schema = int3_schema();
        let mut all_rows: Vec<Tuple> = Vec::new();
        let mut events: Vec<Ev> = Vec::new();
        for (tag, &n) in frag_sizes.iter().enumerate() {
            let rows: Vec<Tuple> = (0..n as i64)
                .map(|i| tuple![tag as i64, i, i % 7])
                .collect();
            all_rows.extend(rows.iter().cloned());
            let chunks: Vec<Batch> = rows
                .chunks(chunk_rows)
                .map(|c| Batch::owned(c.to_vec()))
                .collect();
            events.push(Ev::End(tag as u64, chunks.len() as u64));
            for (seq, b) in chunks.into_iter().enumerate() {
                events.push(Ev::Chunk(tag as u64, seq as u64, b));
            }
        }
        // Deterministic shuffle driven by the generated keys: every
        // arrival order across (and within) streams is fair game.
        let mut keyed: Vec<(u64, Ev)> = events
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                let k = keys[i % keys.len()] ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (k, e)
            })
            .collect();
        keyed.sort_by_key(|(k, _)| *k);

        let mut reassembly: StreamReassembly<Batch> =
            StreamReassembly::expecting(0..frag_sizes.len() as u64);
        let mut per_stream: Vec<Vec<Tuple>> = vec![Vec::new(); frag_sizes.len()];
        let mut released: Vec<Batch> = Vec::new();
        for (_, ev) in keyed {
            match ev {
                Ev::Chunk(tag, seq, batch) => {
                    released.clear();
                    reassembly.accept(tag, seq, batch, &mut released).unwrap();
                    for b in released.drain(..) {
                        per_stream[tag as usize].extend(b.into_tuples());
                    }
                }
                Ev::End(tag, count) => reassembly.finish(tag, count).unwrap(),
            }
        }
        prop_assert!(reassembly.all_complete());

        // In-stream order is restored exactly (column 1 counts 0..n).
        for (tag, rows) in per_stream.iter().enumerate() {
            prop_assert_eq!(rows.len(), frag_sizes[tag]);
            for (i, t) in rows.iter().enumerate() {
                prop_assert_eq!(t.get(1), &Value::Int(i as i64));
            }
        }

        // The merged union matches the oracle over the whole relation.
        let mut db: HashMap<String, Relation> = HashMap::new();
        db.insert("t".into(), Relation::new(schema.clone(), all_rows));
        let oracle = eval(&LogicalPlan::scan("t", schema.clone()), &db)
            .unwrap()
            .canonicalized();
        let merged: Vec<Tuple> = per_stream.into_iter().flatten().collect();
        let merged = Relation::new(schema, merged).canonicalized();
        prop_assert_eq!(merged.tuples(), oracle.tuples());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Direct fragment→fragment shuffle: a grace join whose buckets are
    // addressed straight at the phase-2 site actors (never relayed
    // through the coordinator) matches the reference evaluator for the
    // unfragmented relations — across mismatched fragment counts (3
    // left, 2 right), bucket counts below/at/above the fragment count,
    // and whatever chunk arrival order the multi-threaded runtime
    // produces. The coordinator must relay zero bucket bits.
    #[test]
    fn direct_shuffle_grace_join_matches_eval_oracle(
        lrows in prop::collection::vec((-25i64..25, -25i64..25, -25i64..25), 0..120),
        rrows in prop::collection::vec((-25i64..25, -25i64..25, -25i64..25), 0..100),
        parts in prop_oneof![Just(None), (1usize..9).prop_map(Some)],
        key in 0usize..3,
    ) {
        use prisma::optimizer::PhysicalConfig;

        let schema = int3_schema();
        let to_rel = |rows: &[(i64, i64, i64)]| {
            Relation::new(
                schema.clone(),
                rows.iter().map(|&(a, b, c)| tuple![a, b, c]).collect(),
            )
        };
        let mut db = PrismaMachine::builder().pes(4).build().unwrap();
        db.sql("CREATE TABLE l (a INT, b INT, c INT) FRAGMENTED BY HASH(a) INTO 3")
            .unwrap();
        db.sql("CREATE TABLE r (a INT, b INT, c INT) FRAGMENTED BY HASH(c) INTO 2")
            .unwrap();
        for (name, rows) in [("l", &lrows), ("r", &rrows)] {
            let rel = to_rel(rows);
            if !rel.is_empty() {
                db.sql(&format!(
                    "INSERT INTO {name} VALUES {}",
                    values_clause(rel.tuples())
                ))
                .unwrap();
            }
        }
        // Broadcast cap 0 forces the partitioned (grace) path for every
        // equi-join; streaming stays on, so buckets shuffle directly.
        db.gdh_mut().set_physical_config(PhysicalConfig {
            broadcast_max_rows: 0.0,
            shuffle_parts: parts,
            ..PhysicalConfig::default()
        });

        let plan = LogicalPlan::scan("l", schema.clone())
            .join(LogicalPlan::scan("r", schema.clone()), vec![(key, key)]);
        let (rows, metrics) = db.gdh().query(&plan).unwrap();
        prop_assert_eq!(metrics.partitioned_joins, 1, "not a grace join: {:?}", metrics);
        prop_assert_eq!(
            metrics.relayed_bits, 0,
            "direct shuffle relayed buckets through the coordinator: {:?}",
            metrics
        );

        let mut reference: HashMap<String, Relation> = HashMap::new();
        reference.insert("l".into(), to_rel(&lrows));
        reference.insert("r".into(), to_rel(&rrows));
        let oracle = eval(&plan, &reference).unwrap().canonicalized();
        let got = rows.canonicalized();
        prop_assert_eq!(
            got.tuples(),
            oracle.tuples(),
            "direct shuffle disagrees with the oracle (parts={:?}, key={})",
            parts,
            key
        );

        // Differential: the same shuffled join over the legacy row wire
        // on the same machine must produce the same rows.
        db.gdh_mut().set_columnar_wire(false);
        let (row_rows, row_metrics) = db.gdh().query(&plan).unwrap();
        prop_assert_eq!(row_metrics.partitioned_joins, 1, "{:?}", row_metrics);
        let row_rows = row_rows.canonicalized();
        prop_assert_eq!(
            row_rows.tuples(),
            oracle.tuples(),
            "row wire disagrees with the oracle (parts={:?}, key={})",
            parts,
            key
        );
        db.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The shuffle wire protocol itself, deterministically shuffled: per
    // (source, site) bucket streams delivered in arbitrary order —
    // chunks reordered within streams, end markers overtaking chunks,
    // sites interleaved — reassemble into exactly the bucket contents
    // the oracle join expects, whatever the bucket→site placement.
    #[test]
    fn shuffled_bucket_stream_delivery_matches_eval_join_oracle(
        lrows in prop::collection::vec((-15i64..15, -15i64..15), 0..160),
        rrows in prop::collection::vec((-15i64..15, -15i64..15), 0..140),
        parts in 1usize..7,
        n_sites in 1usize..4,
        chunk_rows in 7usize..40,
        keys in prop::collection::vec(any::<u64>(), 64),
    ) {
        use prisma::multicomputer::StreamReassembly;
        use prisma::relalg::exec::partition_batches;
        use prisma::relalg::Batch;

        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let to_rel = |rows: &[(i64, i64)]| {
            Relation::new(
                schema.clone(),
                rows.iter().map(|&(a, b)| tuple![a, b]).collect(),
            )
        };
        // Placement: bucket j is owned by site j % n_sites. Two source
        // fragments per side.
        let site_of = |bucket: usize| bucket % n_sites;
        let lsrc: Vec<Vec<Tuple>> = {
            let rel = to_rel(&lrows);
            let mid = rel.len() / 2;
            vec![rel.tuples()[..mid].to_vec(), rel.tuples()[mid..].to_vec()]
        };
        let rsrc: Vec<Vec<Tuple>> = {
            let rel = to_rel(&rrows);
            let mid = rel.len() / 3;
            vec![rel.tuples()[..mid].to_vec(), rel.tuples()[mid..].to_vec()]
        };

        // Build every (side, source, site) stream: sources partition each
        // produced "batch" and group bucket slices per owning site, with
        // per-site sequence numbers — exactly the ShuffleChunk shape.
        type Payload = Vec<(usize, Vec<Tuple>)>;
        enum Ev {
            Chunk { site: usize, side: usize, tag: u64, seq: u64, payload: Payload },
            End { site: usize, side: usize, tag: u64, seq_count: u64 },
        }
        let mut events: Vec<Ev> = Vec::new();
        for (side, sources) in [&lsrc, &rsrc].into_iter().enumerate() {
            for (tag, rows) in sources.iter().enumerate() {
                let mut seqs = vec![0u64; n_sites];
                for batch_rows in rows.chunks(chunk_rows.max(1)) {
                    let buckets = partition_batches(
                        vec![Batch::owned(batch_rows.to_vec())],
                        &[0],
                        parts,
                    );
                    let mut per_site: Vec<Payload> = vec![Vec::new(); n_sites];
                    for (j, bucket_rows) in buckets.into_iter().enumerate() {
                        if !bucket_rows.is_empty() {
                            per_site[site_of(j)].push((j, bucket_rows));
                        }
                    }
                    for (site, payload) in per_site.into_iter().enumerate() {
                        if payload.is_empty() {
                            continue;
                        }
                        events.push(Ev::Chunk {
                            site,
                            side,
                            tag: tag as u64,
                            seq: seqs[site],
                            payload,
                        });
                        seqs[site] += 1;
                    }
                }
                for (site, &seq_count) in seqs.iter().enumerate() {
                    events.push(Ev::End {
                        site,
                        side,
                        tag: tag as u64,
                        seq_count,
                    });
                }
            }
        }
        // Deterministic shuffle over every stream of every site.
        let mut keyed: Vec<(u64, Ev)> = events
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                let k = keys[i % keys.len()] ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (k, e)
            })
            .collect();
        keyed.sort_by_key(|(k, _)| *k);

        // Each site reassembles its two sides' peer streams.
        let mut sites: Vec<[StreamReassembly<Payload>; 2]> = (0..n_sites)
            .map(|_| {
                [
                    StreamReassembly::expecting(0..lsrc.len() as u64),
                    StreamReassembly::expecting(0..rsrc.len() as u64),
                ]
            })
            .collect();
        let mut collected: Vec<[Vec<Tuple>; 2]> =
            (0..n_sites).map(|_| [Vec::new(), Vec::new()]).collect();
        let mut released: Vec<Payload> = Vec::new();
        for (_, ev) in keyed {
            match ev {
                Ev::Chunk { site, side, tag, seq, payload } => {
                    released.clear();
                    sites[site][side].accept(tag, seq, payload, &mut released).unwrap();
                    for payload in released.drain(..) {
                        for (bucket, rows) in payload {
                            prop_assert_eq!(site_of(bucket), site, "chunk at wrong site");
                            collected[site][side].extend(rows);
                        }
                    }
                }
                Ev::End { site, side, tag, seq_count } => {
                    sites[site][side].finish(tag, seq_count).unwrap();
                }
            }
        }
        for site in &sites {
            prop_assert!(site[0].all_complete() && site[1].all_complete());
        }

        // Per-site local joins over the collected buckets, merged, must
        // equal the oracle join of the unfragmented relations.
        let join = |l: &Relation, r: &Relation| -> Relation {
            let plan = LogicalPlan::scan("l", schema.clone())
                .join(LogicalPlan::scan("r", schema.clone()), vec![(0, 0)]);
            let mut db: HashMap<String, Relation> = HashMap::new();
            db.insert("l".into(), l.clone());
            db.insert("r".into(), r.clone());
            execute_physical(&lower(&plan).unwrap(), &db).unwrap()
        };
        let mut merged: Vec<Tuple> = Vec::new();
        for [l, r] in collected {
            merged.extend(
                join(&Relation::new(schema.clone(), l), &Relation::new(schema.clone(), r))
                    .into_tuples(),
            );
        }
        let join_schema = schema.join(&schema);
        let merged = Relation::new(join_schema, merged).canonicalized();
        let oracle = join(&to_rel(&lrows), &to_rel(&rrows)).canonicalized();
        prop_assert_eq!(merged.tuples(), oracle.tuples());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The distributed machine — physical subplans shipped to fragments,
    // broadcast AND hash-partitioned joins (the scans are sized across
    // the broadcast threshold), decomposable-aggregate merges, CSE memo
    // hits from the union arm — agrees with the reference evaluator on
    // randomized plans, over the columnar wire (the default) AND the
    // legacy row wire run in the same case as a differential check.
    #[test]
    fn distributed_batch_pipeline_matches_reference_evaluator(
        ops in arb_plan_ops(5),
    ) {
        let db = shared_machine();
        prop_assert_eq!(
            db.gdh().executor_columnar_wire(),
            prisma::types::wire::columnar_wire_default(),
            "executor wire should follow the configured default"
        );
        let plan = build_plan(&ops, &int3_schema(), &int3_schema());
        let (rows, _metrics) = db.gdh().query(&plan).unwrap();
        let via_machine = rows.canonicalized();
        let via_reference = eval(&plan, machine_reference()).unwrap().canonicalized();
        prop_assert_eq!(
            via_machine.tuples(),
            via_reference.tuples(),
            "machine and reference disagree on:\n{}",
            plan
        );
        let row_db = shared_row_wire_machine();
        let (rows, _metrics) = row_db.gdh().query(&plan).unwrap();
        let via_row_wire = rows.canonicalized();
        prop_assert_eq!(
            via_row_wire.tuples(),
            via_reference.tuples(),
            "row-wire machine disagrees with the reference on:\n{}",
            plan
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The vectorized kernel tree agrees with the scalar closure compiler
    // on every expression over every row — including NULLs, mixed
    // Int/Double operands and the empty batch (the E5-vectorized
    // correctness precondition).
    #[test]
    fn vectorized_kernels_match_scalar_compiler(
        e in arb_mixed_expr(),
        rows in arb_mixed_rows(24),
    ) {
        let cols = pivot_columns(&rows);
        let sel = SelVec::all(rows.len());
        let scalar = e.compile();
        let out = e.compile_vec().eval(&cols, &sel);
        prop_assert_eq!(out.len(), rows.len());
        for (i, t) in rows.iter().enumerate() {
            prop_assert_eq!(out.value_at(i), scalar(t), "expr {} row {}", e, t);
        }
    }

    // The vectorized predicate produces exactly the selection the scalar
    // compiled predicate keeps, and refining a narrower selection only
    // ever narrows it further.
    #[test]
    fn vectorized_predicate_matches_scalar_predicate(
        p in arb_mixed_predicate(),
        rows in arb_mixed_rows(24),
    ) {
        let cols = pivot_columns(&rows);
        let scalar = p.compile_predicate();
        let mut vp = p.compile_vec_predicate();
        let mut got = Vec::new();
        vp.select(&cols, &SelVec::all(rows.len()), &mut got);
        let expected: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, t)| scalar(t))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(&got, &expected, "predicate {}", p);
        // Re-select over every other row: result must be the subset.
        let half: Vec<u32> = (0..rows.len() as u32).step_by(2).collect();
        vp.select(&cols, &SelVec::from_indices(rows.len(), half), &mut got);
        let expected_half: Vec<u32> =
            expected.iter().copied().filter(|i| i % 2 == 0).collect();
        prop_assert_eq!(got, expected_half, "predicate {}", p);
    }

    // The executor's vectorized Filter → Project → Aggregate pipeline
    // agrees with the reference evaluator over nullable mixed-type data.
    // (The oracle errors out on arithmetic faults the compiled paths
    // degrade to NULL; those cases are skipped, as in the scalar
    // compiled-predicate property.)
    #[test]
    fn vectorized_executor_matches_oracle_with_nulls(
        pred in arb_mixed_predicate(),
        e1 in arb_mixed_expr(),
        e2 in arb_mixed_expr(),
        rows in arb_mixed_rows(24),
    ) {
        let schema = mixed_schema();
        let mut db: HashMap<String, Relation> = HashMap::new();
        db.insert("m".into(), Relation::new(schema.clone(), rows));

        let filtered = LogicalPlan::scan("m", schema.clone()).select(pred);
        let project = LogicalPlan::Project {
            input: Box::new(filtered.clone()),
            exprs: vec![e1.clone(), e2.clone(), ScalarExpr::col(1)],
            schema: Schema::new(vec![
                Column::nullable("x", e1.check(&schema).unwrap_or(DataType::Int)),
                Column::nullable("y", e2.check(&schema).unwrap_or(DataType::Int)),
                Column::nullable("b", DataType::Double),
            ]),
        };
        let aggregate = LogicalPlan::Aggregate {
            input: Box::new(filtered.clone()),
            group_by: vec![0],
            aggs: vec![
                AggExpr::new(AggFunc::CountStar, 0, "n"),
                AggExpr::new(AggFunc::Sum, 2, "s"),
                AggExpr::new(AggFunc::Min, 1, "mn"),
                AggExpr::new(AggFunc::Max, 1, "mx"),
            ],
        };
        for plan in [filtered, project, aggregate] {
            let physical = lower(&plan).unwrap();
            // (An oracle-side arithmetic fault skips the comparison, as
            // in the scalar compiled-predicate property.)
            if let Ok(oracle) = eval(&plan, &db) {
                let got = execute_physical(&physical, &db).unwrap().canonicalized();
                let oracle = oracle.canonicalized();
                prop_assert_eq!(got.tuples(), oracle.tuples(), "plan:\n{}", plan);
            }
        }
    }
}

// ---------- morsel-driven parallel execution vs the oracle ----------

/// Tile `seed` rows until the relation spans several morsels, shifting
/// the first column per copy so join keys stay near-unique (bounding
/// join fan-out). Morsel-parallel pipelines only engage above one
/// `BATCH_SIZE` worth of rows, so un-tiled proptest-sized inputs would
/// silently test the serial fallback instead.
fn tile_rows(seed: &[(i64, i64, i64)], target: usize) -> Vec<Tuple> {
    if seed.is_empty() {
        return Vec::new();
    }
    let copies = target.div_ceil(seed.len());
    let mut rows = Vec::with_capacity(copies * seed.len());
    for copy in 0..copies {
        for &(a, b, c) in seed {
            rows.push(tuple![a + copy as i64 * 61, b, c]);
        }
    }
    rows
}

/// Flatten a (possibly pooled) batch stream into its exact tuple
/// sequence — order preserved, so two runs can be compared bit-for-bit.
fn run_pooled(
    physical: &prisma::relalg::PhysicalPlan,
    db: &HashMap<String, Relation>,
    pool: Option<Arc<prisma::poolx::WorkerPool>>,
) -> Vec<Tuple> {
    prisma::relalg::open_batches_pooled(physical, db, pool)
        .unwrap()
        .drain()
        .unwrap()
        .into_iter()
        .flat_map(prisma::relalg::Batch::into_tuples)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Morsel-parallel execution is **deterministic and bit-identical to
    // serial** on arbitrary plans over morsel-spanning data: the same
    // tuples in the same order at 1, 2 and 4 workers, twice at each
    // width (steal interleavings differ between runs), and the result
    // agrees with the reference evaluator. Covers parallel pipelines,
    // partial hash-join builds merged at the breaker, parallel probes,
    // and partial-aggregate merge ordering; empty relations exercise
    // the zero-morsel edge.
    #[test]
    fn pooled_execution_deterministic_and_matches_oracle(
        ops in arb_plan_ops(4),
        lseed in prop::collection::vec((-30i64..30, -30i64..30, -30i64..30), 0..20),
        rseed in prop::collection::vec((-30i64..30, -30i64..30, -30i64..30), 0..12),
    ) {
        let schema = int3_schema();
        let mut db: HashMap<String, Relation> = HashMap::new();
        db.insert("l".into(), Relation::new(schema.clone(), tile_rows(&lseed, 1600)));
        db.insert("r".into(), Relation::new(schema.clone(), tile_rows(&rseed, 520)));
        let plan = build_plan(&ops, &schema, &schema);
        let physical = lower(&plan).unwrap();

        let serial = run_pooled(&physical, &db, None);
        for workers in [1usize, 2, 4] {
            let pool = prisma::poolx::WorkerPool::new(workers);
            for round in 0..2 {
                let pooled = run_pooled(&physical, &db, Some(Arc::clone(&pool)));
                prop_assert_eq!(
                    &pooled, &serial,
                    "workers={} round={} plan:\n{}", workers, round, plan
                );
            }
        }

        let got = Relation::new(plan.output_schema().unwrap(), serial).canonicalized();
        let oracle = eval(&plan, &db).unwrap().canonicalized();
        prop_assert_eq!(got.tuples(), oracle.tuples(), "plan:\n{}", plan);
    }

    // Same pinning over NULL-heavy nullable mixed-type data: filters,
    // projections and grouped aggregates whose partials are folded at
    // the pipeline breaker must not let worker count change NULL
    // handling or merge order. (An oracle-side arithmetic fault skips
    // the oracle half, as in the other compiled-path properties.)
    #[test]
    fn pooled_execution_handles_nulls_like_serial(
        pred in arb_mixed_predicate(),
        e1 in arb_mixed_expr(),
        seed in arb_mixed_rows(24),
    ) {
        let schema = mixed_schema();
        // Repeat the seed verbatim: duplicate group keys across morsel
        // chunks are exactly what stresses partial-aggregate merging.
        let copies = if seed.is_empty() { 0 } else { 1500_usize.div_ceil(seed.len()) };
        let rows: Vec<Tuple> = std::iter::repeat_n(seed.iter().cloned(), copies).flatten().collect();
        let mut db: HashMap<String, Relation> = HashMap::new();
        db.insert("m".into(), Relation::new(schema.clone(), rows));

        let filtered = LogicalPlan::scan("m", schema.clone()).select(pred);
        let project = LogicalPlan::Project {
            input: Box::new(filtered.clone()),
            exprs: vec![e1.clone(), ScalarExpr::col(1)],
            schema: Schema::new(vec![
                Column::nullable("x", e1.check(&schema).unwrap_or(DataType::Int)),
                Column::nullable("b", DataType::Double),
            ]),
        };
        let aggregate = LogicalPlan::Aggregate {
            input: Box::new(filtered.clone()),
            group_by: vec![0],
            aggs: vec![
                AggExpr::new(AggFunc::CountStar, 0, "n"),
                AggExpr::new(AggFunc::Sum, 2, "s"),
                AggExpr::new(AggFunc::Avg, 1, "avg"),
                AggExpr::new(AggFunc::Min, 1, "mn"),
                AggExpr::new(AggFunc::Max, 1, "mx"),
            ],
        };
        for plan in [filtered, project, aggregate] {
            let physical = lower(&plan).unwrap();
            let serial = run_pooled(&physical, &db, None);
            for workers in [2usize, 4] {
                let pool = prisma::poolx::WorkerPool::new(workers);
                let pooled = run_pooled(&physical, &db, Some(Arc::clone(&pool)));
                prop_assert_eq!(&pooled, &serial, "workers={} plan:\n{}", workers, plan);
            }
            if let Ok(oracle) = eval(&plan, &db) {
                let got = Relation::new(plan.output_schema().unwrap(), serial).canonicalized();
                let oracle = oracle.canonicalized();
                prop_assert_eq!(got.tuples(), oracle.tuples(), "plan:\n{}", plan);
            }
        }
    }
}

fn bytes_mut() -> bytes::BytesMut {
    bytes::BytesMut::new()
}

// ---------- per-fragment statistics: histogram estimation bounds ----------

proptest! {
    /// An equi-depth histogram's range-selectivity estimate is within
    /// one bucket's mass of the true selectivity — for any value
    /// multiset (including heavy skew from the small domain) and any
    /// probe point.
    #[test]
    fn histogram_range_selectivity_within_one_bucket_mass(
        values in prop::collection::vec(-40i64..40, 1..400),
        probe in -60i64..60,
        buckets in 2usize..33,
    ) {
        use prisma::types::Histogram;
        let mut counts: std::collections::BTreeMap<Value, u64> =
            std::collections::BTreeMap::new();
        for &v in &values {
            *counts.entry(Value::Int(v)).or_default() += 1;
        }
        let h = Histogram::equi_depth(counts.iter(), buckets).unwrap();
        prop_assert_eq!(h.rows(), values.len() as u64, "mass is conserved");
        let total = values.len() as f64;
        let bound = h.max_bucket_rows() as f64 / total;
        for inclusive in [false, true] {
            let truth = values
                .iter()
                .filter(|&&v| if inclusive { v <= probe } else { v < probe })
                .count() as f64
                / total;
            let est = h.fraction_below(&Value::Int(probe), inclusive);
            prop_assert!(
                (est - truth).abs() <= bound + 1e-9,
                "inclusive={inclusive}: est {est} truth {truth} bound {bound}"
            );
        }
    }

    /// Equality selectivity from the histogram is within one bucket's
    /// mass of the truth, and exact (not merely bounded) for any value
    /// the most-common-value list carries.
    #[test]
    fn histogram_eq_selectivity_within_one_bucket_mass(
        values in prop::collection::vec(-20i64..20, 1..300),
        probe in -25i64..25,
    ) {
        use prisma::types::Histogram;
        let mut counts: std::collections::BTreeMap<Value, u64> =
            std::collections::BTreeMap::new();
        for &v in &values {
            *counts.entry(Value::Int(v)).or_default() += 1;
        }
        let h = Histogram::equi_depth(counts.iter(), 8).unwrap();
        let total = values.len() as f64;
        let bound = h.max_bucket_rows() as f64 / total;
        let truth = values.iter().filter(|&&v| v == probe).count() as f64 / total;
        let est = h.selectivity_eq(&Value::Int(probe)).unwrap_or(0.0);
        prop_assert!(
            (est - truth).abs() <= bound + 1e-9,
            "est {est} truth {truth} bound {bound}"
        );
        // MCV hits are exact.
        let mut mcv: Vec<(Value, u64)> = counts.iter().map(|(v, &c)| (v.clone(), c)).collect();
        mcv.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        if let Some((v, c)) = mcv.first() {
            if *v == Value::Int(probe) {
                prop_assert!((truth - *c as f64 / total).abs() < 1e-12);
            }
        }
    }
}

// ---------- columnar wire format: round-trip and corruption ----------

/// Slots generated per column plan; each case truncates every plan to one
/// shared row count, so a block's columns line up without needing a
/// flat-map combinator.
const WIRE_SLOTS: usize = 40;

/// One column's generation plan: per-slot `Option` values (None = NULL),
/// or a `Mixed` row-tagged value vector.
#[derive(Debug, Clone)]
enum WireCol {
    Int(Vec<Option<i64>>),
    Double(Vec<Option<f64>>),
    Bool(Vec<Option<bool>>),
    Str(Vec<Option<String>>),
    Mixed(Vec<Value>),
}

/// Canonical data/mask split: defaults under NULL slots, mask present
/// only when at least one slot is NULL — the exact invariant
/// `BlockChunk::decode` reconstructs, so round-trips compare equal.
fn canonical<T: Default + Clone>(slots: &[Option<T>]) -> (Vec<T>, Option<Vec<bool>>) {
    let data = slots.iter().map(|s| s.clone().unwrap_or_default()).collect();
    let nulls = slots
        .iter()
        .any(Option::is_none)
        .then(|| slots.iter().map(Option::is_none).collect());
    (data, nulls)
}

impl WireCol {
    /// Truncate to `rows` and build the canonical [`ColumnVec`].
    fn build(&self, rows: usize) -> ColumnVec {
        match self {
            WireCol::Int(s) => {
                let (data, nulls) = canonical(&s[..rows]);
                ColumnVec::Int { data, nulls }
            }
            WireCol::Double(s) => {
                let (data, nulls) = canonical(&s[..rows]);
                ColumnVec::Double { data, nulls }
            }
            WireCol::Bool(s) => {
                let (data, nulls) = canonical(&s[..rows]);
                ColumnVec::Bool { data, nulls }
            }
            WireCol::Str(s) => {
                let (data, nulls) = canonical(&s[..rows]);
                ColumnVec::Str { data, nulls }
            }
            WireCol::Mixed(vals) => ColumnVec::Mixed(vals[..rows].to_vec()),
        }
    }
}

/// Column plans spanning every encoder and its selection heuristic:
/// full-range ints (raw), small-range ints (delta/bitpack), constant
/// columns, all-NULL columns, bit-pattern doubles (NaN payloads,
/// infinities, signed zeros), bools, high-cardinality strings (raw),
/// low-cardinality strings (dictionary, RLE when runs dominate), and the
/// `Mixed` row-tagged fallback. Roughly 1-in-8 slots are NULL in the
/// nullable arms.
fn arb_wire_col() -> impl Strategy<Value = WireCol> {
    let null_int = (0u8..8, any::<i64>()).prop_map(|(t, v)| (t != 0).then_some(v));
    let small_int = (0u8..8, -200i64..200).prop_map(|(t, v)| (t != 0).then_some(v));
    let null_double = (0u8..8, any::<f64>()).prop_map(|(t, v)| (t != 0).then_some(v));
    let null_bool = (0u8..8, any::<bool>()).prop_map(|(t, v)| (t != 0).then_some(v));
    let null_str = (0u8..8, "[a-z]{0,12}").prop_map(|(t, v)| (t != 0).then_some(v));
    prop_oneof![
        prop::collection::vec(null_int, WIRE_SLOTS).prop_map(WireCol::Int),
        prop::collection::vec(small_int, WIRE_SLOTS).prop_map(WireCol::Int),
        any::<i64>().prop_map(|v| WireCol::Int(vec![Some(v); WIRE_SLOTS])),
        Just(WireCol::Int(vec![None; WIRE_SLOTS])),
        prop::collection::vec(null_double, WIRE_SLOTS).prop_map(WireCol::Double),
        prop::collection::vec(null_bool, WIRE_SLOTS).prop_map(WireCol::Bool),
        prop::collection::vec(null_str, WIRE_SLOTS).prop_map(WireCol::Str),
        // Low cardinality: every value drawn from a pool of at most four
        // short strings, so the dictionary (and, with long runs, RLE)
        // encoders win the cost comparison.
        (
            prop::collection::vec("[a-z]{0,4}", 1..5),
            prop::collection::vec((0u8..8, 0usize..8), WIRE_SLOTS),
        )
            .prop_map(|(pool, picks)| {
                WireCol::Str(
                    picks
                        .into_iter()
                        .map(|(t, i)| (t != 0).then(|| pool[i % pool.len()].clone()))
                        .collect(),
                )
            }),
        Just(WireCol::Str(vec![None; WIRE_SLOTS])),
        prop::collection::vec(arb_value(), WIRE_SLOTS).prop_map(WireCol::Mixed),
    ]
}

/// Column equality with `Double` payloads compared bit-for-bit: NaN
/// payloads and signed zeros must survive the wire exactly, and plain
/// `PartialEq` would reject `NaN == NaN`.
fn cols_bit_eq(a: &ColumnVec, b: &ColumnVec) -> bool {
    match (a, b) {
        (
            ColumnVec::Double { data: da, nulls: na },
            ColumnVec::Double { data: db, nulls: nb },
        ) => {
            na == nb
                && da.len() == db.len()
                && da.iter().zip(db).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        (ColumnVec::Mixed(va), ColumnVec::Mixed(vb)) => {
            va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| match (x, y) {
                    (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                    _ => x == y,
                })
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // encode → decode is bit-identical for arbitrary canonical columns:
    // every encoder (raw/delta ints, dict/RLE strings, bool bitmaps, the
    // Mixed fallback) and every shape (nullable, empty, all-NULL,
    // single-value, high/low-cardinality Str), whatever codec the
    // selection heuristics pick. Re-encoding the decoded columns must
    // reproduce the same frame bytes — the canonical form is a fixed
    // point of the codec.
    #[test]
    fn wire_block_roundtrip_is_bit_identical(
        rows in 0usize..WIRE_SLOTS + 1,
        plans in prop::collection::vec(arb_wire_col(), 1..6),
    ) {
        let cols: Vec<ColumnVec> = plans.iter().map(|p| p.build(rows)).collect();
        let block = BlockChunk::from_columns(rows, cols.iter().map(Cow::Borrowed));
        prop_assert_eq!(block.rows(), rows);
        prop_assert_eq!(block.wire_bits(), block.as_bytes().len() as u64 * 8);
        let decoded = block.decode().unwrap();
        prop_assert_eq!(decoded.len(), cols.len());
        for (i, (orig, back)) in cols.iter().zip(&decoded).enumerate() {
            prop_assert!(
                cols_bit_eq(orig, back),
                "column {} mis-decoded:\n  sent {:?}\n  got  {:?}",
                i,
                orig,
                back
            );
        }
        let again = BlockChunk::from_columns(rows, decoded.iter().map(Cow::Borrowed));
        prop_assert_eq!(again.as_bytes(), block.as_bytes(), "re-encode is not a fixed point");
    }

    // A frame mangled at an arbitrary offset — bit flip in any payload
    // byte (even seeds) or truncation (odd seeds), the same mutation the
    // fault injector's CorruptChunk applies on the live wire — must
    // always surface as a `wire:` protocol error: never a panic, never a
    // silent mis-decode.
    #[test]
    fn corrupted_wire_block_never_decodes(
        rows in 0usize..WIRE_SLOTS + 1,
        plans in prop::collection::vec(arb_wire_col(), 1..6),
        seed in any::<u64>(),
    ) {
        let cols: Vec<ColumnVec> = plans.iter().map(|p| p.build(rows)).collect();
        let mut block = BlockChunk::from_columns(rows, cols.iter().map(Cow::Borrowed));
        block.corrupt_in_place(seed);
        match block.decode() {
            Ok(_) => prop_assert!(false, "corrupt frame decoded (seed {:#x})", seed),
            Err(e) => prop_assert!(
                e.to_string().contains("wire:"),
                "not a wire protocol error: {} (seed {:#x})",
                e,
                seed
            ),
        }
    }
}

// ---------- columnar wire under mid-query failover ----------

/// A 4-PE machine with a 1-second reply deadline, so a dropped reply
/// chunk retires its stream quickly instead of stalling for the default
/// deadline (the shape `end_to_end.rs` uses for the E10 failover tests).
fn failover_db() -> PrismaMachine {
    let cfg = prisma::types::MachineConfig {
        num_pes: 4,
        topology: prisma::types::TopologyKind::Mesh,
        ..prisma::types::MachineConfig::default()
    }
    .with_reply_timeout_secs(1);
    PrismaMachine::builder().config(cfg).build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Mid-query failover over the columnar wire: a grace join whose reply
    // streams lose randomly chosen chunks (forcing retire + re-request
    // under the PR 7 failover protocol) still matches the eval oracle
    // exactly — and the row wire survives the same fault script in the
    // same case as a differential check. The armed-but-empty injector
    // calibrates the per-PE chunk clock on a fault-free run, so drops can
    // be scripted at each victim's first chunk of the *next* run.
    #[test]
    fn failover_rerequests_match_eval_oracle_on_both_wires(
        lrows in prop::collection::vec((-20i64..20, -20i64..20, -20i64..20), 30..90),
        rrows in prop::collection::vec((-20i64..20, -20i64..20, -20i64..20), 20..70),
        victims in prop::collection::vec(0usize..4, 1..3),
        seed in any::<u64>(),
    ) {
        use prisma::faultx::{FaultInjector, FaultSpec};
        use prisma::optimizer::PhysicalConfig;
        use prisma::types::PeId;

        let schema = int3_schema();
        let to_rel = |rows: &[(i64, i64, i64)]| {
            Relation::new(
                schema.clone(),
                rows.iter().map(|&(a, b, c)| tuple![a, b, c]).collect(),
            )
        };
        let faults = FaultInjector::scripted(seed, vec![]);
        let mut db = failover_db();
        db.gdh_mut().set_fault_injector(faults.clone());
        db.gdh_mut().set_physical_config(PhysicalConfig {
            broadcast_max_rows: 0.0,
            ..PhysicalConfig::default()
        });
        db.sql("CREATE TABLE l (a INT, b INT, c INT) FRAGMENTED BY HASH(a) INTO 3")
            .unwrap();
        db.sql("CREATE TABLE r (a INT, b INT, c INT) FRAGMENTED BY HASH(c) INTO 2")
            .unwrap();
        for (name, rows) in [("l", &lrows), ("r", &rrows)] {
            db.sql(&format!(
                "INSERT INTO {name} VALUES {}",
                values_clause(to_rel(rows).tuples())
            ))
            .unwrap();
        }
        let plan = LogicalPlan::scan("l", schema.clone())
            .join(LogicalPlan::scan("r", schema.clone()), vec![(0, 0)]);
        let mut reference: HashMap<String, Relation> = HashMap::new();
        reference.insert("l".into(), to_rel(&lrows));
        reference.insert("r".into(), to_rel(&rrows));
        let oracle = eval(&plan, &reference).unwrap().canonicalized();

        // Fault-free calibration run (also pins the no-fault answer).
        let (calm, calm_metrics) = db.gdh().query(&plan).unwrap();
        prop_assert_eq!(calm_metrics.partitioned_joins, 1, "{:?}", calm_metrics);
        let calm = calm.canonicalized();
        prop_assert_eq!(calm.tuples(), oracle.tuples());

        // Both wires take a faulted turn; chunk ordinals are scripted
        // against the clock right before each run, so the second script
        // lands in the third run regardless of how many extra chunks the
        // re-requests of the second shipped.
        for columnar in [true, false] {
            db.gdh_mut().set_columnar_wire(columnar);
            let specs: Vec<FaultSpec> = victims
                .iter()
                .map(|&pe| PeId(pe as u32))
                .filter(|&pe| faults.chunks_seen(pe) > 0)
                .map(|pe| FaultSpec::DropChunk { pe, nth: faults.chunks_seen(pe) + 1 })
                .collect();
            let expect_rerequest = !specs.is_empty();
            faults.script(specs);
            let (rows, metrics) = db.gdh().query(&plan).unwrap();
            let rows = rows.canonicalized();
            prop_assert_eq!(
                rows.tuples(),
                oracle.tuples(),
                "columnar={}: faulted run disagrees with the oracle",
                columnar
            );
            if expect_rerequest {
                prop_assert!(
                    metrics.streams_rerequested >= 1,
                    "columnar={}: no stream was re-requested — the drop never bit: {:?}",
                    columnar,
                    metrics
                );
            }
            prop_assert_eq!(metrics.failovers, 0, "no PE died: {:?}", metrics);
        }
        db.shutdown();
    }
}
