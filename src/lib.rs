//! # prisma
//!
//! Umbrella crate for the PRISMA database machine reproduction. Everything
//! lives in [`prisma_core`]; this crate re-exports it so examples and
//! integration tests sit at the workspace root, next to the paper's
//! documentation (README.md, DESIGN.md, EXPERIMENTS.md).

pub use prisma_core::*;
/// Workload generators used by the examples and benches.
pub use prisma_workload as workload;
