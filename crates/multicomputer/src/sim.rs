//! Discrete-event, store-and-forward packet simulator.
//!
//! The model follows the paper's description of the interconnect: packets
//! of 256 bits hop between PEs over 10 Mbit/s links. Each directed link is
//! a FIFO server with deterministic service time `packet_bits / bandwidth`
//! (25.6 µs for the paper parameters); a configurable per-hop switching
//! latency is added on top. Routing uses the precomputed shortest-path
//! next-hop tables of [`Topology`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use prisma_faultx::FaultInjector;
use prisma_types::{MachineConfig, PeId, Result};

use crate::stats::NetworkStats;
use crate::topology::Topology;

/// Simulation time in nanoseconds since simulation start.
pub type SimTime = u64;

/// One 256-bit packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique per-simulation id.
    pub id: u64,
    /// Origin PE.
    pub src: PeId,
    /// Destination PE.
    pub dst: PeId,
    /// Injection time at the source.
    pub injected_at: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Packet ready to leave `at` towards its destination.
    Depart { at: PeId },
    /// Packet fully received by `at` (store-and-forward hop done).
    Arrive { at: PeId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64, // tie-breaker for determinism
    packet: Packet,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The network simulator.
///
/// Drive it by [`NetworkSim::inject`]ing packets (typically via a
/// [`crate::traffic::TrafficPattern`]) and then [`NetworkSim::run_until`].
pub struct NetworkSim {
    topology: Topology,
    /// Transmission time of one packet over one link, ns.
    packet_tx_ns: u64,
    /// Extra switching latency per hop, ns.
    hop_latency_ns: u64,
    /// `busy_until[src][k]` — earliest time directed link `src -> neighbors(src)[k]`
    /// is free.
    busy_until: Vec<Vec<SimTime>>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    next_packet_id: u64,
    stats: NetworkStats,
    /// Fault injector consulted per injected packet: packets to or from a
    /// dead PE are dropped at the NIC, and randomized delay faults add
    /// latency at the source.
    faults: Option<Arc<FaultInjector>>,
    dropped_packets: u64,
}

impl NetworkSim {
    /// Build a simulator for the configured machine.
    pub fn new(config: &MachineConfig) -> Result<NetworkSim> {
        let topology = Topology::build(config)?;
        let packet_tx_ns = (config.packet_bits as f64 / config.link_bandwidth_bps as f64
            * 1e9)
            .round() as u64;
        let busy_until = (0..topology.num_pes())
            .map(|i| vec![0; topology.neighbors(PeId::from(i)).len()])
            .collect();
        Ok(NetworkSim {
            topology,
            packet_tx_ns,
            hop_latency_ns: config.hop_latency_ns,
            busy_until,
            events: BinaryHeap::new(),
            seq: 0,
            next_packet_id: 0,
            stats: NetworkStats::new(config.num_pes),
            faults: None,
            dropped_packets: 0,
        })
    }

    /// Attach a fault injector; every subsequently injected packet
    /// consults it (dead-PE drops, randomized delays).
    pub fn set_fault_injector(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Packets dropped at injection because an endpoint PE was dead.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    /// The topology the simulator routes over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// One-packet link transmission time in nanoseconds (25 600 ns for the
    /// paper's 256-bit packets on 10 Mbit/s links).
    pub fn packet_tx_ns(&self) -> u64 {
        self.packet_tx_ns
    }

    /// Queue a packet for injection at `src` at simulated time `when`.
    ///
    /// With a fault injector attached, packets touching a dead PE are
    /// dropped at the NIC (counted in [`Self::dropped_packets`], never
    /// delivered) and randomized delay faults defer the departure by one
    /// extra service time — a reorder the protocols above must mask.
    pub fn inject(&mut self, src: PeId, dst: PeId, when: SimTime) -> u64 {
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let mut when = when;
        if let Some(faults) = &self.faults {
            if faults.is_dead(src) || faults.is_dead(dst) {
                self.dropped_packets += 1;
                return id;
            }
            when += faults.packet_delay_ns(src, self.packet_tx_ns);
        }
        let packet = Packet {
            id,
            src,
            dst,
            injected_at: when,
        };
        self.stats.record_injected(src);
        self.push(Event {
            time: when,
            seq: 0,
            packet,
            kind: EventKind::Depart { at: src },
        });
        id
    }

    fn push(&mut self, mut ev: Event) {
        ev.seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(ev));
    }

    /// Run the event loop until the queue drains or simulated time passes
    /// `deadline` (events beyond the deadline stay queued). Returns the time
    /// of the last processed event.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        let mut now = 0;
        while let Some(Reverse(ev)) = self.events.peek().copied() {
            if ev.time > deadline {
                break;
            }
            self.events.pop();
            now = ev.time;
            self.handle(ev);
        }
        now
    }

    /// Run until every queued event (including cascades) is processed.
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run_until(SimTime::MAX)
    }

    fn handle(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Depart { at } => {
                if at == ev.packet.dst {
                    // Degenerate self-send: delivered instantly.
                    self.stats
                        .record_delivered(ev.packet.dst, ev.time, ev.packet.injected_at);
                    return;
                }
                let hop = self.topology.next_hop(at, ev.packet.dst);
                // Find the link slot for this neighbor.
                let slot = self
                    .topology
                    .neighbors(at)
                    .iter()
                    .position(|&n| n == hop)
                    .expect("next_hop returns a neighbor");
                let busy = &mut self.busy_until[at.index()][slot];
                let start = (*busy).max(ev.time);
                let done = start + self.packet_tx_ns;
                *busy = done;
                self.stats
                    .record_link_busy(at, done - start, start - ev.time);
                self.push(Event {
                    time: done + self.hop_latency_ns,
                    seq: 0,
                    packet: ev.packet,
                    kind: EventKind::Arrive { at: hop },
                });
            }
            EventKind::Arrive { at } => {
                if at == ev.packet.dst {
                    self.stats
                        .record_delivered(at, ev.time, ev.packet.injected_at);
                } else {
                    // Store-and-forward: the packet is now queued for the
                    // next outbound link.
                    self.push(Event {
                        time: ev.time,
                        seq: 0,
                        packet: ev.packet,
                        kind: EventKind::Depart { at },
                    });
                }
            }
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Reset statistics (e.g. after a warm-up phase) without disturbing
    /// in-flight packets or link state.
    pub fn reset_stats(&mut self) {
        let n = self.topology.num_pes();
        self.stats = NetworkStats::new(n);
    }

    /// Number of events still queued (in-flight packets).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::TopologyKind;

    fn sim(cfg: &MachineConfig) -> NetworkSim {
        NetworkSim::new(cfg).unwrap()
    }

    #[test]
    fn single_packet_latency_is_hops_times_service_time() {
        let cfg = MachineConfig::paper_prototype();
        let mut s = sim(&cfg);
        // PE0 -> PE63 on the 8x8 mesh: 14 hops.
        s.inject(PeId(0), PeId(63), 0);
        s.run_to_completion();
        let st = s.stats();
        assert_eq!(st.delivered_total(), 1);
        let hops = s.topology().distance(PeId(0), PeId(63)) as u64;
        assert_eq!(hops, 14);
        let expect = hops * (s.packet_tx_ns() + cfg.hop_latency_ns);
        assert_eq!(st.mean_latency_ns().round() as u64, expect);
    }

    #[test]
    fn paper_packet_service_time_is_25_6_us() {
        let s = sim(&MachineConfig::paper_prototype());
        assert_eq!(s.packet_tx_ns(), 25_600);
    }

    #[test]
    fn fifo_link_serializes_contending_packets() {
        // Two packets leave PE0 for the same neighbor at t=0; the second
        // must wait one service time.
        let cfg = MachineConfig::paper_prototype();
        let mut s = sim(&cfg);
        s.inject(PeId(0), PeId(1), 0);
        s.inject(PeId(0), PeId(1), 0);
        s.run_to_completion();
        let st = s.stats();
        assert_eq!(st.delivered_total(), 2);
        let tx = s.packet_tx_ns() + cfg.hop_latency_ns;
        // latencies: tx and 2*tx - hop_latency? Second starts at 25600.
        let lat_sum = (tx) + (2 * s.packet_tx_ns() + cfg.hop_latency_ns);
        assert_eq!(st.total_latency_ns(), lat_sum);
    }

    #[test]
    fn self_send_is_free() {
        let mut s = sim(&MachineConfig::paper_prototype());
        s.inject(PeId(5), PeId(5), 100);
        s.run_to_completion();
        assert_eq!(s.stats().delivered_total(), 1);
        assert_eq!(s.stats().total_latency_ns(), 0);
    }

    #[test]
    fn deadline_stops_but_preserves_events() {
        let mut s = sim(&MachineConfig::paper_prototype());
        s.inject(PeId(0), PeId(63), 0);
        s.run_until(1000); // far less than the 14-hop latency
        assert_eq!(s.stats().delivered_total(), 0);
        assert!(s.pending_events() > 0);
        s.run_to_completion();
        assert_eq!(s.stats().delivered_total(), 1);
    }

    #[test]
    fn all_packets_delivered_on_chordal_ring() {
        let cfg = MachineConfig::paper_prototype()
            .with_topology(TopologyKind::ChordalRing { stride: 8 });
        let mut s = sim(&cfg);
        for i in 0..64u32 {
            s.inject(PeId(i), PeId((i * 7 + 3) % 64), (i as u64) * 1000);
        }
        s.run_to_completion();
        assert_eq!(s.stats().delivered_total(), 64);
    }

    #[test]
    fn dead_pe_drops_packets_at_the_nic() {
        let cfg = MachineConfig::paper_prototype();
        let mut s = sim(&cfg);
        let faults = prisma_faultx::FaultInjector::inert();
        faults.kill_pe(PeId(7));
        s.set_fault_injector(faults);
        s.inject(PeId(0), PeId(7), 0); // into the dead PE
        s.inject(PeId(7), PeId(0), 0); // out of the dead PE
        s.inject(PeId(0), PeId(1), 0); // unaffected
        s.run_to_completion();
        assert_eq!(s.dropped_packets(), 2);
        assert_eq!(s.stats().delivered_total(), 1);
    }

    #[test]
    fn injected_delays_reorder_but_deliver_everything() {
        let cfg = MachineConfig::paper_prototype();
        let mut a = sim(&cfg);
        let mut b = sim(&cfg);
        a.set_fault_injector(prisma_faultx::FaultInjector::delay_matrix(11, 0.5));
        b.set_fault_injector(prisma_faultx::FaultInjector::delay_matrix(11, 0.5));
        for i in 0..50u32 {
            a.inject(PeId(i % 64), PeId((i * 13 + 5) % 64), (i as u64) * 777);
            b.inject(PeId(i % 64), PeId((i * 13 + 5) % 64), (i as u64) * 777);
        }
        a.run_to_completion();
        b.run_to_completion();
        // Delays lose nothing and stay deterministic for the seed.
        assert_eq!(a.stats().delivered_total(), 50);
        assert_eq!(a.dropped_packets(), 0);
        assert_eq!(a.stats().total_latency_ns(), b.stats().total_latency_ns());
    }

    #[test]
    fn determinism_same_injections_same_stats() {
        let cfg = MachineConfig::paper_prototype();
        let mut a = sim(&cfg);
        let mut b = sim(&cfg);
        for i in 0..200u32 {
            let (src, dst, t) = (PeId(i % 64), PeId((i * 13 + 5) % 64), (i as u64) * 777);
            a.inject(src, dst, t);
            b.inject(src, dst, t);
        }
        a.run_to_completion();
        b.run_to_completion();
        assert_eq!(a.stats().delivered_total(), b.stats().delivered_total());
        assert_eq!(a.stats().total_latency_ns(), b.stats().total_latency_ns());
    }
}
