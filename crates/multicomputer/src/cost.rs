//! Analytic communication-cost model used by the DBMS layers.
//!
//! The query optimizer's parallelism-allocation rules (paper §2.4) and the
//! data-allocation manager (§2.2) need to *predict* communication cost
//! without running the packet simulator. [`CostModel`] provides closed-form
//! estimates consistent with the simulator: a message of `b` bytes shipped
//! over `h` hops is segmented into ⌈8b/256⌉ packets that pipeline through
//! the store-and-forward path.

use prisma_types::{MachineConfig, PeId, Result};

use crate::topology::Topology;

/// Closed-form communication cost estimates over a [`Topology`].
#[derive(Debug, Clone)]
pub struct CostModel {
    topology: Topology,
    packet_bits: u64,
    packet_tx_ns: f64,
    hop_latency_ns: f64,
}

impl CostModel {
    /// Build the cost model for a machine configuration.
    pub fn new(config: &MachineConfig) -> Result<CostModel> {
        Ok(CostModel {
            topology: Topology::build(config)?,
            packet_bits: config.packet_bits,
            packet_tx_ns: config.packet_bits as f64 / config.link_bandwidth_bps as f64 * 1e9,
            hop_latency_ns: config.hop_latency_ns as f64,
        })
    }

    /// Underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of 256-bit packets needed for a payload of `bytes`.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        let bits = bytes * 8;
        bits.div_ceil(self.packet_bits).max(1)
    }

    /// Estimated nanoseconds to deliver `bytes` from `src` to `dst` on an
    /// otherwise idle network.
    ///
    /// Store-and-forward pipelining: the first packet pays the full
    /// `hops × (tx + hop_latency)`; each subsequent packet adds one `tx`
    /// (the path acts as a pipeline of depth `hops`).
    pub fn transfer_ns(&self, src: PeId, dst: PeId, bytes: u64) -> f64 {
        if src == dst || bytes == 0 {
            return 0.0;
        }
        let hops = self.topology.distance(src, dst) as f64;
        let packets = self.packets_for(bytes) as f64;
        hops * (self.packet_tx_ns + self.hop_latency_ns) + (packets - 1.0) * self.packet_tx_ns
    }

    /// Estimated nanoseconds for a scatter of `bytes_per_dest` from `src`
    /// to each PE in `dests`, assuming the source link is the bottleneck
    /// (transmissions serialize at the source, deliveries overlap).
    pub fn scatter_ns(&self, src: PeId, dests: &[PeId], bytes_per_dest: u64) -> f64 {
        let remote: Vec<_> = dests.iter().filter(|&&d| d != src).collect();
        if remote.is_empty() {
            return 0.0;
        }
        let per = self.packets_for(bytes_per_dest) as f64 * self.packet_tx_ns;
        let serialize = per * remote.len() as f64;
        let worst_path = remote
            .iter()
            .map(|&&d| self.topology.distance(src, d) as f64)
            .fold(0.0, f64::max)
            * (self.packet_tx_ns + self.hop_latency_ns);
        serialize + worst_path
    }

    /// Estimated nanoseconds for `src` to gather `bytes_per_src` from each
    /// PE in `sources` (deliveries serialize at the destination's links).
    pub fn gather_ns(&self, dst: PeId, sources: &[PeId], bytes_per_src: u64) -> f64 {
        // Symmetric to scatter on a full-duplex network.
        self.scatter_ns(dst, sources, bytes_per_src)
    }

    /// Bytes × hops metric: total link-bandwidth consumption of shipping
    /// `bytes` from `src` to `dst`. The allocation manager minimizes this
    /// aggregate when placing fragments.
    pub fn byte_hops(&self, src: PeId, dst: PeId, bytes: u64) -> u64 {
        self.topology.distance(src, dst) as u64 * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(&MachineConfig::paper_prototype()).unwrap()
    }

    #[test]
    fn packet_segmentation() {
        let m = model();
        assert_eq!(m.packets_for(0), 1);
        assert_eq!(m.packets_for(32), 1); // exactly 256 bits
        assert_eq!(m.packets_for(33), 2);
        assert_eq!(m.packets_for(3200), 100);
    }

    #[test]
    fn local_transfer_is_free() {
        let m = model();
        assert_eq!(m.transfer_ns(PeId(3), PeId(3), 1 << 20), 0.0);
    }

    #[test]
    fn pipelining_amortizes_hops() {
        let m = model();
        // 1000 packets over 14 hops should take ≈ (14 + 999) service times,
        // far less than 14 × 1000.
        let t = m.transfer_ns(PeId(0), PeId(63), 32_000);
        let tx = 25_600.0;
        let naive = 14.0 * 1000.0 * tx;
        assert!(t < naive / 5.0, "t={t}, naive={naive}");
        assert!(t > 999.0 * tx, "must at least serialize at the source");
    }

    #[test]
    fn nearer_destination_is_cheaper() {
        let m = model();
        let near = m.transfer_ns(PeId(0), PeId(1), 1024);
        let far = m.transfer_ns(PeId(0), PeId(63), 1024);
        assert!(near < far);
    }

    #[test]
    fn scatter_serializes_at_source() {
        let m = model();
        let dests: Vec<PeId> = (1..9).map(PeId::from).collect();
        let one = m.transfer_ns(PeId(0), dests[0], 3200);
        let all = m.scatter_ns(PeId(0), &dests, 3200);
        assert!(all > one * 4.0, "scatter {all} vs single {one}");
        // Scattering "to yourself" costs nothing.
        assert_eq!(m.scatter_ns(PeId(0), &[PeId(0)], 3200), 0.0);
    }

    #[test]
    fn byte_hops_metric() {
        let m = model();
        assert_eq!(m.byte_hops(PeId(0), PeId(1), 100), 100);
        assert_eq!(m.byte_hops(PeId(0), PeId(63), 100), 1400);
    }
}
