//! Synthetic traffic patterns for the E1 network experiment.
//!
//! The paper reports throughput for PEs sending "simultaneously"; the
//! canonical workload for such a claim is uniform random traffic, which we
//! complement with the standard adversarial patterns used in interconnect
//! studies (hotspot, bit-reversal-like permutation, nearest neighbour).

use prisma_types::PeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sim::{NetworkSim, SimTime};

/// Destination-selection strategy for generated packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Every packet picks a uniformly random destination ≠ source.
    UniformRandom,
    /// A fraction `hot_fraction` of packets targets PE 0; the rest uniform.
    Hotspot {
        /// Fraction of packets addressed to the hot PE (0.0–1.0).
        hot_fraction: f64,
    },
    /// Fixed permutation: PE `i` always sends to PE `(i + n/2) mod n`
    /// (worst-case distance on a ring, long paths on a mesh).
    Transpose,
    /// PE `i` sends to a uniformly chosen direct neighbour (best case).
    NearestNeighbor,
}

impl TrafficPattern {
    fn pick_dst(&self, src: PeId, n: usize, sim: &NetworkSim, rng: &mut StdRng) -> PeId {
        match self {
            TrafficPattern::UniformRandom => loop {
                let d = PeId::from(rng.gen_range(0..n));
                if d != src {
                    return d;
                }
            },
            TrafficPattern::Hotspot { hot_fraction } => {
                if rng.gen_bool((*hot_fraction).clamp(0.0, 1.0)) && src != PeId(0) {
                    PeId(0)
                } else {
                    TrafficPattern::UniformRandom.pick_dst(src, n, sim, rng)
                }
            }
            TrafficPattern::Transpose => PeId::from((src.index() + n / 2) % n),
            TrafficPattern::NearestNeighbor => {
                let nbrs = sim.topology().neighbors(src);
                nbrs[rng.gen_range(0..nbrs.len())]
            }
        }
    }
}

/// Open-loop traffic generator: every PE injects packets with exponential
/// inter-arrival times of mean `1/rate_pps`, destinations drawn from
/// `pattern`.
///
/// Returns the number of packets injected. Use
/// [`NetworkSim::reset_stats`] after a warm-up run for steady-state
/// measurements.
pub fn inject_open_loop(
    sim: &mut NetworkSim,
    pattern: TrafficPattern,
    rate_pps: f64,
    start: SimTime,
    end: SimTime,
    seed: u64,
) -> u64 {
    let n = sim.topology().num_pes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut injected = 0;
    for pe in 0..n {
        let src = PeId::from(pe);
        let mut t = start as f64;
        loop {
            // Exponential inter-arrival: -ln(U)/rate seconds.
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / rate_pps * 1e9;
            if t >= end as f64 {
                break;
            }
            let dst = pattern.pick_dst(src, n, sim, &mut rng);
            sim.inject(src, dst, t as SimTime);
            injected += 1;
        }
    }
    injected
}

/// Measured outcome of one offered-load point in a throughput sweep.
#[derive(Debug, Clone, Copy)]
pub struct LoadPoint {
    /// Offered load per PE, packets/second.
    pub offered_pps: f64,
    /// Delivered throughput per PE, packets/second.
    pub delivered_pps: f64,
    /// Mean end-to-end latency, microseconds.
    pub mean_latency_us: f64,
    /// Mean per-hop queueing delay, microseconds.
    pub mean_queue_wait_us: f64,
}

/// Run a full offered-load sweep — the E1 experiment.
///
/// For each offered rate, the network is warmed up for `warmup_ms`, stats
/// are reset, and throughput is measured over `measure_ms` of simulated
/// time. The returned curve flattens at the saturation throughput, which
/// for the paper's parameters lands near 20 000 packets/s/PE.
pub fn throughput_sweep(
    config: &prisma_types::MachineConfig,
    pattern: TrafficPattern,
    offered_rates_pps: &[f64],
    warmup_ms: u64,
    measure_ms: u64,
    seed: u64,
) -> Vec<LoadPoint> {
    let mut points = Vec::with_capacity(offered_rates_pps.len());
    for (i, &rate) in offered_rates_pps.iter().enumerate() {
        let mut sim = NetworkSim::new(config).expect("valid config");
        let warm_end = warmup_ms * 1_000_000;
        let meas_end = warm_end + measure_ms * 1_000_000;
        inject_open_loop(&mut sim, pattern, rate, 0, meas_end, seed ^ (i as u64) << 32);
        sim.run_until(warm_end);
        sim.reset_stats();
        sim.run_until(meas_end);
        let st = sim.stats();
        points.push(LoadPoint {
            offered_pps: rate,
            delivered_pps: st.per_pe_throughput_pps(meas_end - warm_end),
            mean_latency_us: st.mean_latency_ns() / 1e3,
            mean_queue_wait_us: st.mean_queue_wait_ns() / 1e3,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::MachineConfig;

    #[test]
    fn open_loop_injection_rate_is_close_to_requested() {
        let cfg = MachineConfig::paper_prototype();
        let mut sim = NetworkSim::new(&cfg).unwrap();
        // 1000 pps per PE for 100 ms => ~100 packets per PE => ~6400 total.
        let injected =
            inject_open_loop(&mut sim, TrafficPattern::UniformRandom, 1000.0, 0, 100_000_000, 7);
        assert!(
            (4500..8500).contains(&injected),
            "injected {injected}, expected ≈6400"
        );
    }

    #[test]
    fn low_load_is_fully_delivered() {
        let cfg = MachineConfig::paper_prototype();
        let mut sim = NetworkSim::new(&cfg).unwrap();
        inject_open_loop(&mut sim, TrafficPattern::UniformRandom, 500.0, 0, 50_000_000, 11);
        sim.run_to_completion();
        assert!((sim.stats().delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_neighbor_beats_transpose_on_latency() {
        let cfg = MachineConfig::paper_prototype();
        let run = |p| {
            let mut sim = NetworkSim::new(&cfg).unwrap();
            inject_open_loop(&mut sim, p, 1000.0, 0, 20_000_000, 3);
            sim.run_to_completion();
            sim.stats().mean_latency_ns()
        };
        let nn = run(TrafficPattern::NearestNeighbor);
        let tr = run(TrafficPattern::Transpose);
        assert!(nn < tr, "nearest-neighbour {nn} should beat transpose {tr}");
    }

    #[test]
    fn sweep_saturates_below_offered_load() {
        // Offer far more than a link can carry; delivered must flatten well
        // below the offered rate.
        let cfg = MachineConfig::paper_prototype();
        let pts = throughput_sweep(
            &cfg,
            TrafficPattern::UniformRandom,
            &[5_000.0, 80_000.0],
            5,
            20,
            42,
        );
        assert!(pts[0].delivered_pps > 4_000.0, "{:?}", pts[0]);
        assert!(
            pts[1].delivered_pps < 45_000.0,
            "saturated point should be far below 80k: {:?}",
            pts[1]
        );
        assert!(pts[1].mean_queue_wait_us > pts[0].mean_queue_wait_us);
    }

    #[test]
    fn hotspot_concentrates_deliveries_on_pe0() {
        let cfg = MachineConfig::paper_prototype();
        let mut sim = NetworkSim::new(&cfg).unwrap();
        inject_open_loop(
            &mut sim,
            TrafficPattern::Hotspot { hot_fraction: 0.5 },
            500.0,
            0,
            50_000_000,
            9,
        );
        sim.run_to_completion();
        let per = sim.stats().delivered_per_pe();
        let total: u64 = per.iter().sum();
        assert!(
            per[0] as f64 > 0.3 * total as f64,
            "hotspot PE got {} of {}",
            per[0],
            total
        );
    }
}
