//! Measurement of simulated network behaviour.

use prisma_types::PeId;

use crate::sim::SimTime;

/// Counters accumulated by [`crate::NetworkSim`].
///
/// The headline metric for experiment E1 is
/// [`NetworkStats::per_pe_throughput_pps`]: delivered packets per second per
/// PE, to be compared with the paper's "up to 20.000 packets per second for
/// each processing element simultaneously".
#[derive(Debug, Clone)]
pub struct NetworkStats {
    injected: Vec<u64>,
    delivered: Vec<u64>,
    total_latency_ns: u64,
    max_latency_ns: u64,
    first_delivery: Option<SimTime>,
    last_delivery: SimTime,
    link_busy_ns: u64,
    queue_wait_ns: u64,
    hops_served: u64,
}

impl NetworkStats {
    /// Fresh counters for an `n`-PE machine.
    pub fn new(n: usize) -> Self {
        NetworkStats {
            injected: vec![0; n],
            delivered: vec![0; n],
            total_latency_ns: 0,
            max_latency_ns: 0,
            first_delivery: None,
            last_delivery: 0,
            link_busy_ns: 0,
            queue_wait_ns: 0,
            hops_served: 0,
        }
    }

    pub(crate) fn record_injected(&mut self, src: PeId) {
        self.injected[src.index()] += 1;
    }

    pub(crate) fn record_delivered(&mut self, dst: PeId, now: SimTime, injected_at: SimTime) {
        self.delivered[dst.index()] += 1;
        let lat = now.saturating_sub(injected_at);
        self.total_latency_ns += lat;
        self.max_latency_ns = self.max_latency_ns.max(lat);
        self.first_delivery.get_or_insert(now);
        self.last_delivery = self.last_delivery.max(now);
    }

    pub(crate) fn record_link_busy(&mut self, _src: PeId, busy_ns: u64, wait_ns: u64) {
        self.link_busy_ns += busy_ns;
        self.queue_wait_ns += wait_ns;
        self.hops_served += 1;
    }

    /// Total packets injected.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total packets delivered.
    pub fn delivered_total(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Packets delivered to each PE.
    pub fn delivered_per_pe(&self) -> &[u64] {
        &self.delivered
    }

    /// Sum of end-to-end packet latencies.
    pub fn total_latency_ns(&self) -> u64 {
        self.total_latency_ns
    }

    /// Mean end-to-end latency in nanoseconds.
    pub fn mean_latency_ns(&self) -> f64 {
        let d = self.delivered_total();
        if d == 0 {
            0.0
        } else {
            self.total_latency_ns as f64 / d as f64
        }
    }

    /// Worst observed end-to-end latency.
    pub fn max_latency_ns(&self) -> u64 {
        self.max_latency_ns
    }

    /// Mean queueing delay per hop (time a packet sat waiting for a busy
    /// link), a saturation indicator.
    pub fn mean_queue_wait_ns(&self) -> f64 {
        if self.hops_served == 0 {
            0.0
        } else {
            self.queue_wait_ns as f64 / self.hops_served as f64
        }
    }

    /// Total link-hops served.
    pub fn hops_served(&self) -> u64 {
        self.hops_served
    }

    /// Delivered packets per second per PE over the given measurement
    /// window — the E1 headline number.
    pub fn per_pe_throughput_pps(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        let n = self.delivered.len().max(1) as f64;
        self.delivered_total() as f64 / (window_ns as f64 / 1e9) / n
    }

    /// Ratio of delivered to injected packets; < 1 while the network still
    /// holds undelivered traffic.
    pub fn delivery_ratio(&self) -> f64 {
        let inj = self.injected_total();
        if inj == 0 {
            1.0
        } else {
            self.delivered_total() as f64 / inj as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let mut s = NetworkStats::new(4);
        for _ in 0..400 {
            s.record_injected(PeId(0));
            s.record_delivered(PeId(1), 1_000_000_000, 0);
        }
        // 400 packets in 1 s across 4 PEs = 100 pps/PE.
        assert!((s.per_pe_throughput_pps(1_000_000_000) - 100.0).abs() < 1e-9);
        assert!((s.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_tracking() {
        let mut s = NetworkStats::new(2);
        s.record_delivered(PeId(0), 150, 100);
        s.record_delivered(PeId(1), 400, 100);
        assert_eq!(s.total_latency_ns(), 350);
        assert_eq!(s.max_latency_ns(), 300);
        assert!((s.mean_latency_ns() - 175.0).abs() < 1e-9);
    }
}
