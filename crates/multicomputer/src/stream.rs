//! Per-stream ordering and reassembly for chunked transfers.
//!
//! The interconnect delivers 256-bit packets; the DBMS layers above it
//! ship query results as *streams* of chunks (one message per batch,
//! terminated by an end-of-stream marker carrying the chunk count). A
//! coordinator fanning out one subplan to many fragments receives all of
//! those streams interleaved on a single mailbox, and nothing in the
//! transport guarantees that chunk `seq = 3` of a stream arrives after
//! `seq = 2` — a rerouted packet train, or a future fragment→fragment
//! relay, may reorder them.
//!
//! [`StreamReassembly`] is the transport-side answer: it accepts chunks
//! tagged `(stream, seq)` in any arrival order, buffers ahead-of-order
//! chunks, and releases each stream's chunks strictly in `seq` order. A
//! stream is *complete* once its end marker has been seen **and** every
//! `seq` below the advertised count has been released — an end marker
//! overtaking its last chunks parks the stream as ending rather than
//! closing it early. Duplicate or out-of-range sequence numbers are
//! protocol errors, not silent drops — including traffic for a stream
//! that already completed: a second end marker (or a straggler chunk)
//! after completion is reported as the duplicate it is, never confused
//! with an unknown stream and never silently accepted.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::HashSet;

use prisma_types::{PrismaError, Result};

/// Reassembly state for one chunk stream.
#[derive(Debug)]
struct StreamState<T> {
    /// Next sequence number owed to the consumer.
    next_seq: u64,
    /// Chunks that arrived ahead of order, keyed by sequence.
    pending: BTreeMap<u64, T>,
    /// Advertised chunk count, once the end marker arrived.
    seq_count: Option<u64>,
}

impl<T> StreamState<T> {
    fn new() -> Self {
        StreamState {
            next_seq: 0,
            pending: BTreeMap::new(),
            seq_count: None,
        }
    }

    fn is_complete(&self) -> bool {
        self.seq_count == Some(self.next_seq) && self.pending.is_empty()
    }
}

/// Reassembles a fixed set of chunk streams arriving interleaved and
/// possibly out of order on one mailbox.
///
/// `T` is the chunk payload (a tuple batch, a bucket set, …); streams are
/// identified by the caller's correlation tag.
#[derive(Debug)]
pub struct StreamReassembly<T> {
    streams: HashMap<u64, StreamState<T>>,
    /// Tags whose streams already completed — kept so late traffic for a
    /// finished stream is reported as a duplicate, not "unknown stream".
    done: HashSet<u64>,
    /// Tags retired by failover: the sender is presumed dead and its
    /// stream was re-issued under a fresh (epoch-bumped) tag, so any
    /// traffic still arriving under a retired tag is *stale*, not a
    /// protocol violation — it is silently discarded.
    retired: HashSet<u64>,
}

impl<T> StreamReassembly<T> {
    /// Track `tags` as the expected streams (one per fragment fan-out).
    pub fn expecting(tags: impl IntoIterator<Item = u64>) -> Self {
        StreamReassembly {
            streams: tags.into_iter().map(|t| (t, StreamState::new())).collect(),
            done: HashSet::new(),
            retired: HashSet::new(),
        }
    }

    /// Start expecting one more stream (a failover re-issue under a fresh
    /// tag). No-op if the tag is already tracked.
    pub fn expect(&mut self, tag: u64) {
        if !self.done.contains(&tag) && !self.retired.contains(&tag) {
            self.streams.entry(tag).or_insert_with(StreamState::new);
        }
    }

    /// Retire an open stream: its sender is presumed dead and a
    /// replacement stream was (or will be) issued under a different tag.
    /// Buffered chunks are dropped, the tag no longer blocks
    /// [`Self::all_complete`], and late traffic under it — chunks from a
    /// not-quite-dead primary racing the failover — is silently ignored
    /// instead of corrupting the merge or erroring the query. Returns the
    /// number of buffered chunks discarded. Completed streams cannot be
    /// retired (their output was already consumed).
    pub fn retire(&mut self, tag: u64) -> usize {
        if self.done.contains(&tag) {
            return 0;
        }
        let dropped = self
            .streams
            .remove(&tag)
            .map_or(0, |s| s.pending.len() + s.next_seq as usize);
        self.retired.insert(tag);
        dropped
    }

    /// True when `tag` was retired by failover.
    pub fn is_retired(&self, tag: u64) -> bool {
        self.retired.contains(&tag)
    }

    fn state(&mut self, tag: u64, what: &str) -> Result<&mut StreamState<T>> {
        if self.done.contains(&tag) {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: {what} after stream completed"
            )));
        }
        self.streams.get_mut(&tag).ok_or_else(|| {
            PrismaError::Execution(format!("{what} for unknown stream {tag}"))
        })
    }

    /// Accept chunk `seq` of stream `tag`, appending any chunks this
    /// releases (in sequence order) to `out`. Duplicates and sequence
    /// numbers at or beyond an advertised end are protocol errors.
    pub fn accept(&mut self, tag: u64, seq: u64, chunk: T, out: &mut Vec<T>) -> Result<()> {
        if self.retired.contains(&tag) {
            return Ok(()); // stale traffic from a failed-over sender
        }
        let state = self.state(tag, "chunk")?;
        if state.seq_count.is_some_and(|n| seq >= n) {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: chunk {seq} past advertised end {:?}",
                state.seq_count
            )));
        }
        if seq < state.next_seq || state.pending.contains_key(&seq) {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: duplicate chunk {seq}"
            )));
        }
        state.pending.insert(seq, chunk);
        while let Some(chunk) = state.pending.remove(&state.next_seq) {
            state.next_seq += 1;
            out.push(chunk);
        }
        self.note_progress(tag);
        Ok(())
    }

    /// Accept stream `tag`'s end marker advertising `seq_count` chunks.
    /// The stream stays open until every chunk below the count has been
    /// released; a count smaller than what already arrived is a protocol
    /// error, and so is a second end marker — whether the stream is still
    /// open or already completed.
    pub fn finish(&mut self, tag: u64, seq_count: u64) -> Result<()> {
        if self.retired.contains(&tag) {
            return Ok(()); // stale traffic from a failed-over sender
        }
        let state = self.state(tag, "end-of-stream")?;
        if state.seq_count.is_some() {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: duplicate end-of-stream"
            )));
        }
        // saturating: a buffered chunk at seq u64::MAX must not overflow
        // the high-water computation (it makes every finite count an
        // undercount, which is the right verdict).
        let seen = state
            .pending
            .keys()
            .next_back()
            .map_or(state.next_seq, |k| k.saturating_add(1));
        if seq_count < seen {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: end advertises {seq_count} chunks but {seen} arrived"
            )));
        }
        state.seq_count = Some(seq_count);
        self.note_progress(tag);
        Ok(())
    }

    fn note_progress(&mut self, tag: u64) {
        if self.streams[&tag].is_complete() {
            self.streams.remove(&tag);
            self.done.insert(tag);
        }
    }

    /// True once every expected stream has delivered all its chunks and
    /// its end marker.
    pub fn all_complete(&self) -> bool {
        self.streams.is_empty()
    }

    /// Streams completed so far.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Tags of streams still owed chunks or an end marker (sorted — the
    /// coordinator names these in timeout errors).
    pub fn open_streams(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.streams.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery_releases_immediately() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0, 1]);
        let mut out = Vec::new();
        r.accept(0, 0, 10, &mut out).unwrap();
        r.accept(1, 0, 20, &mut out).unwrap();
        r.accept(0, 1, 11, &mut out).unwrap();
        assert_eq!(out, vec![10, 20, 11]);
        assert!(!r.all_complete());
        r.finish(0, 2).unwrap();
        r.finish(1, 1).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn out_of_order_chunks_are_buffered_and_released_in_seq_order() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([7]);
        let mut out = Vec::new();
        r.accept(7, 2, 2, &mut out).unwrap();
        r.accept(7, 1, 1, &mut out).unwrap();
        assert!(out.is_empty(), "nothing released before seq 0");
        r.accept(7, 0, 0, &mut out).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn end_marker_overtaking_chunks_keeps_stream_open() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([3]);
        let mut out = Vec::new();
        r.finish(3, 2).unwrap();
        assert!(!r.all_complete());
        assert_eq!(r.open_streams(), vec![3]);
        r.accept(3, 1, 1, &mut out).unwrap();
        r.accept(3, 0, 0, &mut out).unwrap();
        assert_eq!(out, vec![0, 1]);
        assert!(r.all_complete());
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0]);
        let mut out = Vec::new();
        r.accept(0, 0, 0, &mut out).unwrap();
        assert!(r.accept(0, 0, 0, &mut out).is_err(), "duplicate seq");
        assert!(r.accept(9, 0, 0, &mut out).is_err(), "unknown stream");
        r.finish(0, 3).unwrap();
        assert!(r.accept(0, 5, 5, &mut out).is_err(), "past advertised end");
        assert!(r.finish(0, 3).is_err(), "duplicate end");
        // Empty stream completes on the marker alone.
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([1]);
        r.finish(1, 0).unwrap();
        assert!(r.all_complete());
    }

    #[test]
    fn traffic_for_a_completed_stream_is_a_protocol_error() {
        // Regression: a duplicate StreamEnd for a tag that already
        // completed used to surface as a confusing "unknown stream"
        // (completed streams were dropped from the map); it must be a
        // duplicate-end protocol error, and straggler chunks after
        // completion must be duplicates too.
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0, 1]);
        let mut out = Vec::new();
        r.accept(0, 0, 0, &mut out).unwrap();
        r.finish(0, 1).unwrap();
        assert_eq!(r.completed(), 1, "stream 0 is complete");
        let err = r.finish(0, 1).unwrap_err().to_string();
        assert!(
            err.contains("stream 0") && err.contains("after stream completed"),
            "duplicate end for a completed stream mis-reported: {err}"
        );
        let err = r.accept(0, 0, 9, &mut out).unwrap_err().to_string();
        assert!(
            err.contains("after stream completed"),
            "straggler chunk for a completed stream mis-reported: {err}"
        );
        // A genuinely unknown stream still says so.
        let err = r.finish(42, 0).unwrap_err().to_string();
        assert!(err.contains("unknown stream 42"), "{err}");
        // The still-open stream is unaffected by the rejected traffic.
        r.finish(1, 0).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn undercounting_end_marker_is_an_error() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0]);
        let mut out = Vec::new();
        r.accept(0, 4, 4, &mut out).unwrap();
        assert!(r.finish(0, 2).is_err());
    }

    #[test]
    fn retired_streams_ignore_stale_traffic_and_unblock_completion() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0, 1]);
        let mut out = Vec::new();
        r.accept(0, 0, 10, &mut out).unwrap();
        r.accept(0, 2, 12, &mut out).unwrap(); // one released, one buffered

        // PE hosting stream 0 dies; failover retires the tag and re-issues
        // under a fresh one.
        assert_eq!(r.retire(0), 2, "released + buffered chunks discarded");
        assert!(r.is_retired(0));
        assert!(!r.open_streams().contains(&0));

        // Stale traffic from the dead primary is silently ignored — no
        // output, no error, even for would-be protocol violations.
        let before = out.len();
        r.accept(0, 1, 11, &mut out).unwrap();
        r.accept(0, 0, 10, &mut out).unwrap(); // duplicate of a discarded chunk
        r.finish(0, 3).unwrap();
        r.finish(0, 3).unwrap(); // even a duplicate end is stale, not an error
        assert_eq!(out.len(), before, "stale chunks never released");

        // The replacement stream under a fresh tag behaves normally.
        r.expect(100);
        r.accept(100, 0, 20, &mut out).unwrap();
        r.finish(100, 1).unwrap();
        r.finish(1, 0).unwrap();
        assert!(r.all_complete());
        assert_eq!(out, vec![10, 20]);

        // Completed streams cannot be retired out of the done set.
        assert_eq!(r.retire(1), 0);
        assert!(r.finish(1, 0).is_err(), "still a duplicate end");
        // expect() on a retired tag stays retired.
        r.expect(0);
        assert!(r.is_retired(0));
        assert!(r.all_complete());
    }
}

#[cfg(test)]
mod proptests {
    //! Shuffled-delivery property tests for the reassembly error paths:
    //! whatever order the transport delivers chunks and end markers in,
    //! completion, duplicate detection, end-overtaking and seq-overflow
    //! handling must hold.

    use super::*;
    use proptest::prelude::*;

    /// Deterministic Fisher–Yates driven by a splitmix-style step, so a
    /// failing case reproduces from the generated seed alone.
    fn shuffle<T>(v: &mut [T], mut seed: u64) {
        for i in (1..v.len()).rev() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((seed >> 33) as usize) % (i + 1);
            v.swap(i, j);
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Chunk(u64, u64),
        End(u64, u64),
    }

    /// All chunks + end markers of `chunk_counts` streams, shuffled.
    fn delivery(chunk_counts: &[u64], seed: u64) -> Vec<Ev> {
        let mut evs = Vec::new();
        for (t, &n) in chunk_counts.iter().enumerate() {
            let t = t as u64;
            for s in 0..n {
                evs.push(Ev::Chunk(t, s));
            }
            evs.push(Ev::End(t, n));
        }
        shuffle(&mut evs, seed);
        evs
    }

    proptest! {
        #[test]
        fn any_delivery_order_reassembles_every_stream(
            chunk_counts in prop::collection::vec(0u64..8, 1..5),
            seed in 0u64..u64::MAX,
        ) {
            let mut r: StreamReassembly<(u64, u64)> =
                StreamReassembly::expecting(0..chunk_counts.len() as u64);
            let mut out = Vec::new();
            for ev in delivery(&chunk_counts, seed) {
                match ev {
                    Ev::Chunk(t, s) => r.accept(t, s, (t, s), &mut out).unwrap(),
                    Ev::End(t, n) => r.finish(t, n).unwrap(),
                }
            }
            prop_assert!(r.all_complete());
            prop_assert_eq!(r.completed(), chunk_counts.len());
            // Per stream, chunks were released strictly in seq order and
            // exactly once each.
            for (t, &n) in chunk_counts.iter().enumerate() {
                let seqs: Vec<u64> = out
                    .iter()
                    .filter(|&&(tag, _)| tag == t as u64)
                    .map(|&(_, s)| s)
                    .collect();
                prop_assert_eq!(seqs, (0..n).collect::<Vec<u64>>());
            }
        }

        #[test]
        fn traffic_after_completion_is_always_a_duplicate_error(
            n in 1u64..6,
            seed in 0u64..u64::MAX,
            extra in 0u64..8,
        ) {
            let mut r: StreamReassembly<u64> = StreamReassembly::expecting([0]);
            let mut out = Vec::new();
            for ev in delivery(&[n], seed) {
                match ev {
                    Ev::Chunk(_, s) => r.accept(0, s, s, &mut out).unwrap(),
                    Ev::End(_, c) => r.finish(0, c).unwrap(),
                }
            }
            prop_assert!(r.all_complete());
            // A straggler chunk — any seq — and a duplicate end marker are
            // both protocol errors naming the completed stream.
            let err = r.accept(0, extra % n, 0, &mut out).unwrap_err().to_string();
            prop_assert!(err.contains("after stream completed"), "{}", err);
            let err = r.finish(0, n).unwrap_err().to_string();
            prop_assert!(err.contains("after stream completed"), "{}", err);
        }

        #[test]
        fn duplicate_end_marker_errors_at_any_point(
            n in 1u64..6,
            deliver_before in 0u64..6,
        ) {
            // Deliver some prefix of chunks, the end marker, then a second
            // end marker: the duplicate must error whether the stream is
            // still open or just completed.
            let mut r: StreamReassembly<u64> = StreamReassembly::expecting([0]);
            let mut out = Vec::new();
            let k = deliver_before.min(n);
            for s in 0..k {
                r.accept(0, s, s, &mut out).unwrap();
            }
            r.finish(0, n).unwrap();
            let err = r.finish(0, n).unwrap_err().to_string();
            prop_assert!(
                err.contains("duplicate end-of-stream") || err.contains("after stream completed"),
                "{}", err
            );
        }

        #[test]
        fn end_marker_overtaking_chunks_never_closes_early(
            n in 1u64..8,
            seed in 0u64..u64::MAX,
        ) {
            // End first, chunks after, in any order: the stream must stay
            // open until the last chunk and then complete exactly.
            let mut r: StreamReassembly<u64> = StreamReassembly::expecting([0]);
            let mut out = Vec::new();
            r.finish(0, n).unwrap();
            let mut seqs: Vec<u64> = (0..n).collect();
            shuffle(&mut seqs, seed);
            for (i, &s) in seqs.iter().enumerate() {
                prop_assert!(!r.all_complete(), "closed early at {}/{}", i, n);
                r.accept(0, s, s, &mut out).unwrap();
            }
            prop_assert!(r.all_complete());
            prop_assert_eq!(out, (0..n).collect::<Vec<u64>>());
        }

        #[test]
        fn seqs_at_or_past_the_advertised_end_are_rejected(
            n in 1u64..6,
            past in 0u64..4,
            seed in 0u64..u64::MAX,
        ) {
            let mut r: StreamReassembly<u64> = StreamReassembly::expecting([0]);
            let mut out = Vec::new();
            r.finish(0, n).unwrap();
            let err = r.accept(0, n + past, 0, &mut out).unwrap_err().to_string();
            prop_assert!(err.contains("past advertised end"), "{}", err);
            // The extreme: seq u64::MAX is always out of range once an end
            // is advertised…
            let err = r.accept(0, u64::MAX, 0, &mut out).unwrap_err().to_string();
            prop_assert!(err.contains("past advertised end"), "{}", err);
            // …and the rejected traffic must not poison the real stream.
            let mut seqs: Vec<u64> = (0..n).collect();
            shuffle(&mut seqs, seed);
            for &s in &seqs {
                r.accept(0, s, s, &mut out).unwrap();
            }
            prop_assert!(r.all_complete());
        }

        #[test]
        fn buffered_max_seq_does_not_overflow_the_end_check(
            count in 0u64..6,
        ) {
            // A chunk at seq u64::MAX arriving *before* the end marker is
            // buffered; the later end marker's high-water computation must
            // saturate instead of overflowing, and every finite count is
            // then an undercount.
            let mut r: StreamReassembly<u64> = StreamReassembly::expecting([0]);
            let mut out = Vec::new();
            r.accept(0, u64::MAX, 99, &mut out).unwrap();
            let err = r.finish(0, count).unwrap_err().to_string();
            prop_assert!(err.contains("arrived"), "{}", err);
        }
    }
}
