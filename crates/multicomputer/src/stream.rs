//! Per-stream ordering and reassembly for chunked transfers.
//!
//! The interconnect delivers 256-bit packets; the DBMS layers above it
//! ship query results as *streams* of chunks (one message per batch,
//! terminated by an end-of-stream marker carrying the chunk count). A
//! coordinator fanning out one subplan to many fragments receives all of
//! those streams interleaved on a single mailbox, and nothing in the
//! transport guarantees that chunk `seq = 3` of a stream arrives after
//! `seq = 2` — a rerouted packet train, or a future fragment→fragment
//! relay, may reorder them.
//!
//! [`StreamReassembly`] is the transport-side answer: it accepts chunks
//! tagged `(stream, seq)` in any arrival order, buffers ahead-of-order
//! chunks, and releases each stream's chunks strictly in `seq` order. A
//! stream is *complete* once its end marker has been seen **and** every
//! `seq` below the advertised count has been released — an end marker
//! overtaking its last chunks parks the stream as ending rather than
//! closing it early. Duplicate or out-of-range sequence numbers are
//! protocol errors, not silent drops — including traffic for a stream
//! that already completed: a second end marker (or a straggler chunk)
//! after completion is reported as the duplicate it is, never confused
//! with an unknown stream and never silently accepted.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::HashSet;

use prisma_types::{PrismaError, Result};

/// Reassembly state for one chunk stream.
#[derive(Debug)]
struct StreamState<T> {
    /// Next sequence number owed to the consumer.
    next_seq: u64,
    /// Chunks that arrived ahead of order, keyed by sequence.
    pending: BTreeMap<u64, T>,
    /// Advertised chunk count, once the end marker arrived.
    seq_count: Option<u64>,
}

impl<T> StreamState<T> {
    fn new() -> Self {
        StreamState {
            next_seq: 0,
            pending: BTreeMap::new(),
            seq_count: None,
        }
    }

    fn is_complete(&self) -> bool {
        self.seq_count == Some(self.next_seq) && self.pending.is_empty()
    }
}

/// Reassembles a fixed set of chunk streams arriving interleaved and
/// possibly out of order on one mailbox.
///
/// `T` is the chunk payload (a tuple batch, a bucket set, …); streams are
/// identified by the caller's correlation tag.
#[derive(Debug)]
pub struct StreamReassembly<T> {
    streams: HashMap<u64, StreamState<T>>,
    /// Tags whose streams already completed — kept so late traffic for a
    /// finished stream is reported as a duplicate, not "unknown stream".
    done: HashSet<u64>,
}

impl<T> StreamReassembly<T> {
    /// Track `tags` as the expected streams (one per fragment fan-out).
    pub fn expecting(tags: impl IntoIterator<Item = u64>) -> Self {
        StreamReassembly {
            streams: tags.into_iter().map(|t| (t, StreamState::new())).collect(),
            done: HashSet::new(),
        }
    }

    fn state(&mut self, tag: u64, what: &str) -> Result<&mut StreamState<T>> {
        if self.done.contains(&tag) {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: {what} after stream completed"
            )));
        }
        self.streams.get_mut(&tag).ok_or_else(|| {
            PrismaError::Execution(format!("{what} for unknown stream {tag}"))
        })
    }

    /// Accept chunk `seq` of stream `tag`, appending any chunks this
    /// releases (in sequence order) to `out`. Duplicates and sequence
    /// numbers at or beyond an advertised end are protocol errors.
    pub fn accept(&mut self, tag: u64, seq: u64, chunk: T, out: &mut Vec<T>) -> Result<()> {
        let state = self.state(tag, "chunk")?;
        if state.seq_count.is_some_and(|n| seq >= n) {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: chunk {seq} past advertised end {:?}",
                state.seq_count
            )));
        }
        if seq < state.next_seq || state.pending.contains_key(&seq) {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: duplicate chunk {seq}"
            )));
        }
        state.pending.insert(seq, chunk);
        while let Some(chunk) = state.pending.remove(&state.next_seq) {
            state.next_seq += 1;
            out.push(chunk);
        }
        self.note_progress(tag);
        Ok(())
    }

    /// Accept stream `tag`'s end marker advertising `seq_count` chunks.
    /// The stream stays open until every chunk below the count has been
    /// released; a count smaller than what already arrived is a protocol
    /// error, and so is a second end marker — whether the stream is still
    /// open or already completed.
    pub fn finish(&mut self, tag: u64, seq_count: u64) -> Result<()> {
        let state = self.state(tag, "end-of-stream")?;
        if state.seq_count.is_some() {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: duplicate end-of-stream"
            )));
        }
        let seen = state.pending.keys().next_back().map_or(state.next_seq, |k| k + 1);
        if seq_count < seen {
            return Err(PrismaError::Execution(format!(
                "stream {tag}: end advertises {seq_count} chunks but {seen} arrived"
            )));
        }
        state.seq_count = Some(seq_count);
        self.note_progress(tag);
        Ok(())
    }

    fn note_progress(&mut self, tag: u64) {
        if self.streams[&tag].is_complete() {
            self.streams.remove(&tag);
            self.done.insert(tag);
        }
    }

    /// True once every expected stream has delivered all its chunks and
    /// its end marker.
    pub fn all_complete(&self) -> bool {
        self.streams.is_empty()
    }

    /// Streams completed so far.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Tags of streams still owed chunks or an end marker (sorted — the
    /// coordinator names these in timeout errors).
    pub fn open_streams(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.streams.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery_releases_immediately() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0, 1]);
        let mut out = Vec::new();
        r.accept(0, 0, 10, &mut out).unwrap();
        r.accept(1, 0, 20, &mut out).unwrap();
        r.accept(0, 1, 11, &mut out).unwrap();
        assert_eq!(out, vec![10, 20, 11]);
        assert!(!r.all_complete());
        r.finish(0, 2).unwrap();
        r.finish(1, 1).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn out_of_order_chunks_are_buffered_and_released_in_seq_order() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([7]);
        let mut out = Vec::new();
        r.accept(7, 2, 2, &mut out).unwrap();
        r.accept(7, 1, 1, &mut out).unwrap();
        assert!(out.is_empty(), "nothing released before seq 0");
        r.accept(7, 0, 0, &mut out).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn end_marker_overtaking_chunks_keeps_stream_open() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([3]);
        let mut out = Vec::new();
        r.finish(3, 2).unwrap();
        assert!(!r.all_complete());
        assert_eq!(r.open_streams(), vec![3]);
        r.accept(3, 1, 1, &mut out).unwrap();
        r.accept(3, 0, 0, &mut out).unwrap();
        assert_eq!(out, vec![0, 1]);
        assert!(r.all_complete());
    }

    #[test]
    fn protocol_violations_are_errors() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0]);
        let mut out = Vec::new();
        r.accept(0, 0, 0, &mut out).unwrap();
        assert!(r.accept(0, 0, 0, &mut out).is_err(), "duplicate seq");
        assert!(r.accept(9, 0, 0, &mut out).is_err(), "unknown stream");
        r.finish(0, 3).unwrap();
        assert!(r.accept(0, 5, 5, &mut out).is_err(), "past advertised end");
        assert!(r.finish(0, 3).is_err(), "duplicate end");
        // Empty stream completes on the marker alone.
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([1]);
        r.finish(1, 0).unwrap();
        assert!(r.all_complete());
    }

    #[test]
    fn traffic_for_a_completed_stream_is_a_protocol_error() {
        // Regression: a duplicate StreamEnd for a tag that already
        // completed used to surface as a confusing "unknown stream"
        // (completed streams were dropped from the map); it must be a
        // duplicate-end protocol error, and straggler chunks after
        // completion must be duplicates too.
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0, 1]);
        let mut out = Vec::new();
        r.accept(0, 0, 0, &mut out).unwrap();
        r.finish(0, 1).unwrap();
        assert_eq!(r.completed(), 1, "stream 0 is complete");
        let err = r.finish(0, 1).unwrap_err().to_string();
        assert!(
            err.contains("stream 0") && err.contains("after stream completed"),
            "duplicate end for a completed stream mis-reported: {err}"
        );
        let err = r.accept(0, 0, 9, &mut out).unwrap_err().to_string();
        assert!(
            err.contains("after stream completed"),
            "straggler chunk for a completed stream mis-reported: {err}"
        );
        // A genuinely unknown stream still says so.
        let err = r.finish(42, 0).unwrap_err().to_string();
        assert!(err.contains("unknown stream 42"), "{err}");
        // The still-open stream is unaffected by the rejected traffic.
        r.finish(1, 0).unwrap();
        assert!(r.all_complete());
        assert_eq!(r.completed(), 2);
    }

    #[test]
    fn undercounting_end_marker_is_an_error() {
        let mut r: StreamReassembly<u32> = StreamReassembly::expecting([0]);
        let mut out = Vec::new();
        r.accept(0, 4, 4, &mut out).unwrap();
        assert!(r.finish(0, 2).is_err());
    }
}
