//! # prisma-multicomputer
//!
//! Discrete-event simulator of the PRISMA multi-computer (paper §3.2):
//!
//! * 64 processing elements (configurable), each with **four communication
//!   links running at 10 Mbit/sec** and 16 MB of local main memory;
//! * a **mesh-like** or **chordal-ring** interconnection topology;
//! * store-and-forward routing of **256-bit packets**;
//! * "various simulations show an average network throughput of up to
//!   20.000 packets (of 256 bits) per second for each processing element
//!   simultaneously" — experiment E1 re-runs exactly this simulation.
//!
//! The crate has two consumers:
//!
//! 1. the **E1 network experiment** drives [`NetworkSim`] directly with
//!    synthetic traffic patterns and measures saturation throughput;
//! 2. the **DBMS layers** (`prisma-poolx`, `prisma-gdh`) use [`CostModel`]
//!    to charge communication costs for data shipped between PEs,
//!    [`Topology`] to reason about placement locality, and
//!    [`StreamReassembly`] to restore per-stream chunk order when query
//!    results arrive as interleaved batch streams (streamed batch
//!    shipping).

pub mod cost;
pub mod pe;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod topology;
pub mod traffic;

pub use cost::CostModel;
pub use pe::PeMemory;
pub use sim::{NetworkSim, Packet, SimTime};
pub use stats::NetworkStats;
pub use stream::StreamReassembly;
pub use topology::Topology;
pub use traffic::TrafficPattern;
