//! Interconnect topologies and shortest-path routing.
//!
//! The paper fixes four links per PE and proposes a mesh or a chordal-ring
//! variant (§3.2). [`Topology`] materializes the adjacency structure and a
//! precomputed next-hop routing table (all-pairs BFS), which both the
//! packet simulator and the optimizer's communication cost model consult.

use prisma_types::{MachineConfig, PeId, PrismaError, Result, TopologyKind};
use std::collections::VecDeque;

/// A concrete interconnect: adjacency lists plus an all-pairs next-hop
/// routing table.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    n: usize,
    /// `neighbors[i]` — PEs directly linked to PE `i`.
    neighbors: Vec<Vec<PeId>>,
    /// `next_hop[src * n + dst]` — neighbor of `src` on a shortest path to
    /// `dst`; `src` itself when `src == dst`.
    next_hop: Vec<PeId>,
    /// `dist[src * n + dst]` — hop count of the shortest path.
    dist: Vec<u32>,
}

impl Topology {
    /// Build the topology described by `config`.
    ///
    /// For [`TopologyKind::Mesh`] the PE count is arranged into the most
    /// square `rows × cols` grid; a perfect square (like the paper's 64 → 8×8)
    /// gives the canonical mesh.
    pub fn build(config: &MachineConfig) -> Result<Topology> {
        config.validate()?;
        let n = config.num_pes;
        let neighbors = match config.topology {
            TopologyKind::Mesh => mesh_neighbors(n),
            TopologyKind::ChordalRing { stride } => chordal_ring_neighbors(n, stride as usize)?,
            TopologyKind::FullyConnected => (0..n)
                .map(|i| {
                    (0..n)
                        .filter(|&j| j != i)
                        .map(PeId::from)
                        .collect::<Vec<_>>()
                })
                .collect(),
        };
        let (next_hop, dist) = routing_tables(n, &neighbors)?;
        Ok(Topology {
            kind: config.topology,
            n,
            neighbors,
            next_hop,
            dist,
        })
    }

    /// Which topology family this is.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of PEs.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.n
    }

    /// Direct neighbors of `pe`.
    #[inline]
    pub fn neighbors(&self, pe: PeId) -> &[PeId] {
        &self.neighbors[pe.index()]
    }

    /// Neighbor of `src` on a shortest path towards `dst`.
    #[inline]
    pub fn next_hop(&self, src: PeId, dst: PeId) -> PeId {
        self.next_hop[src.index() * self.n + dst.index()]
    }

    /// Shortest-path hop count between two PEs.
    #[inline]
    pub fn distance(&self, src: PeId, dst: PeId) -> u32 {
        self.dist[src.index() * self.n + dst.index()]
    }

    /// Largest shortest-path distance in the network.
    pub fn diameter(&self) -> u32 {
        self.dist.iter().copied().max().unwrap_or(0)
    }

    /// Mean shortest-path distance over all ordered pairs of distinct PEs —
    /// the quantity that fixes how many link-crossings an average packet
    /// consumes, and therefore where uniform-traffic throughput saturates.
    pub fn mean_distance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: u64 = self.dist.iter().map(|&d| d as u64).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Total number of *directed* links (each undirected link counts twice,
    /// once per direction, matching the full-duplex links of the paper).
    pub fn num_directed_links(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Maximum link degree — must be ≤ 4 for the buildable topologies
    /// (paper: "four communication links" per PE).
    pub fn max_degree(&self) -> usize {
        self.neighbors.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Analytic saturation throughput per PE under uniform random traffic,
    /// in packets per second: aggregate link capacity divided by the mean
    /// hop count a packet consumes, normalized per PE.
    ///
    /// This is the closed-form counterpart of the E1 simulation and is used
    /// in tests to cross-validate the simulator.
    pub fn uniform_saturation_pps(&self, link_pps: f64) -> f64 {
        let capacity = self.num_directed_links() as f64 * link_pps;
        capacity / self.mean_distance() / self.n as f64
    }
}

/// Most-square factorization of `n` into `rows × cols` (rows ≤ cols).
pub fn mesh_dims(n: usize) -> (usize, usize) {
    let mut rows = (n as f64).sqrt() as usize;
    while rows > 1 && !n.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), n / rows.max(1))
}

fn mesh_neighbors(n: usize) -> Vec<Vec<PeId>> {
    let (rows, cols) = mesh_dims(n);
    let mut adj = vec![Vec::with_capacity(4); n];
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let mut push = |rr: isize, cc: isize| {
                if rr >= 0 && (rr as usize) < rows && cc >= 0 && (cc as usize) < cols {
                    adj[id(r, c)].push(PeId::from(id(rr as usize, cc as usize)));
                }
            };
            push(r as isize - 1, c as isize);
            push(r as isize + 1, c as isize);
            push(r as isize, c as isize - 1);
            push(r as isize, c as isize + 1);
        }
    }
    adj
}

fn chordal_ring_neighbors(n: usize, stride: usize) -> Result<Vec<Vec<PeId>>> {
    if n < 3 {
        return Err(PrismaError::Config(
            "chordal ring needs at least 3 PEs".into(),
        ));
    }
    let mut adj = vec![Vec::with_capacity(4); n];
    for (i, nbrs) in adj.iter_mut().enumerate() {
        let mut add = |j: usize| {
            let p = PeId::from(j);
            if j != i && !nbrs.contains(&p) {
                nbrs.push(p);
            }
        };
        add((i + 1) % n);
        add((i + n - 1) % n);
        add((i + stride) % n);
        add((i + n - stride % n) % n);
    }
    Ok(adj)
}

/// All-pairs BFS producing next-hop and distance tables.
fn routing_tables(n: usize, adj: &[Vec<PeId>]) -> Result<(Vec<PeId>, Vec<u32>)> {
    let mut next = vec![PeId(0); n * n];
    let mut dist = vec![u32::MAX; n * n];
    let mut queue = VecDeque::new();
    for src in 0..n {
        // BFS from src; record each node's *parent-side first hop*.
        let row = src * n;
        dist[row + src] = 0;
        next[row + src] = PeId::from(src);
        queue.clear();
        queue.push_back(src);
        // first_hop[v] = the neighbor of src through which v was first reached
        let mut first_hop = vec![usize::MAX; n];
        first_hop[src] = src;
        while let Some(u) = queue.pop_front() {
            for &vpe in &adj[u] {
                let v = vpe.index();
                if dist[row + v] == u32::MAX {
                    dist[row + v] = dist[row + u] + 1;
                    first_hop[v] = if u == src { v } else { first_hop[u] };
                    next[row + v] = PeId::from(first_hop[v]);
                    queue.push_back(v);
                }
            }
        }
        if dist[row..row + n].contains(&u32::MAX) {
            return Err(PrismaError::Config(
                "topology is not connected".to_owned(),
            ));
        }
    }
    Ok((next, dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::TopologyKind;

    fn mesh64() -> Topology {
        Topology::build(&MachineConfig::paper_prototype()).unwrap()
    }

    fn ring64() -> Topology {
        let cfg = MachineConfig::paper_prototype()
            .with_topology(TopologyKind::ChordalRing { stride: 8 });
        Topology::build(&cfg).unwrap()
    }

    #[test]
    fn paper_mesh_is_8x8() {
        assert_eq!(mesh_dims(64), (8, 8));
        let t = mesh64();
        assert_eq!(t.num_pes(), 64);
        assert_eq!(t.max_degree(), 4, "paper allows only 4 links per PE");
        assert_eq!(t.diameter(), 14); // (8-1)+(8-1)
        // 2*rows*(cols-1) + 2*cols*(rows-1) directed links = 224
        assert_eq!(t.num_directed_links(), 224);
    }

    #[test]
    fn chordal_ring_has_degree_four_and_shorter_diameter_than_plain_ring() {
        let t = ring64();
        assert_eq!(t.max_degree(), 4);
        assert!(t.diameter() <= 8, "diameter {} too large", t.diameter());
    }

    #[test]
    fn next_hop_walk_reaches_destination_in_distance_steps() {
        for t in [mesh64(), ring64()] {
            for (src, dst) in [(0usize, 63usize), (5, 42), (17, 17), (63, 0)] {
                let (src, dst) = (PeId::from(src), PeId::from(dst));
                let mut cur = src;
                let mut steps = 0;
                while cur != dst {
                    cur = t.next_hop(cur, dst);
                    steps += 1;
                    assert!(steps <= t.diameter(), "routing loop {src}->{dst}");
                }
                assert_eq!(steps, t.distance(src, dst));
            }
        }
    }

    #[test]
    fn mean_distance_of_8x8_mesh_matches_closed_form() {
        // Mean Manhattan distance on an m×m grid over ordered distinct
        // pairs: 2*m*(m^2-1)/3 / (m^2-1) ... computed directly instead:
        let t = mesh64();
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..64 {
            for b in 0..64 {
                if a != b {
                    total += t.distance(PeId(a), PeId(b)) as u64;
                    pairs += 1;
                }
            }
        }
        let mean = total as f64 / pairs as f64;
        assert!((t.mean_distance() - mean).abs() < 1e-9);
        // 8x8 mesh mean distance is 16/3 ≈ 5.33 over all pairs incl. self;
        // over distinct pairs slightly higher.
        assert!(mean > 5.0 && mean < 5.6, "mean {mean}");
    }

    #[test]
    fn fully_connected_is_distance_one() {
        let cfg = MachineConfig::tiny().with_topology(TopologyKind::FullyConnected);
        let t = Topology::build(&cfg).unwrap();
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.mean_distance(), 1.0);
    }

    #[test]
    fn saturation_estimate_is_near_20k_for_paper_machine() {
        // One 10 Mbit/s link moves 39062.5 packets of 256 bits per second.
        let link_pps = 10_000_000.0 / 256.0;
        let mesh = mesh64().uniform_saturation_pps(link_pps);
        let ring = ring64().uniform_saturation_pps(link_pps);
        // The paper reports "up to 20.000 packets per second per PE". The
        // analytic bound assumes perfectly balanced links, so it sits above
        // the simulated number; both must share the paper's order of
        // magnitude (the chordal ring's shorter mean distance puts its
        // ideal bound near 39k, the mesh near 26k).
        assert!(
            mesh > 15_000.0 && mesh < 45_000.0,
            "mesh saturation {mesh} out of the paper's ballpark"
        );
        assert!(
            ring > 15_000.0 && ring < 45_000.0,
            "ring saturation {ring} out of the paper's ballpark"
        );
    }

    #[test]
    fn disconnected_rejected() {
        // A 2-PE "chordal ring" degenerates; builder must reject stride 0
        // via config validation.
        let cfg = MachineConfig {
            num_pes: 2,
            topology: TopologyKind::ChordalRing { stride: 1 },
            ..MachineConfig::default()
        };
        assert!(Topology::build(&cfg).is_err());
    }

    #[test]
    fn nonsquare_mesh_still_connected() {
        let cfg = MachineConfig::default()
            .with_pes(12)
            .with_topology(TopologyKind::Mesh);
        let t = Topology::build(&cfg).unwrap();
        assert_eq!(mesh_dims(12), (3, 4));
        assert!(t.diameter() >= 1);
    }
}
