//! Per-PE local-memory accounting.
//!
//! Each PRISMA PE owns 16 MB of local main memory (paper §3.2); a relation
//! fragment must fit the memory of the PE that hosts its One-Fragment
//! Manager — this is the design pressure that forces fragmentation of
//! large relations. [`PeMemory`] is the budget ledger the OFM layer charges
//! against.

use prisma_types::{PeId, PrismaError, Result};

/// Memory ledger for one processing element.
#[derive(Debug, Clone)]
pub struct PeMemory {
    pe: PeId,
    capacity: usize,
    used: usize,
    high_water: usize,
}

impl PeMemory {
    /// A ledger with `capacity` bytes (paper default: 16 MB).
    pub fn new(pe: PeId, capacity: usize) -> Self {
        PeMemory {
            pe,
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// The owning PE.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Peak usage observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Claim `bytes`; fails with [`PrismaError::OutOfMemory`] if the PE's
    /// main memory would be exceeded.
    pub fn allocate(&mut self, bytes: usize) -> Result<()> {
        if bytes > self.available() {
            return Err(PrismaError::OutOfMemory {
                pe: self.pe,
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(())
    }

    /// Return `bytes` to the pool (saturating; freeing more than allocated
    /// indicates an accounting bug upstream but must not underflow).
    pub fn free(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Fraction of capacity in use (0.0–1.0), the load-balance signal used
    /// by the data-allocation manager.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_free_cycle() {
        let mut m = PeMemory::new(PeId(0), 1000);
        m.allocate(400).unwrap();
        m.allocate(600).unwrap();
        assert_eq!(m.available(), 0);
        assert!(matches!(
            m.allocate(1),
            Err(PrismaError::OutOfMemory { .. })
        ));
        m.free(500);
        assert_eq!(m.used(), 500);
        assert_eq!(m.high_water(), 1000);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn free_never_underflows() {
        let mut m = PeMemory::new(PeId(1), 10);
        m.allocate(5).unwrap();
        m.free(100);
        assert_eq!(m.used(), 0);
    }
}
