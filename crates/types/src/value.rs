//! Runtime values stored in PRISMA relations.
//!
//! PRISMA's POOL-X introduced "dynamic typing at a few specific points to
//! efficiently support the implementation of relation types" (paper §3.1).
//! [`Value`] is that dynamically typed cell: a small tagged union covering
//! the SQL-ish type system of the machine's front ends.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::schema::DataType;

/// A single attribute value.
///
/// `Value` has a *total* order (NULL sorts first, numeric values compare by
/// numeric value, `f64` uses IEEE `total_cmp`) so it can be used directly as
/// a B-tree key and hashed for hash-join/hash-index keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Double(f64),
    /// Variable-length string.
    Str(String),
}

impl Value {
    /// Runtime type of this value, or `None` for NULL (which inhabits
    /// every column type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True iff this is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer payload, if this is an `Int`.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload; integers widen losslessly enough for cost models.
    #[inline]
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a `Bool`.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Heap + inline footprint in bytes, used for the per-PE 16 MB memory
    /// accounting that drives fragmentation decisions (paper §3.2).
    pub fn byte_size(&self) -> usize {
        let inline = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => inline + s.capacity(),
            _ => inline,
        }
    }

    /// SQL three-valued-logic equality: any comparison with NULL is "unknown",
    /// surfaced here as `None`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.total_cmp(other) == Ordering::Equal)
        }
    }

    /// SQL three-valued-logic ordering comparison (`None` when either side
    /// is NULL).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.total_cmp(other))
        }
    }

    /// Total order used by indexes and sort operators. NULL < Bool < numeric
    /// < Str; Int and Double compare numerically against each other so mixed
    /// arithmetic results still index correctly.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }

    /// Numeric addition with Int/Double coercion; NULL propagates.
    pub fn add(&self, other: &Value) -> Option<Value> {
        arith(self, other, |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Numeric subtraction with Int/Double coercion; NULL propagates.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        arith(self, other, |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Numeric multiplication with Int/Double coercion; NULL propagates.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        arith(self, other, |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Numeric division. Integer division by zero yields `None` (turned into
    /// an execution error by the evaluator); float division follows IEEE.
    pub fn div(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.checked_div(*b).map(Value::Int),
            _ => {
                let (a, b) = (self.as_double()?, other.as_double()?);
                Some(Value::Double(a / b))
            }
        }
    }

    /// Remainder, integer-only.
    pub fn rem(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.checked_rem(*b).map(Value::Int),
            _ => None,
        }
    }
}

fn arith(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    f_op: impl Fn(f64, f64) -> f64,
) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y).map(Value::Int),
        _ => {
            let (x, y) = (a.as_double()?, b.as_double()?);
            Some(Value::Double(f_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Discriminant + canonicalized payload. `Int(i)` and `Double(i as
        // f64)` compare equal via total_cmp only when the Double is the exact
        // integer, so hash all numerics through the f64 bit pattern of their
        // numeric value when the double is integral; otherwise Int and Double
        // can never be Eq-equal unless numerically identical, in which case
        // the f64 bits agree.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Double(2.0)), Ordering::Equal);
        assert!(Value::Int(2) < Value::Double(2.5));
        assert!(Value::Double(1.5) < Value::Int(2));
    }

    #[test]
    fn eq_implies_same_hash_for_mixed_numerics() {
        let a = Value::Int(42);
        let b = Value::Double(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn sql_tvl_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::Double(0.5)),
            Some(Value::Double(2.5))
        );
        assert_eq!(Value::Int(1).div(&Value::Int(0)), None);
        assert_eq!(Value::Int(7).rem(&Value::Int(3)), Some(Value::Int(1)));
    }

    #[test]
    fn overflow_is_detected_not_wrapped() {
        assert_eq!(Value::Int(i64::MAX).add(&Value::Int(1)), None);
        assert_eq!(Value::Int(i64::MIN).sub(&Value::Int(1)), None);
    }

    #[test]
    fn string_ordering_and_display() {
        assert!(Value::from("abc") < Value::from("abd"));
        assert_eq!(Value::from("x").to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn byte_size_counts_string_heap() {
        let small = Value::Int(1).byte_size();
        let s = Value::Str("hello world, a heap string".to_owned());
        assert!(s.byte_size() > small);
    }

    #[test]
    fn nan_has_a_stable_total_order() {
        let nan = Value::Double(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Double(f64::INFINITY) < nan);
    }
}
