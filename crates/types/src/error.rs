//! Unified error type for the PRISMA machine.

use std::fmt;

use crate::ids::{FragmentId, PeId, TxnId};

/// Convenient result alias used across all `prisma-*` crates.
pub type Result<T> = std::result::Result<T, PrismaError>;

/// All the ways an operation on the database machine can fail.
///
/// The variants are grouped roughly by subsystem: schema/typing errors from
/// the front ends, execution errors from the OFMs and executor, transaction
/// errors from the concurrency-control unit, and machine errors from the
/// multi-computer substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum PrismaError {
    // ---- parsing / typing ----
    /// Lex or parse failure in SQL or PRISMAlog, with position context.
    Parse(String),
    /// Column name not found during resolution.
    UnknownColumn(String),
    /// Column name matched more than one column.
    AmbiguousColumn(String),
    /// Relation name not in the data dictionary.
    UnknownRelation(String),
    /// Relation already exists in the data dictionary.
    DuplicateRelation(String),
    /// Tuple arity differs from schema arity.
    ArityMismatch { expected: usize, got: usize },
    /// Value type incompatible with column type.
    TypeMismatch {
        column: String,
        expected: String,
        got: String,
    },
    /// NULL stored in a NOT NULL column.
    NullViolation(String),
    /// Ill-typed expression (e.g. `'a' + 1`).
    ExprType(String),
    /// PRISMAlog rule violates the safety (range-restriction) condition.
    UnsafeRule(String),

    // ---- execution ----
    /// Arithmetic failure at runtime (overflow, division by zero).
    Arithmetic(String),
    /// Fragment not found on the addressed OFM.
    NoSuchFragment(FragmentId),
    /// A fragment outgrew its PE's memory budget (paper §3.2: 16 MB/PE).
    OutOfMemory {
        pe: PeId,
        requested: usize,
        available: usize,
    },
    /// Generic executor failure.
    Execution(String),

    // ---- transactions ----
    /// Transaction aborted; the payload says why (deadlock victim,
    /// participant vote, explicit rollback, ...).
    TxnAborted { txn: TxnId, reason: String },
    /// Deadlock detected in the wait-for graph; this transaction was the
    /// chosen victim.
    Deadlock(TxnId),
    /// Operation referenced a transaction unknown to the manager.
    UnknownTxn(TxnId),

    // ---- machine / substrate ----
    /// Message sent to a dead or never-created process.
    ProcessUnreachable(String),
    /// Recovery found the stable store corrupt beyond the last checkpoint.
    CorruptLog(String),
    /// Simulated hardware fault injected by a test.
    MachineFault(String),
    /// Catch-all for configuration mistakes (bad topology size, zero PEs).
    Config(String),
}

impl fmt::Display for PrismaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PrismaError::*;
        match self {
            Parse(m) => write!(f, "parse error: {m}"),
            UnknownColumn(c) => write!(f, "unknown column: {c}"),
            AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            UnknownRelation(r) => write!(f, "unknown relation: {r}"),
            DuplicateRelation(r) => write!(f, "relation already exists: {r}"),
            ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "type mismatch in {column}: expected {expected}, got {got}"),
            NullViolation(c) => write!(f, "NULL not allowed in column {c}"),
            ExprType(m) => write!(f, "expression type error: {m}"),
            UnsafeRule(m) => write!(f, "unsafe PRISMAlog rule: {m}"),
            Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            NoSuchFragment(id) => write!(f, "no such fragment: {id}"),
            OutOfMemory {
                pe,
                requested,
                available,
            } => write!(
                f,
                "out of memory on {pe}: requested {requested} bytes, {available} available"
            ),
            Execution(m) => write!(f, "execution error: {m}"),
            TxnAborted { txn, reason } => write!(f, "{txn} aborted: {reason}"),
            Deadlock(txn) => write!(f, "deadlock: {txn} chosen as victim"),
            UnknownTxn(txn) => write!(f, "unknown transaction: {txn}"),
            ProcessUnreachable(m) => write!(f, "process unreachable: {m}"),
            CorruptLog(m) => write!(f, "corrupt stable storage: {m}"),
            MachineFault(m) => write!(f, "machine fault: {m}"),
            Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for PrismaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PrismaError::OutOfMemory {
            pe: PeId(3),
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("pe3") && s.contains("100") && s.contains("10"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(PrismaError::Parse("x".into()));
        assert!(e.to_string().starts_with("parse error"));
    }
}
