//! Machine configuration — the paper's §3.2 prototype parameters.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{PrismaError, Result};

/// Interconnect topology of the multi-computer.
///
/// The paper: "The topology of the interconnection network will be
/// mesh-like or a variant of a chordal ring" (§3.2). Every PE has four
/// communication links, which constrains the mesh to degree ≤ 4 and the
/// chordal ring to ring + one chord pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// 2-D mesh of `rows × cols` PEs; interior nodes use all four links.
    Mesh,
    /// Ring plus chords of the given stride; degree 4 (two ring + two
    /// chord links per PE).
    ChordalRing {
        /// Chord stride; each PE `i` additionally links to `i ± stride`.
        stride: u32,
    },
    /// Every PE one hop from every other — an idealized upper bound used in
    /// ablation benches, not buildable with 4 links.
    FullyConnected,
}

/// Configuration of the simulated PRISMA machine.
///
/// Defaults reproduce the paper's prototype: 64 PEs, 16 MB of local memory
/// each, four links of 10 Mbit/s, 256-bit packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of processing elements (paper: 64).
    pub num_pes: usize,
    /// Local main memory per PE in bytes (paper: 16 MByte).
    pub memory_per_pe: usize,
    /// Link bandwidth in bits per second (paper: 10 Mbit/sec).
    pub link_bandwidth_bps: u64,
    /// Number of communication links per PE (paper: 4).
    pub links_per_pe: usize,
    /// Network packet size in bits (paper: 256).
    pub packet_bits: u64,
    /// Interconnect topology.
    pub topology: TopologyKind,
    /// Per-hop switching latency in nanoseconds added on top of the
    /// store-and-forward transmission time.
    pub hop_latency_ns: u64,
    /// Which PEs own a disk for stable storage (paper §3.2: "some of the
    /// processing elements will also be connected to secondary storage").
    /// Expressed as a stride: PE `i` has a disk iff `i % disk_stride == 0`.
    pub disk_stride: usize,
    /// How long coordinators wait for a fragment/participant reply before
    /// presuming it dead, in seconds (the failover trigger: a fired
    /// deadline is what flips a query to a fragment's backup replica).
    /// The `REPLY_TIMEOUT_SECS` environment variable overrides this at
    /// runtime ([`Self::effective_reply_timeout_secs`]). Absent from
    /// older serialized configs, hence the serde default.
    #[serde(default)]
    pub reply_timeout_secs: u64,
    /// Compute workers per PE for morsel-driven intra-fragment
    /// parallelism. `0` (the default) resolves at boot: the `OFM_WORKERS`
    /// environment variable if set, else the host's available
    /// parallelism. `1` restores the serial per-PE baseline. Absent from
    /// older serialized configs, hence the serde default.
    #[serde(default)]
    pub ofm_workers: usize,
    /// Delta-heap row count at which a fragment seals a column chunk.
    /// `0` (the default) resolves at boot: the `SEAL_EVERY` environment
    /// variable if set, else [`crate::DEFAULT_SEAL_EVERY`]. Absent from
    /// older serialized configs, hence the serde default.
    #[serde(default)]
    pub seal_rows: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_pes: 64,
            memory_per_pe: 16 * 1024 * 1024,
            link_bandwidth_bps: 10_000_000,
            links_per_pe: 4,
            packet_bits: 256,
            topology: TopologyKind::Mesh,
            hop_latency_ns: 2_000,
            disk_stride: 8,
            reply_timeout_secs: 60,
            ofm_workers: 0,
            seal_rows: 0,
        }
    }
}

impl MachineConfig {
    /// The paper's 64-PE prototype with a mesh interconnect.
    pub fn paper_prototype() -> Self {
        MachineConfig::default()
    }

    /// A small machine for unit tests: 4 PEs, generous memory.
    pub fn tiny() -> Self {
        MachineConfig {
            num_pes: 4,
            topology: TopologyKind::ChordalRing { stride: 2 },
            ..MachineConfig::default()
        }
    }

    /// Builder-style override of the PE count.
    pub fn with_pes(mut self, n: usize) -> Self {
        self.num_pes = n;
        self
    }

    /// Builder-style override of the topology.
    pub fn with_topology(mut self, t: TopologyKind) -> Self {
        self.topology = t;
        self
    }

    /// Builder-style override of the per-PE memory budget.
    pub fn with_memory_per_pe(mut self, bytes: usize) -> Self {
        self.memory_per_pe = bytes;
        self
    }

    /// Builder-style override of the coordinator reply timeout.
    pub fn with_reply_timeout_secs(mut self, secs: u64) -> Self {
        self.reply_timeout_secs = secs;
        self
    }

    /// Builder-style override of the per-PE compute worker count
    /// (`0` = auto-detect at boot, `1` = serial baseline).
    pub fn with_ofm_workers(mut self, n: usize) -> Self {
        self.ofm_workers = n;
        self
    }

    /// Builder-style override of the chunk-seal threshold
    /// (`0` = resolve from `SEAL_EVERY`/default at boot).
    pub fn with_seal_rows(mut self, n: usize) -> Self {
        self.seal_rows = n;
        self
    }

    /// Resolve [`seal_rows`](Self::seal_rows) to a concrete threshold.
    ///
    /// Precedence: an explicit non-zero config value wins; otherwise the
    /// process-wide [`crate::seal_every`] resolution (the `SEAL_EVERY`
    /// environment variable, else [`crate::DEFAULT_SEAL_EVERY`]).
    /// Never returns 0.
    pub fn effective_seal_rows(&self) -> usize {
        if self.seal_rows > 0 {
            return self.seal_rows;
        }
        crate::seal_every()
    }

    /// Resolve [`ofm_workers`](Self::ofm_workers) to a concrete count.
    ///
    /// Precedence: an explicit non-zero config value wins; otherwise the
    /// `OFM_WORKERS` environment variable (CI runs the suite under
    /// `OFM_WORKERS=4`); otherwise the host's available parallelism.
    /// Never returns 0.
    pub fn effective_ofm_workers(&self) -> usize {
        if self.ofm_workers > 0 {
            return self.ofm_workers;
        }
        if let Ok(v) = std::env::var("OFM_WORKERS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Resolve the coordinator reply timeout to a concrete value, in
    /// seconds.
    ///
    /// Precedence: the `REPLY_TIMEOUT_SECS` environment variable when it
    /// parses to a positive integer (CI's fault-injection matrix shortens
    /// deadlines this way without touching serialized configs); otherwise
    /// the configured [`reply_timeout_secs`](Self::reply_timeout_secs).
    /// Never returns 0.
    pub fn effective_reply_timeout_secs(&self) -> u64 {
        Self::reply_timeout_override(
            std::env::var("REPLY_TIMEOUT_SECS").ok().as_deref(),
            self.reply_timeout_secs,
        )
    }

    /// Pure resolution rule behind
    /// [`effective_reply_timeout_secs`](Self::effective_reply_timeout_secs),
    /// split out so the precedence is testable without mutating the
    /// process environment.
    pub fn reply_timeout_override(env: Option<&str>, configured: u64) -> u64 {
        match env.and_then(|v| v.trim().parse::<u64>().ok()) {
            Some(n) if n > 0 => n,
            _ => configured.max(1),
        }
    }

    /// The coordinator reply timeout as a [`Duration`], environment
    /// override applied.
    pub fn reply_timeout(&self) -> Duration {
        Duration::from_secs(self.effective_reply_timeout_secs())
    }

    /// Seconds to push one packet through one link.
    pub fn packet_tx_seconds(&self) -> f64 {
        self.packet_bits as f64 / self.link_bandwidth_bps as f64
    }

    /// Validate internal consistency; called by the machine constructor.
    pub fn validate(&self) -> Result<()> {
        if self.num_pes == 0 {
            return Err(PrismaError::Config("num_pes must be > 0".into()));
        }
        if self.link_bandwidth_bps == 0 || self.packet_bits == 0 {
            return Err(PrismaError::Config(
                "bandwidth and packet size must be > 0".into(),
            ));
        }
        if let TopologyKind::ChordalRing { stride } = self.topology {
            if stride == 0 || stride as usize >= self.num_pes.max(1) {
                return Err(PrismaError::Config(format!(
                    "chord stride {stride} invalid for {} PEs",
                    self.num_pes
                )));
            }
        }
        if self.disk_stride == 0 {
            return Err(PrismaError::Config("disk_stride must be > 0".into()));
        }
        if self.reply_timeout_secs == 0 {
            return Err(PrismaError::Config(
                "reply_timeout_secs must be > 0".into(),
            ));
        }
        Ok(())
    }

    /// True when PE `i` owns a disk for stable storage.
    pub fn pe_has_disk(&self, i: usize) -> bool {
        i.is_multiple_of(self.disk_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = MachineConfig::paper_prototype();
        assert_eq!(c.num_pes, 64);
        assert_eq!(c.memory_per_pe, 16 << 20);
        assert_eq!(c.link_bandwidth_bps, 10_000_000);
        assert_eq!(c.packet_bits, 256);
        assert_eq!(c.links_per_pe, 4);
        // 256 bits over 10 Mbit/s = 25.6 µs per packet per hop.
        assert!((c.packet_tx_seconds() - 25.6e-6).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(MachineConfig::default().validate().is_ok());
        let c = MachineConfig {
            num_pes: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MachineConfig {
            topology: TopologyKind::ChordalRing { stride: 64 },
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MachineConfig {
            disk_stride: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn reply_timeout_is_configurable_and_validated() {
        let c = MachineConfig::default();
        assert_eq!(c.reply_timeout(), Duration::from_secs(60));
        let c = c.with_reply_timeout_secs(5);
        assert_eq!(c.reply_timeout(), Duration::from_secs(5));
        assert!(c.validate().is_ok());
        let c = MachineConfig {
            reply_timeout_secs: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn reply_timeout_env_override_precedence() {
        // Env wins when it parses to a positive integer.
        assert_eq!(MachineConfig::reply_timeout_override(Some("5"), 60), 5);
        assert_eq!(MachineConfig::reply_timeout_override(Some(" 7 "), 60), 7);
        // Unset, garbage or zero falls back to the configured value.
        assert_eq!(MachineConfig::reply_timeout_override(None, 60), 60);
        assert_eq!(MachineConfig::reply_timeout_override(Some("abc"), 60), 60);
        assert_eq!(MachineConfig::reply_timeout_override(Some("0"), 60), 60);
        // The resolved value never reaches 0 even for a zero config.
        assert_eq!(MachineConfig::reply_timeout_override(None, 0), 1);
    }

    #[test]
    fn ofm_workers_resolution() {
        // Explicit non-zero config beats everything.
        let c = MachineConfig::default().with_ofm_workers(3);
        assert_eq!(c.effective_ofm_workers(), 3);
        // Auto (0) resolves to something positive.
        let c = MachineConfig::default();
        assert_eq!(c.ofm_workers, 0);
        assert!(c.effective_ofm_workers() >= 1);
        // The serial baseline stays expressible.
        assert_eq!(MachineConfig::tiny().with_ofm_workers(1).effective_ofm_workers(), 1);
    }

    #[test]
    fn disk_placement_follows_stride() {
        let c = MachineConfig::paper_prototype();
        assert!(c.pe_has_disk(0));
        assert!(!c.pe_has_disk(1));
        assert!(c.pe_has_disk(8));
    }
}
