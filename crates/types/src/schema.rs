//! Relation schemas.
//!
//! A PRISMA relation fragment is managed by exactly one One-Fragment
//! Manager (paper §2.5); every fragment of a relation shares the relation's
//! [`Schema`]. Schemas also flow through the query pipeline: the SQL and
//! PRISMAlog front ends type-check against them and each algebra operator
//! derives its output schema.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{PrismaError, Result};
use crate::value::Value;

/// Column data types supported by the machine's front ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// Variable-length string.
    Str,
}

impl DataType {
    /// True when a value of type `other` may be stored in a column of type
    /// `self` (identity, plus Int widening into Double).
    pub fn accepts(self, other: DataType) -> bool {
        self == other || (self == DataType::Double && other == DataType::Int)
    }

    /// True for Int/Double.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Double)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "STRING",
        };
        f.write_str(s)
    }
}

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name; unqualified (`"a"`) or qualified (`"emp.a"`).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is admissible.
    pub nullable: bool,
}

impl Column {
    /// Non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// The part of the name after the last `.`, i.e. without any relation
    /// qualifier.
    pub fn base_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns. Column names need not be unique (joins
    /// can produce duplicates); [`Schema::resolve`] reports ambiguity.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Empty schema (zero columns), the schema of a `VALUES ()` row or of a
    /// boolean query result.
    pub fn empty() -> Self {
        Schema::default()
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Columns in order.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at ordinal `i`.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Resolve a (possibly qualified) column name to its ordinal.
    ///
    /// Resolution rules follow SQL: a qualified name matches only columns
    /// with that exact qualified name; an unqualified name matches any
    /// column whose base name equals it. Ambiguity and absence are errors.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        let qualified = name.contains('.');
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            let hit = if qualified {
                c.name == name
            } else {
                c.base_name() == name
            };
            if hit {
                if found.is_some() {
                    return Err(PrismaError::AmbiguousColumn(name.to_owned()));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| PrismaError::UnknownColumn(name.to_owned()))
    }

    /// Concatenation of two schemas, with every column qualified by the
    /// given relation aliases — the schema of `left JOIN right`.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Re-qualify every column as `alias.base_name`.
    pub fn qualify(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: format!("{alias}.{}", c.base_name()),
                    dtype: c.dtype,
                    nullable: c.nullable,
                })
                .collect(),
        }
    }

    /// Drop all qualifiers.
    pub fn unqualified(&self) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.base_name().to_owned(),
                    dtype: c.dtype,
                    nullable: c.nullable,
                })
                .collect(),
        }
    }

    /// Schema containing the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices
                .iter()
                .filter_map(|&i| self.columns.get(i).cloned())
                .collect(),
        }
    }

    /// Validate that `values` is a legal tuple for this schema: arity,
    /// types (with Int→Double widening) and nullability.
    pub fn check_tuple(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.arity() {
            return Err(PrismaError::ArityMismatch {
                expected: self.arity(),
                got: values.len(),
            });
        }
        for (c, v) in self.columns.iter().zip(values) {
            match v.data_type() {
                None => {
                    if !c.nullable {
                        return Err(PrismaError::NullViolation(c.name.clone()));
                    }
                }
                Some(dt) => {
                    if !c.dtype.accepts(dt) {
                        return Err(PrismaError::TypeMismatch {
                            column: c.name.clone(),
                            expected: c.dtype.to_string(),
                            got: dt.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Two schemas are union-compatible when their column types agree
    /// pairwise (names may differ).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .columns
                .iter()
                .zip(other.columns.iter())
                .all(|(a, b)| a.dtype == b.dtype)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if c.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::nullable("salary", DataType::Double),
        ])
    }

    #[test]
    fn resolve_unqualified_and_qualified() {
        let s = emp().qualify("emp");
        assert_eq!(s.resolve("id").unwrap(), 0);
        assert_eq!(s.resolve("emp.name").unwrap(), 1);
        assert!(matches!(
            s.resolve("bogus"),
            Err(PrismaError::UnknownColumn(_))
        ));
    }

    #[test]
    fn resolve_reports_ambiguity() {
        let s = emp().qualify("a").join(&emp().qualify("b"));
        assert!(matches!(
            s.resolve("id"),
            Err(PrismaError::AmbiguousColumn(_))
        ));
        assert_eq!(s.resolve("b.id").unwrap(), 3);
    }

    #[test]
    fn tuple_checking() {
        let s = emp();
        assert!(s
            .check_tuple(&[Value::Int(1), "bob".into(), Value::Double(9.5)])
            .is_ok());
        // Int widens into Double column.
        assert!(s
            .check_tuple(&[Value::Int(1), "bob".into(), Value::Int(9)])
            .is_ok());
        // NULL allowed only in nullable column.
        assert!(s
            .check_tuple(&[Value::Int(1), "bob".into(), Value::Null])
            .is_ok());
        assert!(matches!(
            s.check_tuple(&[Value::Null, "bob".into(), Value::Null]),
            Err(PrismaError::NullViolation(_))
        ));
        assert!(matches!(
            s.check_tuple(&[Value::Int(1), Value::Int(2), Value::Null]),
            Err(PrismaError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.check_tuple(&[Value::Int(1)]),
            Err(PrismaError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn projection_and_union_compat() {
        let s = emp();
        let p = s.project(&[2, 0]);
        assert_eq!(p.column(0).unwrap().name, "salary");
        assert_eq!(p.column(1).unwrap().name, "id");
        assert!(s.union_compatible(&emp().qualify("x")));
        assert!(!s.union_compatible(&p));
    }

    #[test]
    fn display_roundtrip_smoke() {
        let s = emp();
        let txt = s.to_string();
        assert!(txt.contains("salary DOUBLE NULL"), "{txt}");
    }
}
