//! # prisma-types
//!
//! Foundation types shared by every crate in the PRISMA database machine
//! reproduction: values, tuples, schemas, identifiers, errors and the
//! machine configuration from the paper's §3.2 (64 processing elements,
//! 16 MB local memory, four 10 Mbit/s links, 256-bit packets).
//!
//! The PRISMA paper (Apers, Kersten, Oerlemans; EDBT 1988) describes a
//! distributed, main-memory DBMS built from One-Fragment Managers running
//! on a message-passing multi-computer. This crate deliberately contains
//! no behaviour beyond the data model itself, so that the substrate crates
//! (`prisma-multicomputer`, `prisma-storage`, ...) and the DBMS crates can
//! share vocabulary without depending on each other.

pub mod chunk;
pub mod column;
pub mod config;
pub mod error;
pub mod ids;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;
pub mod wire;

pub use chunk::{seal_every, SealedChunk, ZoneMap, DEFAULT_SEAL_EVERY};
pub use column::{ColumnVec, LazyColumns, SelVec};
pub use config::{MachineConfig, TopologyKind};
pub use error::{PrismaError, Result};
pub use ids::{FragmentId, PeId, ProcessId, QueryId, TxnId};
pub use schema::{Column, DataType, Schema};
pub use stats::{ColumnStats, FragmentStatistics, Histogram, StatsFreshness};
pub use tuple::Tuple;
pub use value::Value;
