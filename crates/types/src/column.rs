//! Columnar vectors and selection vectors — the column-at-a-time data
//! representation the batch executor evaluates expressions over.
//!
//! A [`ColumnVec`] stores one attribute of a batch of tuples contiguously,
//! decomposed into a typed payload vector plus an optional NULL mask, so
//! expression kernels can run tight loops over `&[i64]` / `&[f64]` slices
//! instead of dispatching on the [`Value`] enum per row. Columns whose
//! non-null values span more than one runtime type (legal after mixed
//! Int/Double arithmetic) fall back to [`ColumnVec::Mixed`], which keeps
//! raw values and routes kernels to the scalar path.
//!
//! A [`SelVec`] is a selection vector over a batch: either *all rows* (no
//! allocation) or a sorted list of selected row indices. Filters refine
//! the selection instead of copying survivors, so a filtered batch shares
//! its columns with its input untouched.

use crate::value::Value;

/// One attribute of a batch, stored column-wise.
///
/// Typed variants carry `(payload, null-mask)`; `nulls` is `None` when the
/// column contains no NULL (the common case, checked once per batch
/// instead of once per row). Payload slots under a set mask bit hold an
/// arbitrary default and must not be observed.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVec {
    /// 64-bit integers.
    Int { data: Vec<i64>, nulls: Option<Vec<bool>> },
    /// 64-bit floats.
    Double { data: Vec<f64>, nulls: Option<Vec<bool>> },
    /// Booleans (also the output type of vectorized predicates).
    Bool { data: Vec<bool>, nulls: Option<Vec<bool>> },
    /// Strings.
    Str { data: Vec<String>, nulls: Option<Vec<bool>> },
    /// Escape hatch: heterogeneous or all-NULL columns, stored row-wise.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Double { data, .. } => data.len(),
            ColumnVec::Bool { data, .. } => data.len(),
            ColumnVec::Str { data, .. } => data.len(),
            ColumnVec::Mixed(v) => v.len(),
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff row `i` is NULL.
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Double { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Str { nulls, .. } => nulls.as_ref().is_some_and(|n| n[i]),
            ColumnVec::Mixed(v) => v[i].is_null(),
        }
    }

    /// Materialize row `i` as a [`Value`] (clones string payloads).
    pub fn value_at(&self, i: usize) -> Value {
        if self.is_null_at(i) {
            return Value::Null;
        }
        match self {
            ColumnVec::Int { data, .. } => Value::Int(data[i]),
            ColumnVec::Double { data, .. } => Value::Double(data[i]),
            ColumnVec::Bool { data, .. } => Value::Bool(data[i]),
            ColumnVec::Str { data, .. } => Value::Str(data[i].clone()),
            ColumnVec::Mixed(v) => v[i].clone(),
        }
    }

    /// Build a column from row values in a single pass, sniffing the
    /// tightest typed representation: a single non-null runtime type
    /// yields the typed variant (with a mask when NULLs occur); anything
    /// else — including all-NULL columns, whose type is unknowable —
    /// yields `Mixed`. On a type conflict the typed partial built so far
    /// is demoted to `Mixed` and the pass continues.
    pub fn from_values<'a>(values: impl Iterator<Item = &'a Value>) -> ColumnVec {
        /// Append `v` to a typed `data`/`nulls` pair, or report a
        /// conflict via `extract` returning `None`.
        #[inline]
        fn push<T: Default>(
            data: &mut Vec<T>,
            nulls: &mut Vec<bool>,
            extracted: Option<T>,
            is_null: bool,
        ) -> bool {
            match (extracted, is_null) {
                (Some(x), _) => {
                    data.push(x);
                    nulls.push(false);
                    true
                }
                (None, true) => {
                    data.push(T::default());
                    nulls.push(true);
                    true
                }
                (None, false) => false,
            }
        }
        /// Rebuild the raw values of a demoted typed partial.
        fn demote<T>(data: Vec<T>, nulls: Vec<bool>, wrap: impl Fn(T) -> Value) -> Vec<Value> {
            data.into_iter()
                .zip(nulls)
                .map(|(x, null)| if null { Value::Null } else { wrap(x) })
                .collect()
        }

        enum Builder {
            /// Only NULLs seen so far (type still unknown).
            Start(usize),
            Int(Vec<i64>, Vec<bool>),
            Double(Vec<f64>, Vec<bool>),
            Bool(Vec<bool>, Vec<bool>),
            Str(Vec<String>, Vec<bool>),
            Mixed(Vec<Value>),
        }

        let mut b = Builder::Start(0);
        for v in values {
            let null = v.is_null();
            b = match b {
                Builder::Start(nulls) => match v {
                    Value::Null => Builder::Start(nulls + 1),
                    _ => {
                        // First non-null value fixes the candidate type;
                        // re-enter the loop body below via recursion-free
                        // re-dispatch on a fresh typed builder.
                        let mut mask = vec![true; nulls];
                        mask.push(false);
                        match v {
                            Value::Int(x) => {
                                let mut data = vec![0; nulls];
                                data.push(*x);
                                Builder::Int(data, mask)
                            }
                            Value::Double(x) => {
                                let mut data = vec![0.0; nulls];
                                data.push(*x);
                                Builder::Double(data, mask)
                            }
                            Value::Bool(x) => {
                                let mut data = vec![false; nulls];
                                data.push(*x);
                                Builder::Bool(data, mask)
                            }
                            Value::Str(x) => {
                                let mut data = vec![String::new(); nulls];
                                data.push(x.clone());
                                Builder::Str(data, mask)
                            }
                            Value::Null => unreachable!("guarded above"),
                        }
                    }
                },
                Builder::Int(mut data, mut mask) => {
                    if push(&mut data, &mut mask, v.as_int(), null) {
                        Builder::Int(data, mask)
                    } else {
                        let mut vals = demote(data, mask, Value::Int);
                        vals.push(v.clone());
                        Builder::Mixed(vals)
                    }
                }
                Builder::Double(mut data, mut mask) => {
                    let x = match v {
                        Value::Double(d) => Some(*d),
                        _ => None,
                    };
                    if push(&mut data, &mut mask, x, null) {
                        Builder::Double(data, mask)
                    } else {
                        let mut vals = demote(data, mask, Value::Double);
                        vals.push(v.clone());
                        Builder::Mixed(vals)
                    }
                }
                Builder::Bool(mut data, mut mask) => {
                    if push(&mut data, &mut mask, v.as_bool(), null) {
                        Builder::Bool(data, mask)
                    } else {
                        let mut vals = demote(data, mask, Value::Bool);
                        vals.push(v.clone());
                        Builder::Mixed(vals)
                    }
                }
                Builder::Str(mut data, mut mask) => {
                    let x = v.as_str().map(str::to_owned);
                    if push(&mut data, &mut mask, x, null) {
                        Builder::Str(data, mask)
                    } else {
                        let mut vals = demote(data, mask, Value::Str);
                        vals.push(v.clone());
                        Builder::Mixed(vals)
                    }
                }
                Builder::Mixed(mut vals) => {
                    vals.push(v.clone());
                    Builder::Mixed(vals)
                }
            };
        }
        let finish = |mask: Vec<bool>| mask.iter().any(|&m| m).then_some(mask);
        match b {
            Builder::Start(n) => ColumnVec::Mixed(vec![Value::Null; n]),
            Builder::Int(data, mask) => ColumnVec::Int {
                data,
                nulls: finish(mask),
            },
            Builder::Double(data, mask) => ColumnVec::Double {
                data,
                nulls: finish(mask),
            },
            Builder::Bool(data, mask) => ColumnVec::Bool {
                data,
                nulls: finish(mask),
            },
            Builder::Str(data, mask) => ColumnVec::Str {
                data,
                nulls: finish(mask),
            },
            Builder::Mixed(vals) => ColumnVec::Mixed(vals),
        }
    }

    /// Pivot rows into one column per attribute (arity taken from the
    /// first row) — the benches' and tests' eager rows→columns
    /// conversion. The executor pivots lazily per referenced column
    /// through [`LazyColumns`] instead.
    pub fn pivot(rows: &[crate::tuple::Tuple]) -> Vec<std::sync::Arc<ColumnVec>> {
        let arity = rows.first().map_or(0, crate::tuple::Tuple::arity);
        (0..arity)
            .map(|c| std::sync::Arc::new(ColumnVec::pivot_one(rows, c)))
            .collect()
    }

    /// Pivot exactly one attribute of `rows` into a column.
    pub fn pivot_one(rows: &[crate::tuple::Tuple], col: usize) -> ColumnVec {
        ColumnVec::from_values(rows.iter().map(|t| t.get(col)))
    }

    /// New column holding the rows at `indices`, in that order (the
    /// gather/compaction primitive projections use to apply a selection).
    pub fn gather(&self, indices: &[u32]) -> ColumnVec {
        fn take<T: Clone>(data: &[T], idx: &[u32]) -> Vec<T> {
            idx.iter().map(|&i| data[i as usize].clone()).collect()
        }
        let mask = |nulls: &Option<Vec<bool>>| {
            nulls.as_ref().and_then(|n| {
                let taken = take(n, indices);
                taken.iter().any(|&b| b).then_some(taken)
            })
        };
        match self {
            ColumnVec::Int { data, nulls } => ColumnVec::Int {
                data: take(data, indices),
                nulls: mask(nulls),
            },
            ColumnVec::Double { data, nulls } => ColumnVec::Double {
                data: take(data, indices),
                nulls: mask(nulls),
            },
            ColumnVec::Bool { data, nulls } => ColumnVec::Bool {
                data: take(data, indices),
                nulls: mask(nulls),
            },
            ColumnVec::Str { data, nulls } => ColumnVec::Str {
                data: take(data, indices),
                nulls: mask(nulls),
            },
            ColumnVec::Mixed(v) => ColumnVec::Mixed(take(v, indices)),
        }
    }
}

/// The column set of a batch, pivoted **lazily per attribute**.
///
/// Pivoting a row batch decomposes tuples into typed [`ColumnVec`]s —
/// which deep-copies `Str` payloads. A filter on `a < 5` over a batch
/// with a fat string column must not pay for pivoting the strings, so
/// the column set keeps the source rows and materializes each column the
/// first time a kernel references it ([`LazyColumns::col`]). Columns a
/// query never touches are never built.
///
/// Two constructions, one invariant:
///
/// * [`LazyColumns::from_rows`] — nothing pivoted yet, every column
///   materializes on demand from the retained rows;
/// * [`LazyColumns::from_cols`] — all columns pre-materialized (operator
///   output such as a projection), no source rows.
///
/// When `src_rows` is `None`, every column slot is pre-filled — so
/// [`LazyColumns::col`] always has a source to build from.
#[derive(Debug)]
pub struct LazyColumns {
    /// Full-length row form the columns pivot from (and that consumers
    /// gather refcounted tuples back out of).
    src_rows: Option<std::sync::Arc<Vec<crate::tuple::Tuple>>>,
    cols: Vec<std::sync::OnceLock<std::sync::Arc<ColumnVec>>>,
}

impl LazyColumns {
    /// Column set over retained rows; no column is pivoted until first
    /// referenced. Arity comes from the first row (0 for an empty batch).
    pub fn from_rows(rows: std::sync::Arc<Vec<crate::tuple::Tuple>>) -> LazyColumns {
        let arity = rows.first().map_or(0, crate::tuple::Tuple::arity);
        LazyColumns {
            src_rows: Some(rows),
            cols: (0..arity).map(|_| std::sync::OnceLock::new()).collect(),
        }
    }

    /// Column set from already-materialized columns **and** the retained
    /// row form they were pivoted from — a sealed fragment chunk. Kernels
    /// read the pre-filled columns with zero pivot, while row consumers
    /// (`pivot_to_rows`, point reads, the row wire) gather refcounted
    /// tuples out of `rows` instead of rebuilding them from the columns.
    pub fn from_rows_and_cols(
        rows: std::sync::Arc<Vec<crate::tuple::Tuple>>,
        cols: Vec<std::sync::Arc<ColumnVec>>,
    ) -> LazyColumns {
        debug_assert!(cols.iter().all(|c| c.len() == rows.len()));
        LazyColumns {
            src_rows: Some(rows),
            cols: cols
                .into_iter()
                .map(|c| {
                    let cell = std::sync::OnceLock::new();
                    cell.set(c).expect("fresh cell");
                    cell
                })
                .collect(),
        }
    }

    /// Column set from already-materialized columns (operator output).
    pub fn from_cols(cols: Vec<std::sync::Arc<ColumnVec>>) -> LazyColumns {
        LazyColumns {
            src_rows: None,
            cols: cols
                .into_iter()
                .map(|c| {
                    let cell = std::sync::OnceLock::new();
                    cell.set(c).expect("fresh cell");
                    cell
                })
                .collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The retained full-length row form, when this set was built from
    /// rows.
    pub fn src_rows(&self) -> Option<&std::sync::Arc<Vec<crate::tuple::Tuple>>> {
        self.src_rows.as_ref()
    }

    /// Attribute `i` as a column, pivoting it on first access (and only
    /// it — sibling attributes stay un-pivoted).
    pub fn col(&self, i: usize) -> &std::sync::Arc<ColumnVec> {
        self.cols[i].get_or_init(|| {
            let rows = self
                .src_rows
                .as_ref()
                .expect("no src_rows implies every column is pre-filled");
            std::sync::Arc::new(ColumnVec::pivot_one(rows, i))
        })
    }

    /// Value of attribute `col` at (full-length) row index `idx`, read
    /// from the materialized column when one exists and from the source
    /// rows otherwise — a point read never forces a column pivot.
    pub fn value_at(&self, idx: usize, col: usize) -> Value {
        if let Some(c) = self.cols[col].get() {
            return c.value_at(idx);
        }
        let rows = self.src_rows.as_ref().expect("unmaterialized implies rows");
        rows[idx].get(col).clone()
    }

    /// Whether attribute `i` has been pivoted (observability for tests
    /// asserting pivot laziness).
    pub fn is_materialized(&self, i: usize) -> bool {
        self.cols[i].get().is_some()
    }

    /// How many attributes have been pivoted so far.
    pub fn materialized_count(&self) -> usize {
        (0..self.arity()).filter(|&i| self.is_materialized(i)).count()
    }
}

/// A selection vector over a batch of `len` rows.
///
/// `All` selects every row without allocating; `Idx` holds the selected
/// row indices in ascending order. Operators thread a `SelVec` alongside
/// the shared columns, so filtering never copies column payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct SelVec {
    len: usize,
    sel: Option<Vec<u32>>,
}

impl SelVec {
    /// Select all of `len` rows.
    pub fn all(len: usize) -> SelVec {
        SelVec { len, sel: None }
    }

    /// Select exactly `indices` (must be ascending and `< len`) out of
    /// `len` rows. Collapses to the allocation-free `All` form when every
    /// row is selected.
    pub fn from_indices(len: usize, indices: Vec<u32>) -> SelVec {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().is_none_or(|&i| (i as usize) < len));
        if indices.len() == len {
            SelVec::all(len)
        } else {
            SelVec {
                len,
                sel: Some(indices),
            }
        }
    }

    /// Number of rows in the underlying batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of *selected* rows.
    pub fn count(&self) -> usize {
        self.sel.as_ref().map_or(self.len, Vec::len)
    }

    /// True when no row is selected.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// True when every row is selected.
    pub fn is_all(&self) -> bool {
        self.sel.is_none()
    }

    /// The explicit index list, or `None` in the `All` form.
    pub fn indices(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Underlying row index of the `pos`-th selected row.
    #[inline]
    pub fn nth(&self, pos: usize) -> usize {
        match &self.sel {
            None => pos,
            Some(idx) => idx[pos] as usize,
        }
    }

    /// Iterate the selected row indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count()).map(move |p| self.nth(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_sniffs_types() {
        let ints = [Value::Int(1), Value::Null, Value::Int(3)];
        let col = ColumnVec::from_values(ints.iter());
        assert!(matches!(
            &col,
            ColumnVec::Int { data, nulls: Some(_) } if data.len() == 3
        ));
        assert_eq!(col.value_at(1), Value::Null);
        assert_eq!(col.value_at(2), Value::Int(3));

        let clean = [Value::Str("a".into()), Value::Str("b".into())];
        assert!(matches!(
            ColumnVec::from_values(clean.iter()),
            ColumnVec::Str { nulls: None, .. }
        ));

        let mixed = [Value::Int(1), Value::Double(2.0)];
        assert!(matches!(
            ColumnVec::from_values(mixed.iter()),
            ColumnVec::Mixed(_)
        ));

        let all_null = [Value::Null, Value::Null];
        let col = ColumnVec::from_values(all_null.iter());
        assert!(matches!(&col, ColumnVec::Mixed(v) if v.len() == 2));
        assert!(col.is_null_at(0));
    }

    #[test]
    fn roundtrip_preserves_values() {
        let vals = vec![
            Value::Double(1.5),
            Value::Null,
            Value::Double(f64::NAN),
            Value::Double(-0.0),
        ];
        let col = ColumnVec::from_values(vals.iter());
        let back: Vec<Value> = (0..col.len()).map(|i| col.value_at(i)).collect();
        assert_eq!(back, vals);
    }

    #[test]
    fn gather_reorders_and_drops_clean_masks() {
        let vals = [Value::Int(10), Value::Null, Value::Int(30)];
        let col = ColumnVec::from_values(vals.iter());
        let g = col.gather(&[2, 0]);
        assert_eq!(g.value_at(0), Value::Int(30));
        assert_eq!(g.value_at(1), Value::Int(10));
        // No NULL survives the gather, so the mask is dropped entirely.
        assert!(matches!(g, ColumnVec::Int { nulls: None, .. }));
    }

    #[test]
    fn lazy_columns_pivot_per_referenced_column_only() {
        use crate::tuple::Tuple;
        let rows: Vec<Tuple> = (0..4)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Str(format!("s{i}"))]))
            .collect();
        let lazy = LazyColumns::from_rows(std::sync::Arc::new(rows));
        assert_eq!(lazy.arity(), 2);
        assert_eq!(lazy.materialized_count(), 0, "nothing pivots up front");
        // Point reads come from the rows without pivoting the column.
        assert_eq!(lazy.value_at(3, 1), Value::Str("s3".into()));
        assert_eq!(lazy.materialized_count(), 0);
        // Referencing column 0 pivots it — and only it: the Str column's
        // payloads are never deep-copied.
        assert!(matches!(&**lazy.col(0), ColumnVec::Int { .. }));
        assert!(lazy.is_materialized(0));
        assert!(!lazy.is_materialized(1), "unreferenced Str column pivoted");
        // A materialized column serves point reads from the column form.
        assert_eq!(lazy.value_at(2, 0), Value::Int(2));

        // from_cols is fully materialized and needs no rows.
        let pre = LazyColumns::from_cols(vec![std::sync::Arc::new(
            ColumnVec::from_values([Value::Int(7)].iter()),
        )]);
        assert!(pre.src_rows().is_none());
        assert_eq!(pre.materialized_count(), 1);
        assert_eq!(pre.col(0).value_at(0), Value::Int(7));
    }

    #[test]
    fn selvec_forms() {
        let all = SelVec::all(5);
        assert!(all.is_all());
        assert_eq!(all.count(), 5);
        assert_eq!(all.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);

        let some = SelVec::from_indices(5, vec![1, 4]);
        assert_eq!(some.count(), 2);
        assert_eq!(some.len(), 5);
        assert_eq!(some.nth(1), 4);
        assert_eq!(some.iter().collect::<Vec<_>>(), vec![1, 4]);

        // Full coverage collapses to All.
        assert!(SelVec::from_indices(3, vec![0, 1, 2]).is_all());
        assert!(SelVec::from_indices(3, vec![]).is_empty());
    }
}
