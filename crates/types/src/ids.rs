//! Identifier newtypes used across the machine.
//!
//! Each subsystem names its entities with a dedicated newtype so that a
//! processing-element number can never be confused with a fragment number
//! in a message header.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as u32)
            }
        }
    };
}

id_type!(
    /// A processing element of the multi-computer (paper §3.2; the
    /// prototype has 64 of these).
    PeId,
    "pe"
);
id_type!(
    /// A POOL-X process (dynamically created, explicitly allocated to a PE).
    ProcessId,
    "proc"
);
id_type!(
    /// A relation fragment, managed by exactly one One-Fragment Manager.
    FragmentId,
    "frag"
);
id_type!(
    /// A transaction coordinated by the Global Data Handler.
    TxnId,
    "txn"
);
id_type!(
    /// A query instance; the GDH spawns fresh component instances per query
    /// (paper §2.2).
    QueryId,
    "q"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(PeId(3).to_string(), "pe3");
        assert_eq!(FragmentId::from(7usize).index(), 7);
        assert_eq!(TxnId(9).to_string(), "txn9");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(PeId(2) < PeId(10));
        assert_eq!(QueryId(5), QueryId(5));
    }
}
