//! Tuples — immutable rows exchanged between OFMs over the network.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// An immutable row.
///
/// Tuples are reference-counted so that fragment-parallel operators can
/// share rows between the build and probe sides of a join, and between an
/// OFM's storage and in-flight messages, without copying. A `Tuple` clone
/// is a refcount bump.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// The empty (0-ary) tuple.
    pub fn unit() -> Self {
        Tuple::new(Vec::new())
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values in order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at ordinal `i`; panics on out-of-range (callers type-check
    /// plans before execution, so an out-of-range ordinal is a planner bug).
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// New tuple holding the attributes at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenation `self ++ other` — the join of two matching rows.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Key extracted for hash/sort operations: the values at `indices`.
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Approximate in-memory footprint, for per-PE memory accounting.
    pub fn byte_size(&self) -> usize {
        std::mem::size_of::<Tuple>()
            + self.values.iter().map(Value::byte_size).sum::<usize>()
    }

    /// Wire size in bits when shipped through the interconnect: the paper's
    /// network moves 256-bit packets, so message costs are derived from this.
    pub fn wire_bits(&self) -> u64 {
        let bytes: usize = self
            .values
            .iter()
            .map(|v| match v {
                Value::Null => 1,
                Value::Bool(_) => 1,
                Value::Int(_) => 8,
                Value::Double(_) => 8,
                Value::Str(s) => 4 + s.len(),
            })
            .sum();
        (bytes as u64) * 8
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "bob", 3.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, "shared"];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn project_concat_key() {
        let t = tuple![1, "a", 2.5];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![2.5, 1]);
        let c = t.concat(&tuple![true]);
        assert_eq!(c.arity(), 4);
        assert_eq!(t.key(&[1]), vec![Value::from("a")]);
    }

    #[test]
    fn wire_bits_reflect_payload() {
        assert_eq!(tuple![1i64].wire_bits(), 64);
        assert_eq!(tuple!["ab"].wire_bits(), (4 + 2) * 8);
        assert_eq!(Tuple::unit().wire_bits(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(tuple![1, "x"].to_string(), "(1, 'x')");
    }
}
