//! Sealed column chunks — the immutable columnar tier of fragment storage.
//!
//! A fragment stores its rows in two tiers: a small row-oriented *delta*
//! (the mutable `TupleHeap` side, owned by `prisma-ofm`) and a list of
//! [`SealedChunk`]s of roughly [`seal_every`] rows each. A
//! chunk is sealed exactly once: the rows are pivoted into typed
//! [`ColumnVec`]s (the *only* pivot those rows ever pay for), a [`ZoneMap`]
//! is computed per column, and the original row form is retained so row
//! consumers (checkpoints, the legacy row wire, undo) can gather refcounted
//! tuples without un-pivoting.
//!
//! Chunks are immutable; a mutation of any covered row *dissolves* the whole
//! chunk back into the delta (handled by the fragment, not here). That makes
//! two cheap caches sound:
//!
//! * the [`ZoneMap`] per column (min/max under [`Value::total_cmp`], NULL
//!   count, duplicate flag), which scan operators use to refute a pushed-down
//!   predicate for the whole chunk without touching payloads, and
//! * a lazily-built wire block ([`SealedChunk::wire_block`]) — the encoded
//!   [`BlockChunk`] frame a ship of this chunk puts on the interconnect.
//!   Re-shipping cold data is an `Arc` clone; the encoder runs at most once
//!   per sealed chunk.

use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

use crate::column::ColumnVec;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::wire::BlockChunk;

/// Default rows per sealed chunk when `SEAL_EVERY` is unset.
pub const DEFAULT_SEAL_EVERY: usize = 1024;

/// Rows per sealed chunk — also the threshold at which a fragment's delta
/// is sealed. Reads the `SEAL_EVERY` environment variable once (CI runs the
/// suite under `SEAL_EVERY=8` so mixed sealed/delta states are exercised
/// everywhere); unset, unparsable or zero values fall back to
/// [`DEFAULT_SEAL_EVERY`].
pub fn seal_every() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("SEAL_EVERY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SEAL_EVERY)
    })
}

/// Per-column summary of one sealed chunk, used to refute predicates for
/// the whole chunk before touching column payloads.
///
/// `min`/`max` are under [`Value::total_cmp`] and exclude NULLs; both are
/// `None` iff every row of the column is NULL. `has_dups` records whether
/// any non-null value occurs more than once (a distinct-count hint the
/// statistics fold consumes).
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Smallest non-null value, or `None` when the column is all-NULL.
    pub min: Option<Value>,
    /// Largest non-null value, or `None` when the column is all-NULL.
    pub max: Option<Value>,
    /// Number of NULL rows.
    pub nulls: u64,
    /// Total rows in the chunk (NULLs included).
    pub rows: u64,
    /// True when some non-null value occurs more than once.
    pub has_dups: bool,
}

impl ZoneMap {
    /// Summarize one column. Runs over the typed payload vectors directly,
    /// so sealing a string column does not clone any payload except the
    /// final min/max pair.
    pub fn build(col: &ColumnVec) -> ZoneMap {
        let rows = col.len() as u64;
        match col {
            ColumnVec::Int { data, nulls } => {
                let (mut min, mut max) = (None::<i64>, None::<i64>);
                let (mut n, mut dups, mut seen) = (0u64, false, BTreeSet::new());
                for (i, &x) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        n += 1;
                        continue;
                    }
                    min = Some(min.map_or(x, |m: i64| m.min(x)));
                    max = Some(max.map_or(x, |m: i64| m.max(x)));
                    dups |= !seen.insert(x);
                }
                ZoneMap {
                    min: min.map(Value::Int),
                    max: max.map(Value::Int),
                    nulls: n,
                    rows,
                    has_dups: dups,
                }
            }
            ColumnVec::Double { data, nulls } => {
                let (mut min, mut max) = (None::<f64>, None::<f64>);
                let (mut n, mut dups, mut seen) = (0u64, false, BTreeSet::new());
                for (i, &x) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        n += 1;
                        continue;
                    }
                    // total_cmp order, matching the vectorized kernels: NaN
                    // sorts above +inf, -0.0 below +0.0.
                    min = Some(match min {
                        Some(m) if m.total_cmp(&x).is_le() => m,
                        _ => x,
                    });
                    max = Some(match max {
                        Some(m) if m.total_cmp(&x).is_ge() => m,
                        _ => x,
                    });
                    dups |= !seen.insert(x.to_bits());
                }
                ZoneMap {
                    min: min.map(Value::Double),
                    max: max.map(Value::Double),
                    nulls: n,
                    rows,
                    has_dups: dups,
                }
            }
            ColumnVec::Bool { data, nulls } => {
                let (mut min, mut max) = (None::<bool>, None::<bool>);
                let (mut n, mut dups, mut seen) = (0u64, false, BTreeSet::new());
                for (i, &x) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        n += 1;
                        continue;
                    }
                    min = Some(min.map_or(x, |m: bool| m.min(x)));
                    max = Some(max.map_or(x, |m: bool| m.max(x)));
                    dups |= !seen.insert(x);
                }
                ZoneMap {
                    min: min.map(Value::Bool),
                    max: max.map(Value::Bool),
                    nulls: n,
                    rows,
                    has_dups: dups,
                }
            }
            ColumnVec::Str { data, nulls } => {
                let (mut min, mut max) = (None::<&str>, None::<&str>);
                let (mut n, mut dups, mut seen) = (0u64, false, BTreeSet::new());
                for (i, x) in data.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|m| m[i]) {
                        n += 1;
                        continue;
                    }
                    let x = x.as_str();
                    min = Some(min.map_or(x, |m: &str| m.min(x)));
                    max = Some(max.map_or(x, |m: &str| m.max(x)));
                    dups |= !seen.insert(x);
                }
                ZoneMap {
                    min: min.map(|s| Value::Str(s.to_owned())),
                    max: max.map(|s| Value::Str(s.to_owned())),
                    nulls: n,
                    rows,
                    has_dups: dups,
                }
            }
            ColumnVec::Mixed(vals) => {
                let (mut min, mut max) = (None::<&Value>, None::<&Value>);
                let (mut n, mut dups) = (0u64, false);
                let mut seen: BTreeSet<&Value> = BTreeSet::new();
                for v in vals {
                    if v.is_null() {
                        n += 1;
                        continue;
                    }
                    min = Some(match min {
                        Some(m) if m.total_cmp(v).is_le() => m,
                        _ => v,
                    });
                    max = Some(match max {
                        Some(m) if m.total_cmp(v).is_ge() => m,
                        _ => v,
                    });
                    dups |= !seen.insert(v);
                }
                ZoneMap {
                    min: min.cloned(),
                    max: max.cloned(),
                    nulls: n,
                    rows,
                    has_dups: dups,
                }
            }
        }
    }
}

/// An immutable, fully-pivoted run of fragment rows.
///
/// Sealing pays the rows→columns pivot once; every later scan serves the
/// shared [`ColumnVec`]s directly (zero pivot), and every later ship of the
/// whole chunk reuses the cached [`BlockChunk`] built on first encode. The
/// row form is retained so row-oriented consumers stay cheap too.
#[derive(Debug)]
pub struct SealedChunk {
    rows: Arc<Vec<Tuple>>,
    cols: Vec<Arc<ColumnVec>>,
    zones: Vec<ZoneMap>,
    wire: OnceLock<Arc<BlockChunk>>,
}

impl SealedChunk {
    /// Seal `rows` (all the same arity) into an immutable columnar chunk:
    /// pivot every attribute, compute its zone map, and retain the rows.
    pub fn seal(rows: Vec<Tuple>) -> SealedChunk {
        let rows = Arc::new(rows);
        let arity = rows.first().map_or(0, Tuple::arity);
        let cols: Vec<Arc<ColumnVec>> = (0..arity)
            .map(|c| Arc::new(ColumnVec::pivot_one(&rows, c)))
            .collect();
        let zones = cols.iter().map(|c| ZoneMap::build(c)).collect();
        SealedChunk {
            rows,
            cols,
            zones,
            wire: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The retained row form (shared; never re-pivoted from the columns).
    pub fn rows(&self) -> &Arc<Vec<Tuple>> {
        &self.rows
    }

    /// The pivoted columns, one per attribute.
    pub fn cols(&self) -> &[Arc<ColumnVec>] {
        &self.cols
    }

    /// Per-column zone maps, parallel to [`SealedChunk::cols`].
    pub fn zones(&self) -> &[ZoneMap] {
        &self.zones
    }

    /// The encoded wire frame for the whole chunk, built on first request
    /// and cached for the chunk's lifetime — a re-ship of cold data is an
    /// `Arc` clone, never a second run of the encoder. Invalidation is
    /// structural: mutating a covered row dissolves the chunk (and this
    /// cache with it) back into the fragment's delta.
    pub fn wire_block(&self) -> Arc<BlockChunk> {
        self.wire
            .get_or_init(|| {
                Arc::new(BlockChunk::from_columns(
                    self.rows.len(),
                    self.cols.iter().map(|c| Cow::Borrowed(c.as_ref())),
                ))
            })
            .clone()
    }

    /// Whether the wire frame has been built yet (observability for the
    /// encode-once tests and the e12 bench).
    pub fn wire_cached(&self) -> bool {
        self.wire.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn zone_maps_summarize_each_column() {
        let chunk = SealedChunk::seal(vec![
            t(vec![Value::Int(5), Value::Str("b".into()), Value::Null]),
            t(vec![Value::Int(2), Value::Str("a".into()), Value::Null]),
            t(vec![Value::Int(5), Value::Null, Value::Null]),
        ]);
        assert_eq!(chunk.len(), 3);
        assert_eq!(chunk.arity(), 3);
        let z = &chunk.zones()[0];
        assert_eq!(z.min, Some(Value::Int(2)));
        assert_eq!(z.max, Some(Value::Int(5)));
        assert_eq!((z.nulls, z.rows, z.has_dups), (0, 3, true));
        let z = &chunk.zones()[1];
        assert_eq!(z.min, Some(Value::Str("a".into())));
        assert_eq!(z.max, Some(Value::Str("b".into())));
        assert_eq!((z.nulls, z.has_dups), (1, false));
        // All-NULL column: no bounds at all.
        let z = &chunk.zones()[2];
        assert_eq!((z.min.as_ref(), z.max.as_ref()), (None, None));
        assert_eq!(z.nulls, 3);
    }

    #[test]
    fn double_zones_use_total_order() {
        let chunk = SealedChunk::seal(vec![
            t(vec![Value::Double(f64::NAN)]),
            t(vec![Value::Double(-0.0)]),
            t(vec![Value::Double(1.5)]),
        ]);
        let z = &chunk.zones()[0];
        // total_cmp: -0.0 < 1.5 < NaN.
        assert_eq!(z.min, Some(Value::Double(-0.0)));
        assert!(matches!(z.max, Some(Value::Double(x)) if x.is_nan()));
        assert!(!z.has_dups);
    }

    #[test]
    fn wire_block_is_built_once_and_round_trips() {
        let rows: Vec<Tuple> = (0..10)
            .map(|i| t(vec![Value::Int(i), Value::Str(format!("s{i}"))]))
            .collect();
        let chunk = SealedChunk::seal(rows.clone());
        assert!(!chunk.wire_cached());
        let a = chunk.wire_block();
        assert!(chunk.wire_cached());
        let b = chunk.wire_block();
        assert!(Arc::ptr_eq(&a, &b), "second ship must reuse the frame");
        let cols = a.decode().expect("cached frame decodes");
        let back: Vec<Tuple> = (0..a.rows())
            .map(|i| Tuple::new(cols.iter().map(|c| c.value_at(i)).collect()))
            .collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn seal_every_default() {
        // The env override is exercised by CI's SEAL_EVERY=8 lane; here we
        // only pin that the cached read yields a usable chunk size.
        assert!(seal_every() > 0);
    }
}
