//! Columnar wire format: typed column blocks for the streaming protocol.
//!
//! PR 2 made batches columnar inside a PE, but until PR 8 every batch was
//! pivoted back to rows at the wire boundary and re-pivoted on receive —
//! paying the pivot twice and shipping each value as a fat tagged
//! [`Value`]. This module is the replacement: a batch
//! is encoded as one [`BlockChunk`] — a self-describing frame of per-column
//! typed blocks with null bitmaps and cheap compression, modeled on
//! secondary-storage block encoders (dictionary/RLE for strings,
//! delta/bitpacking for integers).
//!
//! ## Frame layout
//!
//! ```text
//! +--------+--------+--------+----------+----------------------------------+
//! | magic  | rows   | ncols  | checksum | column 0 .. column ncols-1       |
//! | "PCB1" | u32 LE | u16 LE | u64 LE   |                                  |
//! +--------+--------+--------+----------+----------------------------------+
//! per column:
//! +-----+---------+-----------------------------------------------------+
//! | tag | len u32 | payload (len bytes)                                 |
//! +-----+---------+-----------------------------------------------------+
//! typed payload (tags 0..=6):
//! +-----------+----------------------------+----------+---------------+
//! | has_nulls | null bitmap ceil(rows/8) B | k varint | body over the |
//! | u8 0/1    | (only if has_nulls == 1)   |          | k non-null    |
//! +-----------+----------------------------+----------+ values in row |
//!                                                      | order         |
//!                                                      +---------------+
//! ```
//!
//! `k` must equal `rows − popcount(null bitmap)`; the redundancy makes a
//! frame whose header row count disagrees with its body structurally
//! invalid rather than a silently shorter column.
//!
//! The checksum is FNV-1a over every byte after the checksum field, so a
//! corrupted frame (bit flip, truncation, fault-injected mutation) is
//! rejected with a protocol error instead of silently mis-decoding.
//!
//! ## Encodings
//!
//! | tag | encoding     | body                                                  |
//! |-----|--------------|-------------------------------------------------------|
//! | 0   | `IntRaw`     | k × i64 LE                                            |
//! | 1   | `IntDelta`   | zigzag-varint first, u8 bit width, bitpacked deltas   |
//! | 2   | `DoubleRaw`  | k × `f64::to_bits` LE (NaN / −0.0 exact)              |
//! | 3   | `BoolBitmap` | ceil(k/8) bytes, one bit per value                    |
//! | 4   | `StrRaw`     | k × (varint len + UTF-8 bytes)                        |
//! | 5   | `StrDict`    | dict entries + bitpacked indices                      |
//! | 6   | `StrDictRle` | dict entries + (varint index, varint run) pairs       |
//! | 7   | `Mixed`      | rows × tagged [`Value`] (no null section) |
//!
//! Encoder selection is a pure cost comparison (see [`choose_int_codec`] and
//! [`choose_str_codec`]) so the heuristics are testable in isolation. Values
//! under null slots are never shipped; the decoder reconstructs the same
//! placeholder defaults (`0`, `0.0`, `false`, `""`) the column builders use,
//! so encode→decode is bit-identical for any canonically built
//! [`ColumnVec`].

use std::borrow::Cow;
use std::collections::HashMap;

use crate::column::ColumnVec;
use crate::error::{PrismaError, Result};
use crate::value::Value;

/// Frame magic: "PRISMA Column Block v1".
///
/// The fingerprint below pins every wire-format constant in this file
/// (`MAGIC`, `HEADER_LEN`, `TAG_*`, `VTAG_*`): `checkx-lint` recomputes
/// the hash and fails when they change without this line being touched.
/// An incompatible change must bump the magic's version digit, then
/// re-pin with `checkx-lint --wire-fingerprint`.
// checkx:wire-fingerprint f28c40ace0bd6006
const MAGIC: &[u8; 4] = b"PCB1";
/// Byte offset of the first column frame (magic + rows + ncols + checksum).
const HEADER_LEN: usize = 4 + 4 + 2 + 8;

// Column encoding tags.
const TAG_INT_RAW: u8 = 0;
const TAG_INT_DELTA: u8 = 1;
const TAG_DOUBLE_RAW: u8 = 2;
const TAG_BOOL_BITMAP: u8 = 3;
const TAG_STR_RAW: u8 = 4;
const TAG_STR_DICT: u8 = 5;
const TAG_STR_DICT_RLE: u8 = 6;
const TAG_MIXED: u8 = 7;

// Mixed-row value tags.
const VTAG_NULL: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_DOUBLE: u8 = 2;
const VTAG_BOOL: u8 = 3;
const VTAG_STR: u8 = 4;

/// True unless the `PRISMA_ROW_WIRE=1` environment flag asks for the legacy
/// row wire — the bench-baseline escape hatch, mirroring how
/// `set_streaming(false)` preserves the materialized reply path.
pub fn columnar_wire_default() -> bool {
    std::env::var("PRISMA_ROW_WIRE").map_or(true, |v| v != "1")
}

/// Build a wire protocol error. Every decode failure funnels through here so
/// the message is greppable (`wire:`) and the variant is uniform.
fn werr(msg: impl std::fmt::Display) -> PrismaError {
    PrismaError::Execution(format!("wire: {msg}"))
}

// ---------------------------------------------------------------------------
// primitives: varints, zigzag, bitpacking, checksum
// ---------------------------------------------------------------------------

/// FNV-1a over `bytes` — the frame checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a [`std::hash::Hasher`] for the dictionary map on the string
/// encode path — the keys are short strings hashed once per value, where
/// the default SipHash is measurable overhead.
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Default, Clone, Copy)]
struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;
    fn build_hasher(&self) -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Append a LEB128 varint.
fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded size of a LEB128 varint, for the encoder-selection cost model.
fn varint_len(v: u64) -> usize {
    ((64 - v.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Bits needed to represent `v` (0 for 0).
#[inline]
fn bits_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Pack `width`-bit values LSB-first into `out`.
fn pack_bits(values: impl Iterator<Item = u64>, width: u32, out: &mut Vec<u8>) {
    debug_assert!(width <= 64);
    if width == 0 {
        return;
    }
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    for v in values {
        acc |= u128::from(v) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push(acc as u8);
    }
}

/// Pack a `bool` slice one bit per value, LSB-first.
fn pack_bools(values: impl Iterator<Item = bool>, out: &mut Vec<u8>) {
    pack_bits(values.map(u64::from), 1, out);
}

// ---------------------------------------------------------------------------
// bounds-checked reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over an untrusted byte slice. Every read returns
/// a protocol error on underflow — the decoder never panics on a truncated
/// or mangled frame.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(werr(format!(
                "truncated frame: need {n} bytes for {what}, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16_le(&mut self, what: &str) -> Result<u16> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_le(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn varint(&mut self, what: &str) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(what)?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(werr(format!("varint overflow in {what}")));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// Unpack `width`-bit values from a cursor, LSB-first.
struct BitReader<'c, 'a> {
    cur: &'c mut Cursor<'a>,
    acc: u128,
    acc_bits: u32,
}

impl<'c, 'a> BitReader<'c, 'a> {
    fn new(cur: &'c mut Cursor<'a>) -> BitReader<'c, 'a> {
        BitReader {
            cur,
            acc: 0,
            acc_bits: 0,
        }
    }

    fn read(&mut self, width: u32, what: &str) -> Result<u64> {
        debug_assert!(width <= 64);
        if width == 0 {
            return Ok(0);
        }
        while self.acc_bits < width {
            let byte = self.cur.u8(what)?;
            self.acc |= u128::from(byte) << self.acc_bits;
            self.acc_bits += 8;
        }
        let v = (self.acc & ((1u128 << width) - 1)) as u64;
        self.acc >>= width;
        self.acc_bits -= width;
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// encoder selection (pure, exported for the heuristic property tests)
// ---------------------------------------------------------------------------

/// Integer block encodings the cost model chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntCodec {
    /// 8 bytes per value.
    Raw,
    /// Zigzag-varint anchor + bitpacked zigzag deltas.
    Delta,
}

/// String block encodings the cost model chooses between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrCodec {
    /// Varint length + UTF-8 bytes per value.
    Raw,
    /// First-occurrence dictionary + bitpacked indices.
    Dict,
    /// Dictionary + run-length encoded (index, run) pairs.
    DictRle,
}

/// Body size of the delta encoding for `vals`, or `None` when empty.
fn int_delta_cost(vals: &[i64]) -> Option<usize> {
    let first = *vals.first()?;
    let width = delta_width(vals);
    Some(varint_len(zigzag(first)) + 1 + ((vals.len() - 1) * width as usize).div_ceil(8))
}

/// Bit width of the widest zigzag delta between consecutive values.
fn delta_width(vals: &[i64]) -> u32 {
    vals.windows(2)
        .map(|w| bits_for(zigzag(w[1].wrapping_sub(w[0]))))
        .max()
        .unwrap_or(0)
}

/// Choose the cheaper integer encoding for the non-null values `vals` by
/// comparing exact encoded body sizes. Sequential and clustered data bitpacks
/// to a fraction of raw; adversarial (alternating extreme) data falls back to
/// raw 8-byte values.
pub fn choose_int_codec(vals: &[i64]) -> IntCodec {
    let raw = vals.len() * 8;
    match int_delta_cost(vals) {
        Some(delta) if delta < raw => IntCodec::Delta,
        _ => IntCodec::Raw,
    }
}

/// A first-occurrence dictionary over string values plus per-value indices.
struct StrDictPlan<'a> {
    dict: Vec<&'a str>,
    indices: Vec<u32>,
}

fn str_dict_plan<'a>(vals: &[&'a str]) -> StrDictPlan<'a> {
    let mut dict: Vec<&'a str> = Vec::new();
    let mut seen: HashMap<&'a str, u32, FnvBuild> =
        HashMap::with_capacity_and_hasher(vals.len().min(1024), FnvBuild);
    let mut indices = Vec::with_capacity(vals.len());
    for &v in vals {
        let idx = *seen.entry(v).or_insert_with(|| {
            dict.push(v);
            (dict.len() - 1) as u32
        });
        indices.push(idx);
    }
    StrDictPlan { dict, indices }
}

/// Bit width for dictionary indices over a `d`-entry dictionary.
fn dict_index_width(d: usize) -> u32 {
    if d <= 1 {
        0
    } else {
        bits_for((d - 1) as u64)
    }
}

/// Encoded body sizes for each string codec: `(raw, dict, dict_rle)`.
fn str_costs(vals: &[&str], plan: &StrDictPlan<'_>) -> (usize, usize, usize) {
    let raw: usize = vals.iter().map(|s| varint_len(s.len() as u64) + s.len()).sum();
    let dict_base: usize = varint_len(plan.dict.len() as u64)
        + plan
            .dict
            .iter()
            .map(|s| varint_len(s.len() as u64) + s.len())
            .sum::<usize>();
    let width = dict_index_width(plan.dict.len());
    let dict = dict_base + 1 + (plan.indices.len() * width as usize).div_ceil(8);
    let mut runs = 0usize;
    let mut rle_body = 0usize;
    let mut i = 0;
    while i < plan.indices.len() {
        let idx = plan.indices[i];
        let mut run = 1usize;
        while i + run < plan.indices.len() && plan.indices[i + run] == idx {
            run += 1;
        }
        runs += 1;
        rle_body += varint_len(u64::from(idx)) + varint_len(run as u64);
        i += run;
    }
    let rle = dict_base + varint_len(runs as u64) + rle_body;
    (raw, dict, rle)
}

/// Choose the cheapest string encoding for the non-null values `vals` by
/// comparing exact encoded body sizes: high-cardinality data stays raw,
/// low-cardinality data dictionary-encodes, and sorted/clustered
/// low-cardinality data run-length encodes on top of the dictionary.
pub fn choose_str_codec(vals: &[&str]) -> StrCodec {
    choose_str_codec_with(vals, &str_dict_plan(vals))
}

/// [`choose_str_codec`] against an already-built dictionary plan, so the
/// encoder prices and emits from one plan instead of building it twice.
fn choose_str_codec_with(vals: &[&str], plan: &StrDictPlan<'_>) -> StrCodec {
    let (raw, dict, rle) = str_costs(vals, plan);
    if raw <= dict && raw <= rle {
        StrCodec::Raw
    } else if rle < dict {
        StrCodec::DictRle
    } else {
        StrCodec::Dict
    }
}

// ---------------------------------------------------------------------------
// encode
// ---------------------------------------------------------------------------

/// Split a typed column into its non-null value positions. Returns `None`
/// when the column has no mask (all rows live).
fn live_mask(nulls: Option<&Vec<bool>>) -> Option<&Vec<bool>> {
    nulls.filter(|m| m.iter().any(|&b| b))
}

/// Write the `has_nulls` flag + null bitmap for a typed column payload.
fn put_null_section(nulls: Option<&Vec<bool>>, out: &mut Vec<u8>) {
    match live_mask(nulls) {
        None => out.push(0),
        Some(mask) => {
            out.push(1);
            pack_bools(mask.iter().copied(), out);
        }
    }
}

/// Values of `data` at non-null slots, in row order.
fn non_null<'a, T>(data: &'a [T], nulls: Option<&Vec<bool>>) -> Vec<&'a T> {
    match live_mask(nulls) {
        None => data.iter().collect(),
        Some(mask) => data
            .iter()
            .zip(mask)
            .filter(|(_, &null)| !null)
            .map(|(v, _)| v)
            .collect(),
    }
}

fn encode_int(data: &[i64], nulls: Option<&Vec<bool>>, out: &mut Vec<u8>) -> u8 {
    put_null_section(nulls, out);
    let vals: Vec<i64> = non_null(data, nulls).into_iter().copied().collect();
    put_varint(vals.len() as u64, out);
    match choose_int_codec(&vals) {
        IntCodec::Raw => {
            for v in &vals {
                out.extend_from_slice(&v.to_le_bytes());
            }
            TAG_INT_RAW
        }
        IntCodec::Delta => {
            let first = vals[0];
            put_varint(zigzag(first), out);
            let width = delta_width(&vals);
            out.push(width as u8);
            pack_bits(
                vals.windows(2).map(|w| zigzag(w[1].wrapping_sub(w[0]))),
                width,
                out,
            );
            TAG_INT_DELTA
        }
    }
}

fn encode_double(data: &[f64], nulls: Option<&Vec<bool>>, out: &mut Vec<u8>) -> u8 {
    put_null_section(nulls, out);
    let vals = non_null(data, nulls);
    put_varint(vals.len() as u64, out);
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    TAG_DOUBLE_RAW
}

fn encode_bool(data: &[bool], nulls: Option<&Vec<bool>>, out: &mut Vec<u8>) -> u8 {
    put_null_section(nulls, out);
    let vals = non_null(data, nulls);
    put_varint(vals.len() as u64, out);
    pack_bools(vals.into_iter().copied(), out);
    TAG_BOOL_BITMAP
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_varint(s.len() as u64, out);
    out.extend_from_slice(s.as_bytes());
}

fn encode_str(data: &[String], nulls: Option<&Vec<bool>>, out: &mut Vec<u8>) -> u8 {
    put_null_section(nulls, out);
    let vals: Vec<&str> = non_null(data, nulls).into_iter().map(String::as_str).collect();
    put_varint(vals.len() as u64, out);
    let plan = str_dict_plan(&vals);
    let codec = choose_str_codec_with(&vals, &plan);
    match codec {
        StrCodec::Raw => {
            for s in &vals {
                put_str(s, out);
            }
            TAG_STR_RAW
        }
        StrCodec::Dict | StrCodec::DictRle => {
            put_varint(plan.dict.len() as u64, out);
            for s in &plan.dict {
                put_str(s, out);
            }
            if codec == StrCodec::Dict {
                let width = dict_index_width(plan.dict.len());
                out.push(width as u8);
                pack_bits(plan.indices.iter().map(|&i| u64::from(i)), width, out);
                TAG_STR_DICT
            } else {
                let mut runs: Vec<(u32, u64)> = Vec::new();
                for &idx in &plan.indices {
                    match runs.last_mut() {
                        Some((last, run)) if *last == idx => *run += 1,
                        _ => runs.push((idx, 1)),
                    }
                }
                put_varint(runs.len() as u64, out);
                for (idx, run) in runs {
                    put_varint(u64::from(idx), out);
                    put_varint(run, out);
                }
                TAG_STR_DICT_RLE
            }
        }
    }
}

fn encode_mixed(vals: &[Value], out: &mut Vec<u8>) -> u8 {
    for v in vals {
        match v {
            Value::Null => out.push(VTAG_NULL),
            Value::Int(i) => {
                out.push(VTAG_INT);
                put_varint(zigzag(*i), out);
            }
            Value::Double(d) => {
                out.push(VTAG_DOUBLE);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Bool(b) => {
                out.push(VTAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Str(s) => {
                out.push(VTAG_STR);
                put_str(s, out);
            }
        }
    }
    TAG_MIXED
}

// ---------------------------------------------------------------------------
// decode
// ---------------------------------------------------------------------------

/// Read the `has_nulls` flag, bitmap and redundant non-null count; returns a
/// `rows`-long mask (or `None`) plus the count of non-null values the body
/// must supply. The declared count must equal `rows − popcount(bitmap)` — the
/// cross-check that makes a header/body row-count mismatch a hard error.
fn read_null_section(cur: &mut Cursor<'_>, rows: usize, col: usize) -> Result<(Option<Vec<bool>>, usize)> {
    let (mask, k) = match cur.u8("null flag")? {
        0 => (None, rows),
        1 => {
            let bytes = cur.take(rows.div_ceil(8), "null bitmap")?;
            let mask: Vec<bool> = (0..rows).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect();
            // Padding bits past `rows` must be zero: a set padding bit means
            // the frame was built against a different row count.
            for (i, &b) in bytes.iter().enumerate() {
                let used = (rows - i * 8).min(8);
                if used < 8 && b >> used != 0 {
                    return Err(werr(format!("column {col}: null bitmap overflows declared row count")));
                }
            }
            let nulls = mask.iter().filter(|&&b| b).count();
            if nulls == 0 {
                (None, rows)
            } else {
                (Some(mask), rows - nulls)
            }
        }
        f => return Err(werr(format!("column {col}: bad null flag {f}"))),
    };
    let declared = cur.varint("non-null count")? as usize;
    if declared != k {
        return Err(werr(format!(
            "column {col}: body declares {declared} values but header row count implies {k} (row-count mismatch)"
        )));
    }
    Ok((mask, k))
}

/// Scatter `vals` into the non-null slots of a `rows`-long data vector,
/// placing `T::default()` under nulls — the same placeholder convention the
/// column builders use, so decode is bit-identical to the canonical column.
fn scatter<T: Default + Clone>(rows: usize, mask: Option<&Vec<bool>>, vals: Vec<T>) -> Vec<T> {
    match mask {
        None => vals,
        Some(mask) => {
            let mut it = vals.into_iter();
            (0..rows)
                .map(|i| if mask[i] { T::default() } else { it.next().expect("scatter count") })
                .collect()
        }
    }
}

fn decode_str_dict(cur: &mut Cursor<'_>, col: usize) -> Result<Vec<String>> {
    let d = cur.varint("dict size")? as usize;
    let mut dict = Vec::with_capacity(d.min(4096));
    for _ in 0..d {
        let len = cur.varint("dict entry length")? as usize;
        let bytes = cur.take(len, "dict entry")?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| werr(format!("column {col}: dictionary entry is not UTF-8")))?;
        dict.push(s.to_owned());
    }
    Ok(dict)
}

/// Decode one column payload (already length-delimited) into a [`ColumnVec`].
fn decode_column(tag: u8, payload: &[u8], rows: usize, col: usize) -> Result<ColumnVec> {
    let cur = &mut Cursor::new(payload);
    let decoded = match tag {
        TAG_INT_RAW => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let mut vals = Vec::with_capacity(k);
            for _ in 0..k {
                vals.push(cur.u64_le("int value")? as i64);
            }
            ColumnVec::Int {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_INT_DELTA => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let mut vals = Vec::with_capacity(k);
            if k > 0 {
                let mut v = unzigzag(cur.varint("delta anchor")?);
                vals.push(v);
                let width = u32::from(cur.u8("delta width")?);
                if width > 64 {
                    return Err(werr(format!("column {col}: delta bit width {width} > 64")));
                }
                let mut bits = BitReader::new(cur);
                for _ in 1..k {
                    v = v.wrapping_add(unzigzag(bits.read(width, "delta")?));
                    vals.push(v);
                }
            }
            ColumnVec::Int {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_DOUBLE_RAW => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let mut vals = Vec::with_capacity(k);
            for _ in 0..k {
                vals.push(f64::from_bits(cur.u64_le("double value")?));
            }
            ColumnVec::Double {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_BOOL_BITMAP => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let mut bits = BitReader::new(cur);
            let mut vals = Vec::with_capacity(k);
            for _ in 0..k {
                vals.push(bits.read(1, "bool bitmap")? == 1);
            }
            ColumnVec::Bool {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_STR_RAW => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let mut vals = Vec::with_capacity(k);
            for _ in 0..k {
                let len = cur.varint("string length")? as usize;
                let bytes = cur.take(len, "string payload")?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| werr(format!("column {col}: string is not UTF-8")))?;
                vals.push(s.to_owned());
            }
            ColumnVec::Str {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_STR_DICT => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let dict = decode_str_dict(cur, col)?;
            if k > 0 && dict.is_empty() {
                return Err(werr(format!("column {col}: empty dictionary for {k} values")));
            }
            let width = u32::from(cur.u8("index width")?);
            if width > 32 {
                return Err(werr(format!("column {col}: index bit width {width} > 32")));
            }
            let mut bits = BitReader::new(cur);
            let mut vals = Vec::with_capacity(k);
            for _ in 0..k {
                let idx = bits.read(width, "dict index")? as usize;
                let s = dict.get(idx).ok_or_else(|| {
                    werr(format!(
                        "column {col}: dictionary index {idx} out of range ({} entries)",
                        dict.len()
                    ))
                })?;
                vals.push(s.clone());
            }
            ColumnVec::Str {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_STR_DICT_RLE => {
            let (mask, k) = read_null_section(cur, rows, col)?;
            let dict = decode_str_dict(cur, col)?;
            let runs = cur.varint("run count")? as usize;
            let mut vals = Vec::with_capacity(k);
            for _ in 0..runs {
                let idx = cur.varint("run index")? as usize;
                let run = cur.varint("run length")? as usize;
                let s = dict.get(idx).ok_or_else(|| {
                    werr(format!(
                        "column {col}: dictionary index {idx} out of range ({} entries)",
                        dict.len()
                    ))
                })?;
                if vals.len() + run > k {
                    return Err(werr(format!(
                        "column {col}: RLE runs exceed declared {k} values"
                    )));
                }
                vals.extend(std::iter::repeat_with(|| s.clone()).take(run));
            }
            if vals.len() != k {
                return Err(werr(format!(
                    "column {col}: RLE runs cover {} of {k} declared values",
                    vals.len()
                )));
            }
            ColumnVec::Str {
                data: scatter(rows, mask.as_ref(), vals),
                nulls: mask,
            }
        }
        TAG_MIXED => {
            let mut vals = Vec::with_capacity(rows);
            for _ in 0..rows {
                let v = match cur.u8("value tag")? {
                    VTAG_NULL => Value::Null,
                    VTAG_INT => Value::Int(unzigzag(cur.varint("int value")?)),
                    VTAG_DOUBLE => Value::Double(f64::from_bits(cur.u64_le("double value")?)),
                    VTAG_BOOL => match cur.u8("bool value")? {
                        0 => Value::Bool(false),
                        1 => Value::Bool(true),
                        b => return Err(werr(format!("column {col}: bad bool byte {b}"))),
                    },
                    VTAG_STR => {
                        let len = cur.varint("string length")? as usize;
                        let bytes = cur.take(len, "string payload")?;
                        let s = std::str::from_utf8(bytes)
                            .map_err(|_| werr(format!("column {col}: string is not UTF-8")))?;
                        Value::Str(s.to_owned())
                    }
                    t => return Err(werr(format!("column {col}: bad value tag {t}"))),
                };
                vals.push(v);
            }
            ColumnVec::Mixed(vals)
        }
        t => return Err(werr(format!("column {col}: unknown encoding tag {t}"))),
    };
    if cur.remaining() != 0 {
        return Err(werr(format!(
            "column {col}: {} trailing bytes after payload (declared row count mismatch?)",
            cur.remaining()
        )));
    }
    Ok(decoded)
}

// ---------------------------------------------------------------------------
// BlockChunk
// ---------------------------------------------------------------------------

/// One encoded batch: a checksummed frame of per-column typed blocks.
///
/// This is the unit the streaming protocol ships — `BatchChunk` and
/// `ShuffleChunk` payloads carry a `BlockChunk` instead of a row vector when
/// the columnar wire is on. The row count is recorded in the frame header so
/// stream accounting (rows advertised vs. released) works without decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockChunk {
    rows: u32,
    bytes: Vec<u8>,
}

impl BlockChunk {
    /// Encode `cols` (each exactly `rows` long; selections already applied)
    /// into one frame. `Cow::Borrowed` avoids copying pre-gathered columns.
    pub fn from_columns<'a>(
        rows: usize,
        cols: impl IntoIterator<Item = Cow<'a, ColumnVec>>,
    ) -> BlockChunk {
        let rows32 = u32::try_from(rows).expect("batch row count fits in u32");
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..4].copy_from_slice(MAGIC);
        bytes[4..8].copy_from_slice(&rows32.to_le_bytes());
        let mut ncols: u16 = 0;
        for col in cols {
            let col = col.as_ref();
            debug_assert_eq!(col.len(), rows, "column length != declared rows");
            let frame_at = bytes.len();
            bytes.push(0); // tag, patched below
            bytes.extend_from_slice(&[0u8; 4]); // payload length, patched below
            let body_at = bytes.len();
            let tag = match col {
                ColumnVec::Int { data, nulls } => encode_int(data, nulls.as_ref(), &mut bytes),
                ColumnVec::Double { data, nulls } => encode_double(data, nulls.as_ref(), &mut bytes),
                ColumnVec::Bool { data, nulls } => encode_bool(data, nulls.as_ref(), &mut bytes),
                ColumnVec::Str { data, nulls } => encode_str(data, nulls.as_ref(), &mut bytes),
                ColumnVec::Mixed(vals) => encode_mixed(vals, &mut bytes),
            };
            let len = u32::try_from(bytes.len() - body_at).expect("column payload fits in u32");
            bytes[frame_at] = tag;
            bytes[frame_at + 1..frame_at + 5].copy_from_slice(&len.to_le_bytes());
            ncols += 1;
        }
        bytes[8..10].copy_from_slice(&ncols.to_le_bytes());
        // The checksum covers the column frames and, folded in, the header
        // fields before it — so a flipped row count is caught too.
        let sum = fnv1a(&bytes[HEADER_LEN..]) ^ fnv1a(&bytes[..10]);
        bytes[10..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
        BlockChunk { rows: rows32, bytes }
    }

    /// Number of rows the frame declares (trusted on the send side; the
    /// receive side re-derives it during [`BlockChunk::decode`]).
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Size of the encoded frame on the metered interconnect, in bits.
    pub fn wire_bits(&self) -> u64 {
        self.bytes.len() as u64 * 8
    }

    /// The raw frame bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Deterministically mangle the frame in place — the fault injector's
    /// model of interconnect bit damage. Even seeds flip one payload byte,
    /// odd seeds truncate the tail; either way [`BlockChunk::decode`] must
    /// reject the frame with a protocol error.
    pub fn corrupt_in_place(&mut self, seed: u64) {
        if self.bytes.len() <= HEADER_LEN {
            self.bytes.push(0xff); // trailing garbage also fails the checksum
            return;
        }
        if seed.is_multiple_of(2) {
            let span = self.bytes.len() - HEADER_LEN;
            let at = HEADER_LEN + (seed as usize) % span;
            self.bytes[at] ^= 0xff;
        } else {
            let keep = HEADER_LEN + (self.bytes.len() - HEADER_LEN) / 2;
            self.bytes.truncate(keep);
        }
    }

    /// Decode the frame back into one [`ColumnVec`] per attribute.
    ///
    /// Every failure mode — truncation, checksum mismatch, bad lengths,
    /// dictionary indices out of range, row-count mismatches, non-UTF-8
    /// strings — returns a `wire:` protocol error; this function never
    /// panics on untrusted bytes.
    pub fn decode(&self) -> Result<Vec<ColumnVec>> {
        let cur = &mut Cursor::new(&self.bytes);
        let magic = cur.take(4, "magic")?;
        if magic != MAGIC {
            return Err(werr("bad frame magic"));
        }
        let rows = cur.u32_le("row count")? as usize;
        let ncols = cur.u16_le("column count")? as usize;
        let declared_sum = cur.u64_le("checksum")?;
        let actual = fnv1a(&self.bytes[HEADER_LEN..]) ^ fnv1a(&self.bytes[..10]);
        if declared_sum != actual {
            return Err(werr("frame checksum mismatch (corrupt block)"));
        }
        let mut cols = Vec::with_capacity(ncols);
        for col in 0..ncols {
            let tag = cur.u8("column tag")?;
            let len = cur.u32_le("column payload length")? as usize;
            let payload = cur.take(len, "column payload")?;
            cols.push(decode_column(tag, payload, rows, col)?);
        }
        if cur.remaining() != 0 {
            return Err(werr(format!("{} trailing bytes after last column", cur.remaining())));
        }
        Ok(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(col: &ColumnVec) -> ColumnVec {
        let chunk = BlockChunk::from_columns(col.len(), [Cow::Borrowed(col)]);
        let mut cols = chunk.decode().expect("decode");
        assert_eq!(cols.len(), 1);
        cols.pop().unwrap()
    }

    /// Structural equality that treats `f64` bit patterns (NaN, −0.0)
    /// exactly — the derived `PartialEq` on `Vec<f64>` makes NaN ≠ NaN.
    fn cols_bit_eq(a: &ColumnVec, b: &ColumnVec) -> bool {
        fn v_eq(a: &Value, b: &Value) -> bool {
            match (a, b) {
                (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
                _ => a == b,
            }
        }
        match (a, b) {
            (
                ColumnVec::Double { data: da, nulls: na },
                ColumnVec::Double { data: db, nulls: nb },
            ) => {
                na == nb
                    && da.len() == db.len()
                    && da.iter().zip(db).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnVec::Mixed(va), ColumnVec::Mixed(vb)) => {
                va.len() == vb.len() && va.iter().zip(vb).all(|(x, y)| v_eq(x, y))
            }
            _ => a == b,
        }
    }

    fn vals(vs: &[Value]) -> ColumnVec {
        ColumnVec::from_values(vs.iter())
    }

    #[test]
    fn int_sequential_roundtrips_via_delta() {
        let col = ColumnVec::Int {
            data: (0..1000).collect(),
            nulls: None,
        };
        let chunk = BlockChunk::from_columns(1000, [Cow::Borrowed(&col)]);
        // Sequential data must bitpack far below the 8-byte raw wire.
        assert!(chunk.wire_bits() < 1000 * 64 / 4, "bits={}", chunk.wire_bits());
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn int_extremes_roundtrip() {
        let col = ColumnVec::Int {
            data: vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MAX],
            nulls: None,
        };
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn int_with_nulls_roundtrips() {
        let col = vals(&[
            Value::Int(5),
            Value::Null,
            Value::Int(-7),
            Value::Null,
            Value::Int(42),
        ]);
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn double_nan_and_negative_zero_are_bit_exact() {
        let col = ColumnVec::Double {
            data: vec![f64::NAN, -0.0, 0.0, f64::INFINITY, f64::NEG_INFINITY, 1.5e-300],
            nulls: None,
        };
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn bool_with_nulls_roundtrips() {
        let col = vals(&[
            Value::Bool(true),
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Null,
        ]);
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn str_low_cardinality_dictionary_compresses() {
        let data: Vec<String> = (0..500).map(|i| format!("tag-{}", i % 4)).collect();
        let col = ColumnVec::Str { data, nulls: None };
        let chunk = BlockChunk::from_columns(500, [Cow::Borrowed(&col)]);
        let raw_bytes: usize = 500 * 6;
        assert!(
            (chunk.wire_bits() / 8) < raw_bytes as u64 / 4,
            "dict wire bytes {} not < raw {}/4",
            chunk.wire_bits() / 8,
            raw_bytes
        );
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn str_sorted_low_cardinality_uses_rle() {
        let mut data: Vec<String> = Vec::new();
        for t in 0..3 {
            data.extend(std::iter::repeat_with(|| format!("grp{t}")).take(200));
        }
        let refs: Vec<&str> = data.iter().map(String::as_str).collect();
        assert_eq!(choose_str_codec(&refs), StrCodec::DictRle);
        let col = ColumnVec::Str { data, nulls: None };
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn str_high_cardinality_stays_raw() {
        let data: Vec<String> = (0..200).map(|i| format!("unique-value-{i:06}")).collect();
        let refs: Vec<&str> = data.iter().map(String::as_str).collect();
        assert_eq!(choose_str_codec(&refs), StrCodec::Raw);
        let col = ColumnVec::Str { data, nulls: None };
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn str_unicode_and_empty_strings_roundtrip() {
        let col = vals(&[
            Value::Str(String::new()),
            Value::Str("héllo wörld ≠ ascii".into()),
            Value::Null,
            Value::Str("日本語".into()),
        ]);
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn mixed_fallback_roundtrips() {
        let col = vals(&[
            Value::Int(1),
            Value::Str("two".into()),
            Value::Double(f64::NAN),
            Value::Bool(true),
            Value::Null,
        ]);
        assert!(matches!(col, ColumnVec::Mixed(_)));
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn all_null_column_roundtrips() {
        let col = vals(&[Value::Null, Value::Null, Value::Null]);
        assert!(cols_bit_eq(&roundtrip(&col), &col));
    }

    #[test]
    fn empty_and_single_value_columns_roundtrip() {
        for col in [
            ColumnVec::Int { data: vec![], nulls: None },
            ColumnVec::Str { data: vec![], nulls: None },
            ColumnVec::Mixed(vec![]),
            ColumnVec::Int { data: vec![-9], nulls: None },
            ColumnVec::Str { data: vec!["only".into()], nulls: None },
            ColumnVec::Double { data: vec![f64::NAN], nulls: None },
        ] {
            assert!(cols_bit_eq(&roundtrip(&col), &col), "col={col:?}");
        }
    }

    #[test]
    fn multi_column_frame_roundtrips() {
        let a = ColumnVec::Int { data: vec![1, 2, 3], nulls: None };
        let b = vals(&[Value::Str("x".into()), Value::Null, Value::Str("x".into())]);
        let chunk =
            BlockChunk::from_columns(3, [Cow::Borrowed(&a), Cow::Borrowed(&b)]);
        assert_eq!(chunk.rows(), 3);
        let cols = chunk.decode().unwrap();
        assert!(cols_bit_eq(&cols[0], &a));
        assert!(cols_bit_eq(&cols[1], &b));
    }

    #[test]
    fn int_codec_heuristic_picks_delta_for_clustered_raw_for_adversarial() {
        let clustered: Vec<i64> = (0..100).map(|i| 1_000_000 + i).collect();
        assert_eq!(choose_int_codec(&clustered), IntCodec::Delta);
        // Alternating extremes wrap to tiny zigzag deltas, so even that
        // compresses; raw only wins when every delta needs the full 64 bits
        // AND the anchor costs a 10-byte varint.
        let alternating: Vec<i64> = (0..100)
            .map(|i| if i % 2 == 0 { i64::MIN } else { i64::MAX })
            .collect();
        assert_eq!(choose_int_codec(&alternating), IntCodec::Delta);
        let adversarial: Vec<i64> = (0..100)
            .map(|i| if i % 2 == 0 { i64::MIN } else { 0 })
            .collect();
        assert_eq!(choose_int_codec(&adversarial), IntCodec::Raw);
    }

    // ---- corrupt-frame decoding: protocol errors, never panics ----

    fn expect_wire_err(r: Result<Vec<ColumnVec>>) {
        match r {
            Err(PrismaError::Execution(m)) => assert!(m.starts_with("wire:"), "msg: {m}"),
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    fn sample_chunk() -> BlockChunk {
        let a = ColumnVec::Int { data: (0..64).collect(), nulls: None };
        let data: Vec<String> = (0..64).map(|i| format!("s{}", i % 3)).collect();
        let b = ColumnVec::Str { data, nulls: None };
        BlockChunk::from_columns(64, [Cow::Borrowed(&a), Cow::Borrowed(&b)])
    }

    #[test]
    fn truncated_frames_error_at_every_length() {
        let chunk = sample_chunk();
        for keep in 0..chunk.as_bytes().len() {
            let cut = BlockChunk { rows: chunk.rows, bytes: chunk.bytes[..keep].to_vec() };
            expect_wire_err(cut.decode());
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let chunk = sample_chunk();
        for at in 0..chunk.bytes.len() {
            let mut bad = chunk.clone();
            bad.bytes[at] ^= 0x01;
            expect_wire_err(bad.decode());
        }
    }

    #[test]
    fn corrupt_in_place_is_always_detected() {
        for seed in 0..32u64 {
            let mut chunk = sample_chunk();
            chunk.corrupt_in_place(seed);
            expect_wire_err(chunk.decode());
        }
    }

    /// Rebuild the checksum of a hand-mangled frame so the structural
    /// validators (not the checksum) are what reject it.
    fn reseal(bytes: &mut [u8]) {
        let sum = fnv1a(&bytes[HEADER_LEN..]) ^ fnv1a(&bytes[..10]);
        bytes[10..HEADER_LEN].copy_from_slice(&sum.to_le_bytes());
    }

    #[test]
    fn declared_row_count_mismatch_is_rejected() {
        let col = ColumnVec::Int { data: vec![1, 2, 3, 4], nulls: None };
        let chunk = BlockChunk::from_columns(4, [Cow::Borrowed(&col)]);
        for rows in [0u32, 2, 5, 1000] {
            let mut bad = chunk.clone();
            bad.bytes[4..8].copy_from_slice(&rows.to_le_bytes());
            reseal(&mut bad.bytes);
            expect_wire_err(bad.decode());
        }
    }

    #[test]
    fn dictionary_index_out_of_range_is_rejected() {
        // Hand-build a StrDictRle column whose run points past the dictionary.
        let mut payload = vec![0u8]; // has_nulls = 0
        put_varint(2, &mut payload); // k = 2 non-null values
        put_varint(1, &mut payload); // dict of 1 entry
        put_str("a", &mut payload);
        put_varint(1, &mut payload); // one run
        put_varint(7, &mut payload); // index 7 — out of range
        put_varint(2, &mut payload); // run length 2
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[..4].copy_from_slice(MAGIC);
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        bytes[8..10].copy_from_slice(&1u16.to_le_bytes());
        bytes.push(TAG_STR_DICT_RLE);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        reseal(&mut bytes);
        let bad = BlockChunk { rows: 2, bytes };
        expect_wire_err(bad.decode());
    }

    #[test]
    fn bad_column_length_is_rejected() {
        let chunk = sample_chunk();
        // Grow the first column's declared payload length so it swallows the
        // second column's frame header.
        let mut bad = chunk.clone();
        let len = u32::from_le_bytes(bad.bytes[HEADER_LEN + 1..HEADER_LEN + 5].try_into().unwrap());
        bad.bytes[HEADER_LEN + 1..HEADER_LEN + 5].copy_from_slice(&(len + 3).to_le_bytes());
        reseal(&mut bad.bytes);
        expect_wire_err(bad.decode());
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let chunk = sample_chunk();
        let mut bad = chunk.clone();
        bad.bytes[HEADER_LEN] = 99; // column tag
        reseal(&mut bad.bytes);
        expect_wire_err(bad.decode());
        let mut bad = chunk.clone();
        bad.bytes[..4].copy_from_slice(b"NOPE");
        reseal(&mut bad.bytes);
        expect_wire_err(bad.decode());
    }
}
