//! Per-fragment statistics: the summaries a One-Fragment Manager computes
//! **where the data lives** and ships to the Global Data Handler's data
//! dictionary (PRISMA's one-fragment-one-manager design makes exact
//! per-fragment statistics cheap — the fragment is main-memory resident
//! and every mutation already passes through its manager).
//!
//! The types here are deliberately low in the crate graph: the OFM layer
//! *produces* [`FragmentStatistics`], the GDH dictionary *caches* them per
//! `(relation, fragment)` with a staleness epoch, and the optimizer
//! *consumes* them — merged into table-level summaries for cardinality
//! estimation and raw for skew-aware shuffle placement.

use crate::value::Value;

/// Default bucket budget for equi-depth histograms (per column).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// How many most-common values a column summary carries. Heavy hitters
/// drive skew detection: the optimizer maps each one to its shuffle
/// bucket to estimate per-bucket weight.
pub const MOST_COMMON_VALUES: usize = 16;

/// One equi-depth bucket: the rows whose column value `v` satisfies
/// `lo <= v <= hi`. Every distinct value belongs to exactly one bucket,
/// so a heavy hitter shows up as a (near-)single-value bucket carrying
/// far more than the equi-depth target.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramBucket {
    /// Smallest value in the bucket.
    pub lo: Value,
    /// Largest value in the bucket (inclusive).
    pub hi: Value,
    /// Non-NULL rows in the bucket.
    pub rows: u64,
    /// Distinct values in the bucket (≥ 1).
    pub distinct: u64,
}

/// An equi-depth histogram over one column's non-NULL values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Buckets in ascending value order.
    pub buckets: Vec<HistogramBucket>,
}

impl Histogram {
    /// Build an equi-depth histogram from `(value, count)` pairs in
    /// ascending value order (e.g. a `BTreeMap` iteration). Each distinct
    /// value lands in exactly one bucket; buckets close once they reach
    /// the depth target `total / max_buckets`. Returns `None` for an
    /// empty input.
    pub fn equi_depth<'a>(
        sorted: impl IntoIterator<Item = (&'a Value, &'a u64)>,
        max_buckets: usize,
    ) -> Option<Histogram> {
        let pairs: Vec<(&Value, u64)> = sorted.into_iter().map(|(v, c)| (v, *c)).collect();
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return None;
        }
        let target = total.div_ceil(max_buckets.max(1) as u64);
        let mut buckets = Vec::new();
        let mut cur: Option<HistogramBucket> = None;
        for (v, c) in pairs {
            match cur.as_mut() {
                // A value carrying a whole bucket's worth of rows gets
                // its own bucket — heavy hitters must not hide behind
                // their neighbours (their isolation is what makes skew
                // visible to the planner).
                Some(b) if b.rows < target && c < target => {
                    b.hi = v.clone();
                    b.rows += c;
                    b.distinct += 1;
                }
                _ => {
                    if let Some(b) = cur.take() {
                        buckets.push(b);
                    }
                    cur = Some(HistogramBucket {
                        lo: v.clone(),
                        hi: v.clone(),
                        rows: c,
                        distinct: 1,
                    });
                }
            }
        }
        if let Some(b) = cur {
            buckets.push(b);
        }
        // Heavy-hitter isolation can leave underfull neighbours behind,
        // overshooting the bucket budget; merge the lightest adjacent
        // pairs back until the budget holds (the summary stays bounded —
        // wire cost and memory are charged per bucket).
        while buckets.len() > max_buckets.max(1) {
            let i = (0..buckets.len() - 1)
                .min_by_key(|&i| buckets[i].rows + buckets[i + 1].rows)
                .expect("len > 1");
            let right = buckets.remove(i + 1);
            let left = &mut buckets[i];
            left.hi = right.hi;
            left.rows += right.rows;
            left.distinct += right.distinct;
        }
        Some(Histogram { buckets })
    }

    /// Total non-NULL rows covered.
    pub fn rows(&self) -> u64 {
        self.buckets.iter().map(|b| b.rows).sum()
    }

    /// The heaviest bucket's row count (0 for an empty histogram) — the
    /// estimator's error bound: every selectivity estimate derived from
    /// this histogram is within one bucket's mass of the truth.
    pub fn max_bucket_rows(&self) -> u64 {
        self.buckets.iter().map(|b| b.rows).max().unwrap_or(0)
    }

    /// Estimated fraction of rows with value `< v` (or `<= v` when
    /// `inclusive`). Buckets fully below contribute whole; the bucket
    /// containing `v` contributes a linear interpolation when its bounds
    /// are numeric (half its mass otherwise) — so the estimate is off by
    /// at most the containing bucket's mass.
    pub fn fraction_below(&self, v: &Value, inclusive: bool) -> f64 {
        let total = self.rows();
        if total == 0 {
            return 0.0;
        }
        let mut below = 0.0f64;
        for b in &self.buckets {
            if *v > b.hi || (inclusive && *v == b.hi) {
                below += b.rows as f64;
            } else if *v >= b.lo {
                // `v` falls inside this bucket: interpolate.
                let frac = match (b.lo.as_double(), b.hi.as_double(), v.as_double()) {
                    (Some(lo), Some(hi), Some(x)) if hi > lo => {
                        ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                    }
                    _ => 0.5,
                };
                below += b.rows as f64 * frac;
                break;
            } else {
                break; // buckets are sorted; nothing further contributes
            }
        }
        (below / total as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `column = v`: the containing bucket's
    /// rows spread uniformly over its distinct values. `None` when `v`
    /// lies outside every bucket (selectivity 0 as far as the histogram
    /// knows).
    pub fn selectivity_eq(&self, v: &Value) -> Option<f64> {
        let total = self.rows();
        if total == 0 {
            return None;
        }
        let b = self
            .buckets
            .iter()
            .find(|b| *v >= b.lo && *v <= b.hi)?;
        Some((b.rows as f64 / b.distinct.max(1) as f64) / total as f64)
    }

    /// Merge fragment histograms into one table-level equi-depth
    /// histogram. Each source bucket is re-emitted as a handful of
    /// synthetic `(value, count)` points (exact for single-value buckets,
    /// spread between `lo` and `hi` otherwise), the points are combined
    /// into one ordered multiset, and an equi-depth histogram is rebuilt
    /// over it — an approximation, but one whose bucket masses still
    /// bound the estimation error.
    pub fn merge<'a>(
        parts: impl IntoIterator<Item = &'a Histogram>,
        max_buckets: usize,
    ) -> Option<Histogram> {
        use std::collections::BTreeMap;
        let mut points: BTreeMap<Value, u64> = BTreeMap::new();
        for h in parts {
            for b in &h.buckets {
                if b.distinct <= 1 || b.lo == b.hi {
                    *points.entry(b.lo.clone()).or_default() += b.rows;
                    continue;
                }
                match (b.lo.as_double(), b.hi.as_double()) {
                    (Some(lo), Some(hi)) if hi > lo => {
                        let k = b.distinct.min(4);
                        let share = b.rows / k;
                        let extra = b.rows - share * k;
                        for i in 0..k {
                            let x = lo + (hi - lo) * i as f64 / (k - 1).max(1) as f64;
                            let v = if b.lo.as_int().is_some() && b.hi.as_int().is_some() {
                                Value::Int(x.round() as i64)
                            } else {
                                Value::Double(x)
                            };
                            *points.entry(v).or_default() +=
                                share + if i == 0 { extra } else { 0 };
                        }
                    }
                    _ => {
                        let half = b.rows / 2;
                        *points.entry(b.lo.clone()).or_default() += b.rows - half;
                        *points.entry(b.hi.clone()).or_default() += half;
                    }
                }
            }
        }
        Histogram::equi_depth(points.iter(), max_buckets)
    }
}

/// Per-column summary of one fragment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Distinct non-NULL values.
    pub distinct: u64,
    /// NULL rows.
    pub nulls: u64,
    /// Smallest non-NULL value.
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
    /// Equi-depth histogram over the non-NULL values.
    pub histogram: Option<Histogram>,
    /// The most common values with their counts, heaviest first (at most
    /// [`MOST_COMMON_VALUES`]) — the skew signal.
    pub most_common: Vec<(Value, u64)>,
}

/// Everything one fragment reports about itself: the payload of the
/// GDH's `StatsReport` protocol message.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FragmentStatistics {
    /// Live tuples.
    pub rows: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Per-column summaries, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl FragmentStatistics {
    /// Approximate wire footprint of this report (the ledger charges the
    /// summary, never the data — that is the whole point).
    pub fn wire_bytes(&self) -> usize {
        32 + self
            .columns
            .iter()
            .map(|c| {
                48 + c
                    .histogram
                    .as_ref()
                    .map_or(0, |h| h.buckets.len() * 24)
                    + c.most_common.len() * 16
            })
            .sum::<usize>()
    }
}

/// How trustworthy a relation's cached statistics are, relative to the
/// dictionary's mutation epoch — surfaced in EXPLAIN so every planning
/// decision names the stats that fed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFreshness {
    /// Every fragment reported at the relation's current mutation epoch.
    Fresh,
    /// Statistics exist but predate the latest mutations (or cover only
    /// some fragments).
    Stale,
    /// No statistics were ever collected; estimates run on defaults.
    Absent,
}

impl std::fmt::Display for StatsFreshness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsFreshness::Fresh => f.write_str("fresh"),
            StatsFreshness::Stale => f.write_str("stale"),
            StatsFreshness::Absent => f.write_str("absent"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn hist_of(counts: &[(i64, u64)], buckets: usize) -> Histogram {
        let m: BTreeMap<Value, u64> =
            counts.iter().map(|&(v, c)| (Value::Int(v), c)).collect();
        Histogram::equi_depth(m.iter(), buckets).unwrap()
    }

    #[test]
    fn equi_depth_buckets_balance_uniform_data() {
        let h = hist_of(&(0..64).map(|i| (i, 2)).collect::<Vec<_>>(), 32);
        assert_eq!(h.rows(), 128);
        assert_eq!(h.buckets.len(), 32);
        assert!(h.buckets.iter().all(|b| b.rows == 4 && b.distinct == 2));
    }

    #[test]
    fn heavy_hitter_isolates_into_its_own_bucket() {
        let mut counts: Vec<(i64, u64)> = (0..31).map(|i| (i, 1)).collect();
        counts.push((31, 100));
        let h = hist_of(&counts, 8);
        // The target depth (131/8 ≈ 17) closes the heavy value's bucket
        // right after it; its mass is visible in max_bucket_rows.
        assert!(h.max_bucket_rows() >= 100);
        let eq = h.selectivity_eq(&Value::Int(31)).unwrap();
        assert!(eq > 0.5, "heavy hitter selectivity {eq}");
    }

    #[test]
    fn bucket_budget_holds_under_alternating_heavy_values() {
        // Light/heavy alternation makes naive heavy-hitter isolation
        // emit ~2 buckets per heavy value; the budget must still hold.
        let counts: Vec<(i64, u64)> = (0..64)
            .map(|i| (i, if i % 2 == 0 { 1 } else { 50 }))
            .collect();
        let h = hist_of(&counts, 8);
        assert!(h.buckets.len() <= 8, "{} buckets", h.buckets.len());
        assert_eq!(h.rows(), 32 + 32 * 50);
    }

    #[test]
    fn fraction_below_tracks_truth_within_a_bucket() {
        let counts: Vec<(i64, u64)> = (0..100).map(|i| (i, 1)).collect();
        let h = hist_of(&counts, 10);
        let bound = h.max_bucket_rows() as f64 / h.rows() as f64;
        for v in [0i64, 17, 50, 83, 99] {
            let truth = v as f64 / 100.0; // fraction strictly below v
            let est = h.fraction_below(&Value::Int(v), false);
            assert!(
                (est - truth).abs() <= bound + 1e-9,
                "v={v}: est {est} truth {truth} bound {bound}"
            );
        }
        assert_eq!(h.fraction_below(&Value::Int(-5), false), 0.0);
        assert_eq!(h.fraction_below(&Value::Int(1000), true), 1.0);
    }

    #[test]
    fn eq_selectivity_is_none_outside_range() {
        let h = hist_of(&[(10, 5), (20, 5)], 4);
        assert!(h.selectivity_eq(&Value::Int(99)).is_none());
        let s = h.selectivity_eq(&Value::Int(10)).unwrap();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn merge_preserves_total_mass_and_bounds() {
        let a = hist_of(&(0..50).map(|i| (i, 2)).collect::<Vec<_>>(), 8);
        let b = hist_of(&(25..75).map(|i| (i, 4)).collect::<Vec<_>>(), 8);
        let m = Histogram::merge([&a, &b], HISTOGRAM_BUCKETS).unwrap();
        assert_eq!(m.rows(), a.rows() + b.rows());
        assert!(m.buckets.first().unwrap().lo >= Value::Int(0));
        assert!(m.buckets.last().unwrap().hi <= Value::Int(74));
        // The merged median should sit around 40 (b's mass dominates).
        let mid = m.fraction_below(&Value::Int(40), false);
        assert!((0.25..=0.75).contains(&mid), "median fraction {mid}");
    }

    #[test]
    fn string_buckets_use_half_bucket_interpolation() {
        let m: BTreeMap<Value, u64> = [("a", 10u64), ("b", 10), ("c", 10), ("d", 10)]
            .into_iter()
            .map(|(s, c)| (Value::from(s), c))
            .collect();
        let h = Histogram::equi_depth(m.iter(), 2).unwrap();
        let f = h.fraction_below(&Value::from("b"), false);
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn freshness_displays() {
        assert_eq!(StatsFreshness::Fresh.to_string(), "fresh");
        assert_eq!(StatsFreshness::Stale.to_string(), "stale");
        assert_eq!(StatsFreshness::Absent.to_string(), "absent");
    }
}
