//! # prisma-core
//!
//! The public façade of the PRISMA database machine reproduction: a
//! **distributed, main-memory DBMS on a simulated 64-PE multi-computer**
//! (Apers, Kersten, Oerlemans — EDBT 1988).
//!
//! ```
//! use prisma_core::PrismaMachine;
//!
//! let db = PrismaMachine::builder().pes(8).build().unwrap();
//! db.sql("CREATE TABLE emp (id INT, dept INT) FRAGMENTED BY HASH(id) INTO 4").unwrap();
//! db.sql("INSERT INTO emp VALUES (1, 10), (2, 10), (3, 20)").unwrap();
//! let rows = db.query("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept").unwrap();
//! assert_eq!(rows.len(), 2);
//!
//! // The paper's second interface: PRISMAlog (Datalog-class rules).
//! db.sql("CREATE TABLE edge (src INT, dst INT) FRAGMENTED INTO 2").unwrap();
//! db.sql("INSERT INTO edge VALUES (1,2),(2,3)").unwrap();
//! let paths = db.prismalog(
//!     "path(X,Y) :- edge(X,Y). path(X,Y) :- edge(X,Z), path(Z,Y).",
//!     "?- path(1, X).",
//! ).unwrap();
//! assert_eq!(paths.len(), 2);
//! db.shutdown();
//! ```
//!
//! Everything underneath is re-exported: the multi-computer simulator
//! ([`multicomputer`]), POOL-X runtime ([`poolx`]), storage structures and
//! expression compiler ([`storage`]), stable storage ([`stable`]), algebra
//! ([`relalg`]), One-Fragment Managers ([`ofm`]), SQL and PRISMAlog front
//! ends ([`sqlfe`], [`prismalog`]), the knowledge-based optimizer
//! ([`optimizer`]), the Global Data Handler ([`gdh`]) and the
//! deterministic fault-injection layer ([`faultx`]).

pub use prisma_faultx as faultx;
pub use prisma_gdh as gdh;
pub use prisma_multicomputer as multicomputer;
pub use prisma_ofm as ofm;
pub use prisma_optimizer as optimizer;
pub use prisma_poolx as poolx;
pub use prisma_prismalog as prismalog;
pub use prisma_relalg as relalg;
pub use prisma_sqlfe as sqlfe;
pub use prisma_stable as stable;
pub use prisma_storage as storage;
pub use prisma_types as types;
pub use prisma_workload as workload;

pub use prisma_gdh::{AllocationPolicy, GlobalDataHandler, QueryOutcome};
pub use prisma_relalg::Relation;
pub use prisma_types::{
    MachineConfig, PrismaError, Result, Schema, TopologyKind, Tuple, TxnId, Value,
};

use prisma_stable::DiskProfile;

/// Builder for a [`PrismaMachine`].
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    config: MachineConfig,
    allocation: AllocationPolicy,
    disk_profile: DiskProfile,
}

impl MachineBuilder {
    /// Number of processing elements (default: the paper's 64).
    pub fn pes(mut self, n: usize) -> Self {
        self.config.num_pes = n;
        self
    }

    /// Interconnect topology (default: mesh; the paper's alternative is a
    /// chordal ring).
    pub fn topology(mut self, t: TopologyKind) -> Self {
        self.config.topology = t;
        self
    }

    /// Local memory per PE in bytes (default 16 MB).
    pub fn memory_per_pe(mut self, bytes: usize) -> Self {
        self.config.memory_per_pe = bytes;
        self
    }

    /// Fragment-placement policy of the data-allocation manager.
    pub fn allocation(mut self, p: AllocationPolicy) -> Self {
        self.allocation = p;
        self
    }

    /// Latency profile of the simulated disks on disk PEs (default:
    /// instant, so tests don't pay 20 ms seeks; benches use
    /// [`DiskProfile::default`] for period-realistic numbers).
    pub fn disk_profile(mut self, p: DiskProfile) -> Self {
        self.disk_profile = p;
        self
    }

    /// Rows-per-chunk threshold at which fragments seal column chunks
    /// (default 0: resolve from `SEAL_EVERY`, else 1024).
    pub fn seal_rows(mut self, rows: usize) -> Self {
        self.config.seal_rows = rows;
        self
    }

    /// Full configuration override.
    pub fn config(mut self, c: MachineConfig) -> Self {
        self.config = c;
        self
    }

    /// Boot the machine.
    pub fn build(self) -> Result<PrismaMachine> {
        Ok(PrismaMachine {
            gdh: GlobalDataHandler::boot(self.config, self.allocation, self.disk_profile)?,
        })
    }
}

/// A running PRISMA database machine.
pub struct PrismaMachine {
    gdh: GlobalDataHandler,
}

impl PrismaMachine {
    /// Builder with paper defaults.
    pub fn builder() -> MachineBuilder {
        MachineBuilder {
            config: MachineConfig::paper_prototype(),
            allocation: AllocationPolicy::LoadBalanced,
            disk_profile: DiskProfile::instant(),
        }
    }

    /// Boot with all defaults (64 PEs, mesh, load-balanced placement).
    pub fn boot() -> Result<PrismaMachine> {
        PrismaMachine::builder().build()
    }

    /// Execute one SQL statement.
    pub fn sql(&self, sql: &str) -> Result<QueryOutcome> {
        self.gdh.execute_sql(sql)
    }

    /// Execute a SQL query and return its rows.
    pub fn query(&self, sql: &str) -> Result<Relation> {
        self.gdh.execute_sql(sql)?.rows()
    }

    /// Execute a SQL query, returning rows plus the parallel executor's
    /// metrics (fragment tasks, batches shipped, join strategies used).
    pub fn query_with_metrics(
        &self,
        sql: &str,
    ) -> Result<(Relation, prisma_gdh::exec::ExecMetrics)> {
        self.gdh.query_sql_with_metrics(sql)
    }

    /// Run a PRISMAlog program against the stored relations and answer the
    /// query atom.
    pub fn prismalog(&self, program: &str, query: &str) -> Result<Relation> {
        self.gdh.execute_prismalog(program, query)
    }

    /// EXPLAIN a query: unoptimized plan, optimized plan, and the
    /// knowledge-base rule firings.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.gdh.explain_sql(sql)
    }

    /// Begin / commit / abort explicit transactions.
    pub fn begin(&self) -> TxnId {
        self.gdh.begin()
    }

    /// Execute a statement inside an explicit transaction.
    pub fn sql_in(&self, txn: TxnId, sql: &str) -> Result<QueryOutcome> {
        self.gdh.execute_sql_in(txn, sql)
    }

    /// Two-phase commit.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        self.gdh.commit(txn)
    }

    /// Abort and roll back.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.gdh.abort(txn)
    }

    /// Recompute optimizer statistics for a relation.
    pub fn refresh_stats(&self, table: &str) -> Result<()> {
        self.gdh.refresh_stats(table)
    }

    /// Force checkpoints for a relation (returns simulated disk ns).
    pub fn checkpoint(&self, table: &str) -> Result<u64> {
        self.gdh.checkpoint(table)
    }

    /// Rebuild a relation from stable storage (crash recovery).
    pub fn recover(&self, table: &str) -> Result<()> {
        self.gdh.recover_relation(table)
    }

    /// The supervising Global Data Handler (full API).
    pub fn gdh(&self) -> &GlobalDataHandler {
        &self.gdh
    }

    /// Mutable GDH access (optimizer-config overrides for ablations).
    pub fn gdh_mut(&mut self) -> &mut GlobalDataHandler {
        &mut self.gdh
    }

    /// Stop all PE workers.
    pub fn shutdown(&self) {
        self.gdh.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow() {
        let db = PrismaMachine::builder().pes(4).build().unwrap();
        db.sql("CREATE TABLE t (a INT, b STRING) FRAGMENTED BY HASH(a) INTO 2")
            .unwrap();
        db.sql("INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'x')")
            .unwrap();
        let rows = db
            .query("SELECT b, COUNT(*) AS n FROM t GROUP BY b ORDER BY b")
            .unwrap();
        assert_eq!(rows.len(), 2);
        db.shutdown();
    }

    #[test]
    fn builder_options() {
        let db = PrismaMachine::builder()
            .pes(9)
            .topology(TopologyKind::ChordalRing { stride: 3 })
            .allocation(AllocationPolicy::RoundRobin)
            .memory_per_pe(1 << 20)
            .build()
            .unwrap();
        assert_eq!(db.gdh().config().num_pes, 9);
        db.shutdown();
    }
}
