//! # prisma-workload
//!
//! Deterministic workload generators for the PRISMA experiments:
//! Wisconsin-style benchmark relations (the standard of the paper's era),
//! recursive-query graphs, and bank-transfer transaction mixes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prisma_types::{tuple, Column, DataType, Schema, Tuple};

/// Schema of a Wisconsin-style relation: `unique1` (a permuted key),
/// `unique2` (sequential key), low-cardinality selection columns, and a
/// string payload.
pub fn wisconsin_schema() -> Schema {
    Schema::new(vec![
        Column::new("unique1", DataType::Int),
        Column::new("unique2", DataType::Int),
        Column::new("two", DataType::Int),
        Column::new("ten", DataType::Int),
        Column::new("hundred", DataType::Int),
        Column::new("string4", DataType::Str),
    ])
}

/// Generate `n` Wisconsin-style rows; `unique1` is a deterministic
/// pseudo-random permutation of `0..n` so selections on it hit scattered
/// fragments.
pub fn wisconsin_rows(n: usize, seed: u64) -> Vec<Tuple> {
    let mut perm: Vec<i64> = (0..n as i64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    const STRINGS: [&str; 4] = ["AAAA", "HHHH", "OOOO", "VVVV"];
    perm.into_iter()
        .enumerate()
        .map(|(u2, u1)| {
            let u2 = u2 as i64;
            tuple![
                u1,
                u2,
                u2 % 2,
                u2 % 10,
                u2 % 100,
                STRINGS[(u2 % 4) as usize]
            ]
        })
        .collect()
}

/// Shape of generated graphs for recursive-query experiments (E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphShape {
    /// A single path `0 → 1 → … → n-1`: worst-case fixpoint depth.
    Chain,
    /// A complete binary tree with edges parent → child.
    BinaryTree,
    /// Each node gets `out_degree` random successors: shallow but wide.
    Random {
        /// Successors per node.
        out_degree: usize,
    },
    /// `2 × (n/2)` grid with right/down edges — moderate depth and width.
    Grid,
}

/// Schema of an edge relation.
pub fn edge_schema() -> Schema {
    Schema::new(vec![
        Column::new("src", DataType::Int),
        Column::new("dst", DataType::Int),
    ])
}

/// Generate the edge list of a graph over `n` nodes.
pub fn graph_edges(shape: GraphShape, n: usize, seed: u64) -> Vec<Tuple> {
    let mut edges = Vec::new();
    match shape {
        GraphShape::Chain => {
            for i in 0..n.saturating_sub(1) {
                edges.push(tuple![i as i64, (i + 1) as i64]);
            }
        }
        GraphShape::BinaryTree => {
            for i in 0..n {
                for c in [2 * i + 1, 2 * i + 2] {
                    if c < n {
                        edges.push(tuple![i as i64, c as i64]);
                    }
                }
            }
        }
        GraphShape::Random { out_degree } => {
            let mut rng = StdRng::seed_from_u64(seed);
            for i in 0..n {
                for _ in 0..out_degree {
                    let j = rng.gen_range(0..n);
                    edges.push(tuple![i as i64, j as i64]);
                }
            }
        }
        GraphShape::Grid => {
            let cols = (n / 2).max(1);
            let id = |r: usize, c: usize| (r * cols + c) as i64;
            for r in 0..2 {
                for c in 0..cols {
                    if c + 1 < cols {
                        edges.push(tuple![id(r, c), id(r, c + 1)]);
                    }
                    if r == 0 {
                        edges.push(tuple![id(0, c), id(1, c)]);
                    }
                }
            }
        }
    }
    edges
}

/// Schema of the bank-accounts relation used by the E3/E7 transaction
/// workloads.
pub fn accounts_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("branch", DataType::Int),
        Column::new("balance", DataType::Int),
    ])
}

/// `n` accounts spread over `branches` branches, each with `initial`
/// balance.
pub fn accounts_rows(n: usize, branches: usize, initial: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| tuple![i as i64, (i % branches.max(1)) as i64, initial])
        .collect()
}

/// A transfer: move `amount` from one account to another (two updates in
/// one transaction — the canonical 2PC workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Debited account.
    pub from: i64,
    /// Credited account.
    pub to: i64,
    /// Amount.
    pub amount: i64,
}

/// Generate a deterministic stream of random transfers.
pub fn transfer_stream(n_accounts: usize, n_transfers: usize, seed: u64) -> Vec<Transfer> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_transfers)
        .map(|_| {
            let from = rng.gen_range(0..n_accounts) as i64;
            let mut to = rng.gen_range(0..n_accounts) as i64;
            if to == from {
                to = (to + 1) % n_accounts as i64;
            }
            Transfer {
                from,
                to,
                amount: rng.gen_range(1..100),
            }
        })
        .collect()
}

/// Render rows as a SQL VALUES list (helper for loading via the SQL front
/// end in examples and benches).
pub fn values_clause(rows: &[Tuple]) -> String {
    let mut out = String::new();
    for (i, t) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('(');
        for (j, v) in t.values().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(')');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn wisconsin_unique1_is_a_permutation() {
        let rows = wisconsin_rows(1000, 42);
        let u1: HashSet<i64> = rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(u1.len(), 1000);
        assert!(u1.contains(&0) && u1.contains(&999));
        // Deterministic for a fixed seed.
        assert_eq!(rows, wisconsin_rows(1000, 42));
        assert_ne!(rows, wisconsin_rows(1000, 43));
        // Schema admits the rows.
        for r in &rows[..10] {
            wisconsin_schema().check_tuple(r.values()).unwrap();
        }
    }

    #[test]
    fn graph_shapes() {
        assert_eq!(graph_edges(GraphShape::Chain, 10, 0).len(), 9);
        let tree = graph_edges(GraphShape::BinaryTree, 7, 0);
        assert_eq!(tree.len(), 6);
        let rnd = graph_edges(GraphShape::Random { out_degree: 3 }, 10, 1);
        assert_eq!(rnd.len(), 30);
        let grid = graph_edges(GraphShape::Grid, 10, 0);
        assert!(!grid.is_empty());
        for e in grid {
            edge_schema().check_tuple(e.values()).unwrap();
        }
    }

    #[test]
    fn transfers_never_self_transfer() {
        for t in transfer_stream(10, 200, 7) {
            assert_ne!(t.from, t.to);
            assert!(t.amount > 0);
        }
    }

    #[test]
    fn values_clause_renders_sql() {
        let rows = vec![tuple![1, "a"], tuple![2, "b"]];
        assert_eq!(values_clause(&rows), "(1,'a'),(2,'b')");
    }

    #[test]
    fn accounts_preserve_total_balance_invariant_base() {
        let rows = accounts_rows(100, 10, 1000);
        let total: i64 = rows.iter().map(|t| t.get(2).as_int().unwrap()).sum();
        assert_eq!(total, 100_000);
    }
}
