//! # prisma-poolx
//!
//! A runtime reproducing the POOL-X programming model (paper §3.1):
//!
//! > "The programming model of POOL-X is a collection of dynamically
//! > created processes. Internally the processes have a control flow
//! > behaviour and they communicate via message-passing only, i.e. no
//! > shared memory. … POOL-X supports explicit allocation of the
//! > dynamically created processes onto processing elements. This allows
//! > for a proper balance between storage, processing, and communication,
//! > under the control of the implementor of the database system."
//!
//! The substitution (DESIGN.md §5): POOL-X on DOOM hardware becomes an
//! **actor runtime on one OS thread per simulated PE**. The DB-relevant
//! semantics are preserved exactly:
//!
//! * processes are created dynamically ([`PoolRuntime::spawn`]) and placed
//!   on an explicit PE — placement is the API, not an internal detail;
//! * processes share no memory: the only inter-process channel is
//!   [`PoolRuntime::send`] / [`Ctx::send`];
//! * every cross-PE message is metered against the multi-computer's
//!   communication cost model ([`TrafficLedger`]), so the allocation
//!   experiments (E8) can observe the storage/processing/communication
//!   balance the paper talks about.

pub mod ledger;
pub mod runtime;
pub mod workers;

pub use ledger::TrafficLedger;
pub use runtime::{Ctx, ExternalMailbox, PoolRuntime, Process, WireMessage, COORDINATOR_PE};
pub use workers::{BatchHandle, Job, PoolHarness, PoolSet, PoolStats, WorkerPool};
