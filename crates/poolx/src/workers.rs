//! Per-PE compute worker pools for morsel-driven intra-fragment
//! parallelism.
//!
//! The paper pins one POOL-X process per PE; PR 6 keeps that actor model
//! for everything *between* PEs and adds HyPer-style morsel parallelism
//! *inside* a PE: a fragment's scan/build/fold work is cut into
//! fixed-size morsels and dispatched to a small pool of compute workers
//! that share work-stealing deques. The pool never touches the wire —
//! all cross-PE communication still flows through [`crate::PoolRuntime`]
//! messages, so the streaming protocol and the traffic ledger are
//! unaffected.
//!
//! Scheduling shape (per pool):
//!
//! * each worker owns a **mailbox** ([`crossbeam::deque::Injector`])
//!   that [`WorkerPool::run`] scatters jobs into round-robin, and a
//!   private **LIFO deque** ([`crossbeam::deque::Worker`]) it drains
//!   the mailbox into;
//! * an idle worker pops its own deque first (cache-warm), then steals —
//!   a sibling's mailbox, then a sibling's deque, FIFO from the cold end
//!   — so a straggler's backlog is rebalanced automatically;
//! * `run` blocks until every job of the call has finished, which is
//!   what lets jobs borrow from the caller's stack (scoped execution).
//!
//! Every worker keeps cumulative counters (morsels executed, successful
//! steals, busy nanoseconds) that the GDH executor snapshots into
//! `ExecMetrics` and the `e9_parallel` bench uses to compute scaling.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

/// A unit of work: one morsel's worth of compute.
pub type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Completion state of one `run` call.
struct BatchState {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    panicked: AtomicBool,
}

struct Task {
    job: StaticJob,
    batch: Arc<BatchState>,
}

/// Cumulative counters for one pool (or one pool's worker).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Morsels (jobs) executed since the pool started.
    pub morsels: u64,
    /// Jobs taken from another worker's mailbox or deque.
    pub steals: u64,
    /// Per-worker busy time in nanoseconds, index = worker id. The max
    /// entry is the pool's critical path; the sum is total work done.
    pub busy_nanos: Vec<u64>,
}

impl PoolStats {
    /// Total busy nanoseconds across all workers.
    pub fn busy_total(&self) -> u64 {
        self.busy_nanos.iter().sum()
    }

    /// The slowest worker's busy nanoseconds — the pool's critical path.
    pub fn busy_max(&self) -> u64 {
        self.busy_nanos.iter().copied().max().unwrap_or(0)
    }
}

struct PoolShared {
    mailboxes: Vec<Injector<Task>>,
    stealers: Vec<Stealer<Task>>,
    epoch: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    morsels: AtomicU64,
    steals: AtomicU64,
    busy_nanos: Vec<AtomicU64>,
}

impl PoolShared {
    /// Grab one queued task, preferring sibling `me`'s neighbours'
    /// backlogs; counts cross-worker takes as steals.
    fn steal_for(&self, me: usize) -> Option<Task> {
        crossbeam::hooks::probe("pool.steal");
        let n = self.mailboxes.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Steal::Success(t) = self.mailboxes[victim].steal() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
            if let Steal::Success(t) = self.stealers[victim].steal() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// One round of worker `me`'s task-acquisition discipline: drain the
    /// own mailbox into the private LIFO deque, pop the hot end, else
    /// steal from a sibling (mailbox first, then deque, FIFO). This is
    /// the scheduling core of [`worker_loop`], factored out so checkx's
    /// interleaving explorer can drive the *same* code one acquisition
    /// at a time instead of testing a re-model of it.
    fn next_task(&self, me: usize, local: &Worker<Task>) -> Option<Task> {
        crossbeam::hooks::probe("pool.drain");
        while let Steal::Success(t) = self.mailboxes[me].steal() {
            local.push(t);
        }
        crossbeam::hooks::probe("pool.pop");
        local.pop().or_else(|| self.steal_for(me))
    }
}

/// Build the queue fabric for `workers` workers: the shared state plus
/// each worker's private LIFO deque (handed to its thread — or to the
/// checkx harness driving the discipline without threads).
fn build_shared(workers: usize) -> (Arc<PoolShared>, Vec<Worker<Task>>) {
    let locals: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let shared = Arc::new(PoolShared {
        mailboxes: (0..workers).map(|_| Injector::new()).collect(),
        stealers: locals.iter().map(|w| w.stealer()).collect(),
        epoch: Mutex::new(0),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        morsels: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
    });
    (shared, locals)
}

/// Scatter `jobs` round-robin across the mailboxes starting at `rr0`,
/// all tied to one fresh [`BatchState`].
fn scatter(shared: &PoolShared, jobs: Vec<StaticJob>, rr0: usize) -> Arc<BatchState> {
    let batch = Arc::new(BatchState {
        remaining: AtomicUsize::new(jobs.len()),
        lock: Mutex::new(()),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });
    let n = shared.mailboxes.len();
    for (i, job) in jobs.into_iter().enumerate() {
        let task = Task {
            job,
            batch: Arc::clone(&batch),
        };
        shared.mailboxes[(rr0 + i) % n].push(task);
    }
    batch
}

/// A pool of compute workers for one PE. Created via [`WorkerPool::new`];
/// dropping the pool shuts the workers down and joins them.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_rr: AtomicUsize,
}

impl WorkerPool {
    /// Spawn a pool of `workers` compute threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let (shared, locals) = build_shared(workers);
        let threads = locals
            .into_iter()
            .enumerate()
            .map(|(id, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ofm-worker-{id}"))
                    .spawn(move || worker_loop(id, local, shared))
                    .expect("spawn ofm worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            threads: Mutex::new(threads),
            next_rr: AtomicUsize::new(0),
        })
    }

    /// Worker thread count.
    pub fn workers(&self) -> usize {
        self.shared.mailboxes.len()
    }

    /// Execute `jobs` on the pool and block until all of them finish.
    ///
    /// Jobs may borrow from the caller's stack: the call does not return
    /// until every job has run, so the borrows outlive all uses. If a job
    /// panics, the remaining jobs still drain and the panic is re-raised
    /// here on the caller's thread.
    pub fn run<'scope>(&self, jobs: Vec<Job<'scope>>) {
        if jobs.is_empty() {
            return;
        }
        // SAFETY: the jobs are erased to 'static only so they can sit in
        // the shared queues; this function blocks below until
        // `batch.remaining` hits zero, i.e. until every job has finished
        // executing, so no borrow they capture is used after it expires.
        let jobs: Vec<StaticJob> = unsafe { std::mem::transmute(jobs) };
        let rr0 = self.next_rr.fetch_add(jobs.len(), Ordering::Relaxed);
        let batch = scatter(&self.shared, jobs, rr0);
        {
            let mut epoch = self.shared.epoch.lock();
            *epoch += 1;
            self.shared.wake.notify_all();
        }
        let mut guard = batch.lock.lock();
        while batch.remaining.load(Ordering::Acquire) > 0 {
            batch.done.wait(&mut guard);
        }
        drop(guard);
        if batch.panicked.load(Ordering::Acquire) {
            panic!("a morsel job panicked on an ofm worker");
        }
    }

    /// Snapshot of the pool's cumulative counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            morsels: self.shared.morsels.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            busy_nanos: self
                .shared
                .busy_nanos
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let mut epoch = self.shared.epoch.lock();
            *epoch += 1;
            self.shared.wake.notify_all();
        }
        for t in self.threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(id: usize, local: Worker<Task>, shared: Arc<PoolShared>) {
    loop {
        // Remember the wake epoch *before* scanning the queues so a
        // submission racing with the scan is never missed: it bumps the
        // epoch, and the wait below notices.
        let seen = *shared.epoch.lock();
        let mut progressed = false;
        while let Some(task) = shared.next_task(id, &local) {
            progressed = true;
            run_task(id, task, &shared);
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !progressed {
            crossbeam::hooks::probe("pool.park");
            let mut epoch = shared.epoch.lock();
            while *epoch == seen && !shared.shutdown.load(Ordering::Acquire) {
                shared.wake.wait(&mut epoch);
            }
        }
    }
}

fn run_task(id: usize, task: Task, shared: &PoolShared) {
    let started = Instant::now();
    let outcome = panic::catch_unwind(AssertUnwindSafe(task.job));
    let elapsed = started.elapsed().as_nanos() as u64;
    shared.busy_nanos[id].fetch_add(elapsed, Ordering::Relaxed);
    shared.morsels.fetch_add(1, Ordering::Relaxed);
    if outcome.is_err() {
        task.batch.panicked.store(true, Ordering::Release);
    }
    if task.batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _guard = task.batch.lock.lock();
        task.batch.done.notify_all();
    }
}

/// The same queue fabric and acquisition discipline as [`WorkerPool`],
/// but with **no OS threads**: each call to [`PoolHarness::step`] runs
/// exactly one task acquisition (drain → pop → steal, the code path
/// shared with the threaded worker loop via `PoolShared::next_task`) on behalf of
/// one virtual worker. checkx's bounded interleaving explorer drives
/// this to enumerate every ordering of worker steps for small job
/// counts — turning the pool's no-lost-job / no-double-run / panic-
/// propagation invariants from race-*sampled* into schedule-*enumerated*
/// properties. The mutex-backed deque shim makes each acquisition step
/// atomic, so step-granularity enumeration covers every observable
/// thread interleaving.
pub struct PoolHarness {
    shared: Arc<PoolShared>,
    locals: Vec<Worker<Task>>,
    next_rr: usize,
}

/// Observable completion state of one batch submitted to a
/// [`PoolHarness`] — what [`WorkerPool::run`] blocks on, exposed so the
/// explorer can assert it instead.
pub struct BatchHandle {
    batch: Arc<BatchState>,
}

impl BatchHandle {
    /// Jobs of this batch not yet executed.
    pub fn remaining(&self) -> usize {
        self.batch.remaining.load(Ordering::Acquire)
    }

    /// True when some job of this batch panicked (the flag
    /// [`WorkerPool::run`] re-raises on the caller's thread).
    pub fn panicked(&self) -> bool {
        self.batch.panicked.load(Ordering::Acquire)
    }
}

impl PoolHarness {
    /// A harness over `workers` virtual workers (clamped to ≥ 1).
    pub fn new(workers: usize) -> PoolHarness {
        let workers = workers.max(1);
        let (shared, locals) = build_shared(workers);
        PoolHarness {
            shared,
            locals,
            next_rr: 0,
        }
    }

    /// Virtual worker count.
    pub fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Submit a batch exactly as [`WorkerPool::run`] would: round-robin
    /// scatter into the worker mailboxes. No worker runs anything until
    /// [`step`](Self::step) is called.
    pub fn submit(&mut self, jobs: Vec<Box<dyn FnOnce() + Send + 'static>>) -> BatchHandle {
        let rr0 = self.next_rr;
        self.next_rr += jobs.len();
        BatchHandle {
            batch: scatter(&self.shared, jobs, rr0),
        }
    }

    /// Run one acquisition round for `worker`: the real
    /// drain-mailbox / pop-LIFO / steal-sibling discipline, then execute
    /// the acquired task (with the real panic-catching bookkeeping).
    /// Returns false when the worker found nothing to do.
    pub fn step(&self, worker: usize) -> bool {
        match self.shared.next_task(worker, &self.locals[worker]) {
            Some(task) => {
                run_task(worker, task, &self.shared);
                true
            }
            None => false,
        }
    }

    /// True while any mailbox or worker deque still holds a task.
    pub fn has_work(&self) -> bool {
        self.shared.mailboxes.iter().any(|m| !m.is_empty())
            || self.shared.stealers.iter().any(|s| !s.is_empty())
    }

    /// Cumulative counters (morsels executed, steals), as for a real pool.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            morsels: self.shared.morsels.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            busy_nanos: self
                .shared
                .busy_nanos
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Lazily-created [`WorkerPool`]s keyed by PE, shared by the GDH and all
/// OFM actors of one machine. With `workers_per_pe <= 1` no pools are
/// ever created and every execution path stays on the serial baseline.
pub struct PoolSet {
    workers_per_pe: usize,
    pools: Mutex<HashMap<usize, Arc<WorkerPool>>>,
}

impl PoolSet {
    /// A pool set handing out `workers_per_pe`-wide pools.
    pub fn new(workers_per_pe: usize) -> Arc<PoolSet> {
        Arc::new(PoolSet {
            workers_per_pe,
            pools: Mutex::new(HashMap::new()),
        })
    }

    /// Configured worker width (1 = serial, no pools).
    pub fn workers_per_pe(&self) -> usize {
        self.workers_per_pe
    }

    /// The pool for PE `pe`, creating it on first use. `None` when the
    /// configured width is ≤ 1 — callers then run serially in-line.
    pub fn pool_for(&self, pe: usize) -> Option<Arc<WorkerPool>> {
        if self.workers_per_pe <= 1 {
            return None;
        }
        let mut pools = self.pools.lock();
        Some(Arc::clone(
            pools
                .entry(pe)
                .or_insert_with(|| WorkerPool::new(self.workers_per_pe)),
        ))
    }

    /// Aggregate counters over every pool created so far. `workers` is
    /// the configured per-PE width; `busy_nanos` sums worker-by-worker
    /// across PEs (index = worker id within its PE's pool).
    pub fn total_stats(&self) -> PoolStats {
        let pools = self.pools.lock();
        let mut total = PoolStats {
            workers: if self.workers_per_pe > 1 {
                self.workers_per_pe
            } else {
                0
            },
            ..PoolStats::default()
        };
        for pool in pools.values() {
            let s = pool.stats();
            total.morsels += s.morsels;
            total.steals += s.steals;
            if total.busy_nanos.len() < s.busy_nanos.len() {
                total.busy_nanos.resize(s.busy_nanos.len(), 0);
            }
            for (slot, v) in total.busy_nanos.iter_mut().zip(s.busy_nanos) {
                *slot += v;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job> = (0..257)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        let stats = pool.stats();
        assert_eq!(stats.morsels, 257);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.busy_nanos.len(), 4);
    }

    #[test]
    fn jobs_borrow_from_the_caller_stack() {
        let pool = WorkerPool::new(2);
        let input = [1u64, 2, 3, 4, 5];
        let slots: Vec<AtomicU64> = input.iter().map(|_| AtomicU64::new(0)).collect();
        let jobs: Vec<Job> = input
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let slots = &slots;
                Box::new(move || {
                    slots[i].store(v * 10, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run(jobs);
        let out: Vec<u64> = slots.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn sequential_runs_reuse_the_pool() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            let jobs: Vec<Job> = (0..8)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Job
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80);
        assert_eq!(pool.stats().morsels, 80);
    }

    #[test]
    fn stragglers_get_robbed() {
        // Round-robin puts the even-indexed jobs in worker 0's mailbox,
        // and LIFO draining makes the *last* of them (index 8) the first
        // one worker 0 executes. Making that job long pins worker 0 for
        // 60ms with four short jobs still in its deque — worker 1 must
        // steal them or run() would take ~64ms serial on worker 0 alone.
        let pool = WorkerPool::new(2);
        let started = Instant::now();
        let jobs: Vec<Job> = (0..10)
            .map(|i| {
                Box::new(move || {
                    let ms = if i == 8 { 60 } else { 1 };
                    std::thread::sleep(std::time::Duration::from_millis(ms));
                }) as Job
            })
            .collect();
        pool.run(jobs);
        let elapsed = started.elapsed();
        assert!(
            elapsed < std::time::Duration::from_secs(10),
            "pool wedged: {elapsed:?}"
        );
        assert!(pool.stats().steals > 0, "expected at least one steal");
    }

    #[test]
    fn empty_run_is_a_noop() {
        let pool = WorkerPool::new(2);
        pool.run(Vec::new());
        assert_eq!(pool.stats().morsels, 0);
    }

    #[test]
    fn job_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|| panic!("boom")) as Job]);
        }));
        assert!(result.is_err());
        // The pool survives a panicking job.
        let counter = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            counter.fetch_add(1, Ordering::Relaxed);
        }) as Job]);
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_set_is_lazy_and_serial_when_narrow() {
        let serial = PoolSet::new(1);
        assert!(serial.pool_for(0).is_none());
        assert_eq!(serial.total_stats().morsels, 0);

        let set = PoolSet::new(2);
        let a = set.pool_for(3).unwrap();
        let b = set.pool_for(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        a.run(vec![Box::new(|| {}) as Job]);
        set.pool_for(5)
            .unwrap()
            .run(vec![Box::new(|| {}) as Job, Box::new(|| {}) as Job]);
        let total = set.total_stats();
        assert_eq!(total.morsels, 3);
        assert_eq!(total.workers, 2);
    }
}
