//! The actor runtime: dynamically created processes, message passing only,
//! explicit PE placement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use prisma_types::{PeId, PrismaError, ProcessId, Result};

use crate::ledger::TrafficLedger;

/// The PE the supervisor (GDH) and all external mailboxes are considered
/// to live on; client↔actor messages are charged from/to here.
pub const COORDINATOR_PE: PeId = PeId(0);

/// Messages exchanged between processes. `wire_bytes` is the payload size
/// used for communication metering (the simulated interconnect moves
/// 256-bit packets; the ledger segments accordingly).
pub trait WireMessage: Send + 'static {
    /// Bytes this message occupies on the wire.
    fn wire_bytes(&self) -> usize;
}

/// A POOL-X-style process: reacts to one message at a time; all state is
/// private (no shared memory, per the paper).
pub trait Process<M: WireMessage>: Send {
    /// Handle one message. Outgoing sends and spawns go through `ctx`.
    fn handle(&mut self, msg: M, ctx: &mut Ctx<'_, M>);
}

enum Envelope<M> {
    Deliver { to: ProcessId, msg: M },
    Spawn { id: ProcessId, proc: Box<dyn Process<M>> },
    Kill { id: ProcessId },
    Shutdown,
}

struct RuntimeInner<M: WireMessage> {
    pe_senders: Vec<Sender<Envelope<M>>>,
    placement: Mutex<HashMap<ProcessId, PeId>>,
    externals: Mutex<HashMap<ProcessId, Sender<M>>>,
    next_pid: AtomicU32,
    ledger: Arc<TrafficLedger>,
    dropped: AtomicU64,
}

impl<M: WireMessage> RuntimeInner<M> {
    fn alloc_pid(&self) -> ProcessId {
        ProcessId(self.next_pid.fetch_add(1, Ordering::Relaxed))
    }

    fn route(&self, from: PeId, to: ProcessId, msg: M) -> Result<()> {
        // External mailboxes first. They live on the coordinator PE (the
        // GDH's own processing element), so replies from remote OFMs are
        // real interconnect traffic and are metered as such. A dropped
        // mailbox unregisters itself, so senders fail fast instead of
        // streaming into a void (and nothing phantom is metered) — an OFM
        // mid-stream after a coordinator timeout abandons the rest of its
        // result on the first failed send.
        let external = self.externals.lock().get(&to).cloned();
        if let Some(tx) = external {
            let bytes = msg.wire_bytes();
            if tx.send(msg).is_err() {
                return Err(PrismaError::ProcessUnreachable(format!(
                    "{to} mailbox was dropped"
                )));
            }
            // Metered only when actually delivered.
            self.ledger.record(from, COORDINATOR_PE, bytes);
            return Ok(());
        }
        let Some(&pe) = self.placement.lock().get(&to) else {
            return Err(PrismaError::ProcessUnreachable(format!(
                "{to} is not a live process"
            )));
        };
        self.ledger.record(from, pe, msg.wire_bytes());
        self.pe_senders[pe.index()]
            .send(Envelope::Deliver { to, msg })
            .map_err(|_| PrismaError::ProcessUnreachable(format!("{pe} worker is down")))
    }

    fn spawn(&self, pe: PeId, proc: Box<dyn Process<M>>) -> Result<ProcessId> {
        if pe.index() >= self.pe_senders.len() {
            return Err(PrismaError::Config(format!(
                "{pe} out of range ({} PEs)",
                self.pe_senders.len()
            )));
        }
        let id = self.alloc_pid();
        self.placement.lock().insert(id, pe);
        self.pe_senders[pe.index()]
            .send(Envelope::Spawn { id, proc })
            .map_err(|_| PrismaError::ProcessUnreachable(format!("{pe} worker is down")))?;
        Ok(id)
    }
}

/// Context handed to [`Process::handle`]: the process's identity plus the
/// messaging/spawning capabilities of the runtime.
pub struct Ctx<'a, M: WireMessage> {
    inner: &'a Arc<RuntimeInner<M>>,
    /// This process.
    pub self_id: ProcessId,
    /// The PE this process is allocated on.
    pub self_pe: PeId,
}

impl<M: WireMessage> Ctx<'_, M> {
    /// Send `msg` to another process (or external mailbox). Charged to the
    /// communication ledger when it crosses PEs.
    pub fn send(&mut self, to: ProcessId, msg: M) -> Result<()> {
        self.inner.route(self.self_pe, to, msg)
    }

    /// Dynamically create a process on an explicitly chosen PE — the
    /// POOL-X allocation primitive.
    pub fn spawn(&mut self, pe: PeId, proc: Box<dyn Process<M>>) -> Result<ProcessId> {
        self.inner.spawn(pe, proc)
    }

    /// Terminate a process (its mailbox drains, then it is dropped).
    pub fn kill(&mut self, id: ProcessId) {
        let pe = self.inner.placement.lock().remove(&id);
        if let Some(pe) = pe {
            let _ = self.inner.pe_senders[pe.index()].send(Envelope::Kill { id });
        }
    }
}

/// Receiving end for a non-process client (e.g. the machine facade blocks
/// here for query results).
///
/// Dropping the mailbox unregisters its address: later sends to it fail
/// with `ProcessUnreachable` instead of accumulating into a void, which
/// is how an OFM streaming a result learns the coordinator gave up (e.g.
/// after a reply timeout) and abandons the rest of the stream.
pub struct ExternalMailbox<M: WireMessage> {
    /// Address processes reply to.
    pub id: ProcessId,
    rx: Receiver<M>,
    inner: Weak<RuntimeInner<M>>,
}

impl<M: WireMessage> ExternalMailbox<M> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<M> {
        self.rx
            .recv()
            .map_err(|_| PrismaError::ProcessUnreachable("runtime shut down".into()))
    }

    /// Receive with timeout.
    pub fn recv_timeout(&self, d: Duration) -> Result<M> {
        self.rx
            .recv_timeout(d)
            .map_err(|_| PrismaError::ProcessUnreachable("timed out waiting for reply".into()))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<M> {
        self.rx.try_recv().ok()
    }
}

impl<M: WireMessage> Drop for ExternalMailbox<M> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.upgrade() {
            inner.externals.lock().remove(&self.id);
        }
    }
}

/// The POOL-X runtime over `n` simulated PEs, one worker thread each.
pub struct PoolRuntime<M: WireMessage> {
    inner: Arc<RuntimeInner<M>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<M: WireMessage> PoolRuntime<M> {
    /// Start workers for `num_pes` PEs, metering traffic on `ledger`.
    pub fn start(num_pes: usize, ledger: Arc<TrafficLedger>) -> Arc<PoolRuntime<M>> {
        let mut senders = Vec::with_capacity(num_pes);
        let mut receivers = Vec::with_capacity(num_pes);
        for _ in 0..num_pes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(RuntimeInner {
            pe_senders: senders,
            placement: Mutex::new(HashMap::new()),
            externals: Mutex::new(HashMap::new()),
            next_pid: AtomicU32::new(0),
            ledger,
            dropped: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(num_pes);
        for (pe, rx) in receivers.into_iter().enumerate() {
            let inner = inner.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(PeId::from(pe), rx, inner)
            }));
        }
        Arc::new(PoolRuntime {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.inner.pe_senders.len()
    }

    /// The communication ledger.
    pub fn ledger(&self) -> &Arc<TrafficLedger> {
        &self.inner.ledger
    }

    /// Spawn a process on an explicit PE.
    pub fn spawn(&self, pe: PeId, proc: Box<dyn Process<M>>) -> Result<ProcessId> {
        self.inner.spawn(pe, proc)
    }

    /// Send from outside the process world (the supervisor/client, which
    /// lives on [`COORDINATOR_PE`]); metered like any other message.
    pub fn send(&self, to: ProcessId, msg: M) -> Result<()> {
        self.inner.route(COORDINATOR_PE, to, msg)
    }

    /// Register an external mailbox; processes can `send` to its id until
    /// the mailbox is dropped.
    pub fn external_mailbox(&self) -> ExternalMailbox<M> {
        let id = self.inner.alloc_pid();
        let (tx, rx) = unbounded();
        self.inner.externals.lock().insert(id, tx);
        ExternalMailbox {
            id,
            rx,
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Where a process lives (None once killed).
    pub fn placement_of(&self, id: ProcessId) -> Option<PeId> {
        self.inner.placement.lock().get(&id).copied()
    }

    /// Live process count per PE.
    pub fn processes_per_pe(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_pes()];
        for &pe in self.inner.placement.lock().values() {
            counts[pe.index()] += 1;
        }
        counts
    }

    /// Messages dropped because their target process was dead.
    pub fn dropped_messages(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Kill one process from outside the process world (fault injection,
    /// supervision). Subsequent messages to it count as dropped.
    pub fn kill(&self, id: ProcessId) {
        let pe = self.inner.placement.lock().remove(&id);
        if let Some(pe) = pe {
            let _ = self.inner.pe_senders[pe.index()].send(Envelope::Kill { id });
        }
    }

    /// Kill every process hosted on `pe` — the hard-crash primitive the
    /// fault injector uses to take a whole PE down mid-query. Returns the
    /// ids of the processes that died.
    pub fn kill_pe(&self, pe: PeId) -> Vec<ProcessId> {
        let mut placement = self.inner.placement.lock();
        let victims: Vec<ProcessId> = placement
            .iter()
            .filter_map(|(&id, &p)| (p == pe).then_some(id))
            .collect();
        for &id in &victims {
            placement.remove(&id);
        }
        drop(placement);
        for &id in &victims {
            let _ = self.inner.pe_senders[pe.index()].send(Envelope::Kill { id });
        }
        victims
    }

    /// Stop all workers after their mailboxes drain.
    pub fn shutdown(&self) {
        for tx in &self.inner.pe_senders {
            let _ = tx.send(Envelope::Shutdown);
        }
        let mut workers = self.workers.lock();
        for w in workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<M: WireMessage> Drop for PoolRuntime<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<M: WireMessage>(
    pe: PeId,
    rx: Receiver<Envelope<M>>,
    inner: Arc<RuntimeInner<M>>,
) {
    let mut procs: HashMap<ProcessId, Box<dyn Process<M>>> = HashMap::new();
    while let Ok(env) = rx.recv() {
        match env {
            Envelope::Spawn { id, proc } => {
                procs.insert(id, proc);
            }
            Envelope::Kill { id } => {
                procs.remove(&id);
            }
            Envelope::Deliver { to, msg } => {
                // Take the process out so its handler can freely use the
                // runtime (sends to self just queue behind this message).
                if let Some(mut p) = procs.remove(&to) {
                    let mut ctx = Ctx {
                        inner: &inner,
                        self_id: to,
                        self_pe: pe,
                    };
                    p.handle(msg, &mut ctx);
                    // Re-insert unless the process killed itself.
                    if inner.placement.lock().contains_key(&to) {
                        procs.insert(to, p);
                    }
                } else {
                    inner.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Envelope::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_multicomputer::CostModel;
    use prisma_types::MachineConfig;

    #[derive(Debug)]
    enum Msg {
        Ping { reply_to: ProcessId, n: u64 },
        Pong(u64),
        FanOut { reply_to: ProcessId, children: usize },
        Done,
    }

    impl WireMessage for Msg {
        fn wire_bytes(&self) -> usize {
            64
        }
    }

    struct Echo;
    impl Process<Msg> for Echo {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::Ping { reply_to, n } = msg {
                ctx.send(reply_to, Msg::Pong(n * 2)).unwrap();
            }
        }
    }

    fn runtime(pes: usize) -> Arc<PoolRuntime<Msg>> {
        let cfg = MachineConfig::paper_prototype().with_pes(pes);
        let ledger = Arc::new(TrafficLedger::new(CostModel::new(&cfg).unwrap()));
        PoolRuntime::start(pes, ledger)
    }

    #[test]
    fn request_reply_roundtrip() {
        let rt = runtime(4);
        let mb = rt.external_mailbox();
        let echo = rt.spawn(PeId(2), Box::new(Echo)).unwrap();
        rt.send(
            echo,
            Msg::Ping {
                reply_to: mb.id,
                n: 21,
            },
        )
        .unwrap();
        match mb.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::Pong(v) => assert_eq!(v, 42),
            other => panic!("unexpected {other:?}"),
        }
        rt.shutdown();
    }

    #[test]
    fn explicit_placement_is_observable() {
        let rt = runtime(4);
        let a = rt.spawn(PeId(1), Box::new(Echo)).unwrap();
        let b = rt.spawn(PeId(3), Box::new(Echo)).unwrap();
        assert_eq!(rt.placement_of(a), Some(PeId(1)));
        assert_eq!(rt.placement_of(b), Some(PeId(3)));
        let per = rt.processes_per_pe();
        assert_eq!(per[1], 1);
        assert_eq!(per[3], 1);
        rt.shutdown();
    }

    struct Spawner;
    impl Process<Msg> for Spawner {
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            if let Msg::FanOut { reply_to, children } = msg {
                // Dynamically create children across PEs, POOL-X style.
                for i in 0..children {
                    let pe = PeId::from(i % 4);
                    let child = ctx.spawn(pe, Box::new(Echo)).unwrap();
                    ctx.send(
                        child,
                        Msg::Ping {
                            reply_to,
                            n: i as u64,
                        },
                    )
                    .unwrap();
                }
            }
        }
    }

    #[test]
    fn processes_spawn_processes() {
        let rt = runtime(4);
        let mb = rt.external_mailbox();
        let s = rt.spawn(PeId(0), Box::new(Spawner)).unwrap();
        rt.send(
            s,
            Msg::FanOut {
                reply_to: mb.id,
                children: 8,
            },
        )
        .unwrap();
        let mut got = 0;
        for _ in 0..8 {
            match mb.recv_timeout(Duration::from_secs(5)).unwrap() {
                Msg::Pong(_) => got += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, 8);
        rt.shutdown();
    }

    #[test]
    fn kill_pe_takes_down_every_hosted_process() {
        let rt = runtime(4);
        let mb = rt.external_mailbox();
        let a = rt.spawn(PeId(2), Box::new(Echo)).unwrap();
        let b = rt.spawn(PeId(2), Box::new(Echo)).unwrap();
        let survivor = rt.spawn(PeId(1), Box::new(Echo)).unwrap();

        let mut victims = rt.kill_pe(PeId(2));
        victims.sort();
        let mut expect = vec![a, b];
        expect.sort();
        assert_eq!(victims, expect);
        assert_eq!(rt.placement_of(a), None);
        assert_eq!(rt.placement_of(b), None);
        assert_eq!(rt.placement_of(survivor), Some(PeId(1)));

        // Messages to the dead PE's processes bounce; the survivor still
        // answers.
        assert!(rt.send(a, Msg::Ping { reply_to: mb.id, n: 1 }).is_err());
        rt.send(survivor, Msg::Ping { reply_to: mb.id, n: 21 })
            .unwrap();
        match mb.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::Pong(v) => assert_eq!(v, 42),
            other => panic!("unexpected {other:?}"),
        }
        // Killing an empty PE is a no-op.
        assert!(rt.kill_pe(PeId(3)).is_empty());
        rt.shutdown();
    }

    #[test]
    fn cross_pe_messages_are_metered() {
        let rt = runtime(4);
        let mb = rt.external_mailbox();
        let echo = rt.spawn(PeId(3), Box::new(Echo)).unwrap();
        rt.ledger().reset();
        rt.send(
            echo,
            Msg::Ping {
                reply_to: mb.id,
                n: 1,
            },
        )
        .unwrap();
        mb.recv_timeout(Duration::from_secs(5)).unwrap();
        // Client send goes coordinator(pe0)→pe3, the reply pe3→pe0: both
        // cross the interconnect and are metered.
        assert_eq!(rt.ledger().remote_messages(), 2);
        rt.ledger().reset();

        // Process-to-process across PEs IS metered.
        struct Fwd {
            peer: ProcessId,
        }
        impl Process<Msg> for Fwd {
            fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                if let Msg::Ping { reply_to, n } = msg {
                    ctx.send(
                        self.peer,
                        Msg::Ping {
                            reply_to,
                            n,
                        },
                    )
                    .unwrap();
                }
            }
        }
        let far_echo = rt.spawn(PeId(2), Box::new(Echo)).unwrap();
        let fwd = rt.spawn(PeId(0), Box::new(Fwd { peer: far_echo })).unwrap();
        rt.ledger().reset();
        rt.send(
            fwd,
            Msg::Ping {
                reply_to: mb.id,
                n: 5,
            },
        )
        .unwrap();
        mb.recv_timeout(Duration::from_secs(5)).unwrap();
        // pe0→fwd(pe0) is local; fwd(pe0)→echo(pe2) and the reply
        // echo(pe2)→mailbox(pe0) are remote.
        assert_eq!(rt.ledger().remote_messages(), 2);
        assert!(rt.ledger().byte_hops() > 0);
        rt.shutdown();
    }

    #[test]
    fn dead_process_messages_are_dropped_not_lost_panics() {
        let rt = runtime(2);
        let echo = rt.spawn(PeId(0), Box::new(Echo)).unwrap();
        // Kill via a helper process.
        struct Killer {
            victim: ProcessId,
            notify: ProcessId,
        }
        impl Process<Msg> for Killer {
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx<'_, Msg>) {
                ctx.kill(self.victim);
                ctx.send(self.notify, Msg::Done).unwrap();
            }
        }
        let mb = rt.external_mailbox();
        let killer = rt
            .spawn(
                PeId(0),
                Box::new(Killer {
                    victim: echo,
                    notify: mb.id,
                }),
            )
            .unwrap();
        rt.send(killer, Msg::Done).unwrap();
        mb.recv_timeout(Duration::from_secs(5)).unwrap();
        // Now the echo process is gone: sends fail fast.
        let res = rt.send(
            echo,
            Msg::Ping {
                reply_to: mb.id,
                n: 1,
            },
        );
        assert!(res.is_err());
        rt.shutdown();
    }

    #[test]
    fn dropped_mailbox_unregisters_and_fails_senders_fast() {
        let rt = runtime(2);
        let mb = rt.external_mailbox();
        let id = mb.id;
        // Live mailbox: sends are delivered and metered.
        rt.send(id, Msg::Done).unwrap();
        assert!(mb.recv_timeout(Duration::from_secs(5)).is_ok());
        rt.ledger().reset();
        drop(mb);
        // Dropped mailbox: the address is gone, senders error instead of
        // streaming into a void, and nothing phantom is metered.
        let res = rt.send(id, Msg::Done);
        assert!(res.is_err(), "send to dropped mailbox must fail");
        assert_eq!(rt.ledger().remote_messages(), 0);
        rt.shutdown();
    }

    #[test]
    fn spawn_on_bogus_pe_is_an_error() {
        let rt = runtime(2);
        assert!(rt.spawn(PeId(9), Box::new(Echo)).is_err());
        rt.shutdown();
    }
}
