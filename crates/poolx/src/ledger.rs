//! Communication metering for the POOL-X runtime.

use parking_lot::Mutex;
use prisma_multicomputer::CostModel;
use prisma_types::PeId;

/// Per-run ledger of inter-process traffic, kept in terms of the
/// multi-computer's cost model: local sends are free, remote sends charge
/// `bytes × hops` and estimated transfer nanoseconds.
///
/// The data-allocation experiments (E8) compare placements by exactly
/// these numbers, mirroring the paper's "proper balance between storage,
/// processing, and communication".
#[derive(Debug)]
pub struct TrafficLedger {
    cost: CostModel,
    inner: Mutex<LedgerInner>,
}

#[derive(Debug, Default)]
struct LedgerInner {
    local_messages: u64,
    remote_messages: u64,
    remote_bytes: u64,
    byte_hops: u64,
    est_transfer_ns: f64,
    per_pe_sent: Vec<u64>,
    /// Remote payload bytes sent per source PE.
    per_pe_sent_bytes: Vec<u64>,
    /// Remote payload bytes received per destination PE.
    per_pe_recv_bytes: Vec<u64>,
}

impl TrafficLedger {
    /// Ledger over a cost model.
    pub fn new(cost: CostModel) -> Self {
        let n = cost.topology().num_pes();
        TrafficLedger {
            cost,
            inner: Mutex::new(LedgerInner {
                per_pe_sent: vec![0; n],
                per_pe_sent_bytes: vec![0; n],
                per_pe_recv_bytes: vec![0; n],
                ..LedgerInner::default()
            }),
        }
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Record a message of `bytes` from `src` to `dst`.
    pub fn record(&self, src: PeId, dst: PeId, bytes: usize) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.per_pe_sent.get_mut(src.index()) {
            *slot += 1;
        }
        if src == dst {
            inner.local_messages += 1;
            return;
        }
        inner.remote_messages += 1;
        inner.remote_bytes += bytes as u64;
        if let Some(slot) = inner.per_pe_sent_bytes.get_mut(src.index()) {
            *slot += bytes as u64;
        }
        if let Some(slot) = inner.per_pe_recv_bytes.get_mut(dst.index()) {
            *slot += bytes as u64;
        }
        inner.byte_hops += self.cost.byte_hops(src, dst, bytes as u64);
        inner.est_transfer_ns += self.cost.transfer_ns(src, dst, bytes as u64);
    }

    /// Messages delivered PE-locally (free in the paper's model).
    pub fn local_messages(&self) -> u64 {
        self.inner.lock().local_messages
    }

    /// Messages that crossed the interconnect.
    pub fn remote_messages(&self) -> u64 {
        self.inner.lock().remote_messages
    }

    /// Total remote payload bytes.
    pub fn remote_bytes(&self) -> u64 {
        self.inner.lock().remote_bytes
    }

    /// Σ bytes×hops — the placement-quality metric.
    pub fn byte_hops(&self) -> u64 {
        self.inner.lock().byte_hops
    }

    /// Σ modelled transfer time (ns) on an idle network.
    pub fn est_transfer_ns(&self) -> f64 {
        self.inner.lock().est_transfer_ns
    }

    /// Messages sent per PE (load-balance signal).
    pub fn per_pe_sent(&self) -> Vec<u64> {
        self.inner.lock().per_pe_sent.clone()
    }

    /// Remote payload bytes one PE sent and received — `(sent, recv)`.
    /// `pe_bytes(COORDINATOR_PE)` is the E7 experiment's measure of how
    /// much data transits the coordinator.
    pub fn pe_bytes(&self, pe: PeId) -> (u64, u64) {
        let inner = self.inner.lock();
        (
            inner.per_pe_sent_bytes.get(pe.index()).copied().unwrap_or(0),
            inner.per_pe_recv_bytes.get(pe.index()).copied().unwrap_or(0),
        )
    }

    /// Zero all counters.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let n = inner.per_pe_sent.len();
        *inner = LedgerInner {
            per_pe_sent: vec![0; n],
            per_pe_sent_bytes: vec![0; n],
            per_pe_recv_bytes: vec![0; n],
            ..LedgerInner::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::MachineConfig;

    fn ledger() -> TrafficLedger {
        TrafficLedger::new(CostModel::new(&MachineConfig::paper_prototype()).unwrap())
    }

    #[test]
    fn local_sends_are_free() {
        let l = ledger();
        l.record(PeId(3), PeId(3), 10_000);
        assert_eq!(l.local_messages(), 1);
        assert_eq!(l.remote_bytes(), 0);
        assert_eq!(l.byte_hops(), 0);
    }

    #[test]
    fn remote_sends_charge_distance() {
        let l = ledger();
        l.record(PeId(0), PeId(1), 100); // 1 hop
        l.record(PeId(0), PeId(63), 100); // 14 hops on the 8x8 mesh
        assert_eq!(l.remote_messages(), 2);
        assert_eq!(l.remote_bytes(), 200);
        assert_eq!(l.byte_hops(), 100 + 1400);
        assert!(l.est_transfer_ns() > 0.0);
        assert_eq!(l.per_pe_sent()[0], 2);
        assert_eq!(l.pe_bytes(PeId(0)), (200, 0));
        assert_eq!(l.pe_bytes(PeId(63)), (0, 100));
        l.reset();
        assert_eq!(l.remote_messages(), 0);
        assert_eq!(l.pe_bytes(PeId(0)), (0, 0));
    }
}
