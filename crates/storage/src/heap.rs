//! The slotted main-memory tuple store backing every fragment.

use prisma_types::Tuple;

/// Record identifier: a stable slot number within one fragment's heap.
///
/// Rids stay valid across deletions of *other* tuples (slots are reused via
/// a free list, so a Rid is only meaningful while its tuple is live —
/// markings and indexes are maintained on mutation, mirroring the paper's
/// "markings and cursor maintenance" duty of an OFM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid(pub u32);

impl Rid {
    /// Slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Main-memory tuple heap with slot reuse and byte accounting.
#[derive(Debug, Default, Clone)]
pub struct TupleHeap {
    slots: Vec<Option<Tuple>>,
    free: Vec<u32>,
    live: usize,
    bytes: usize,
}

impl TupleHeap {
    /// Empty heap.
    pub fn new() -> Self {
        TupleHeap::default()
    }

    /// Number of live tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live tuples remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Approximate bytes of tuple payload held (used for the per-PE memory
    /// ledger).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Insert a tuple, returning its Rid. Reuses a free slot when one
    /// exists so long-lived fragments do not grow monotonically.
    pub fn insert(&mut self, tuple: Tuple) -> Rid {
        self.bytes += tuple.byte_size();
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(tuple);
            Rid(slot)
        } else {
            self.slots.push(Some(tuple));
            Rid((self.slots.len() - 1) as u32)
        }
    }

    /// Fetch a live tuple.
    #[inline]
    pub fn get(&self, rid: Rid) -> Option<&Tuple> {
        self.slots.get(rid.index()).and_then(Option::as_ref)
    }

    /// Delete a tuple, returning it if it was live.
    pub fn delete(&mut self, rid: Rid) -> Option<Tuple> {
        let slot = self.slots.get_mut(rid.index())?;
        let t = slot.take()?;
        self.bytes -= t.byte_size();
        self.live -= 1;
        self.free.push(rid.0);
        Some(t)
    }

    /// Replace the tuple at `rid`, returning the old one. The Rid remains
    /// valid (indexes referencing it must be updated by the caller).
    pub fn update(&mut self, rid: Rid, tuple: Tuple) -> Option<Tuple> {
        let slot = self.slots.get_mut(rid.index())?;
        let old = slot.take()?;
        self.bytes = self.bytes - old.byte_size() + tuple.byte_size();
        *slot = Some(tuple);
        Some(old)
    }

    /// Iterate `(Rid, &Tuple)` over live tuples in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Rid, &Tuple)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|t| (Rid(i as u32), t)))
    }

    /// All live Rids in slot order (snapshot for cursors).
    pub fn rids(&self) -> Vec<Rid> {
        self.iter().map(|(r, _)| r).collect()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::tuple;

    #[test]
    fn insert_get_delete() {
        let mut h = TupleHeap::new();
        let r1 = h.insert(tuple![1, "a"]);
        let r2 = h.insert(tuple![2, "b"]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(r1).unwrap().get(0).as_int(), Some(1));
        let gone = h.delete(r1).unwrap();
        assert_eq!(gone.get(1).as_str(), Some("a"));
        assert!(h.get(r1).is_none());
        assert_eq!(h.len(), 1);
        assert!(h.get(r2).is_some());
        // Double delete is a no-op.
        assert!(h.delete(r1).is_none());
    }

    #[test]
    fn slots_are_reused() {
        let mut h = TupleHeap::new();
        let r1 = h.insert(tuple![1]);
        h.insert(tuple![2]);
        h.delete(r1);
        let r3 = h.insert(tuple![3]);
        assert_eq!(r1, r3, "freed slot must be reused");
        assert_eq!(h.slots.len(), 2);
    }

    #[test]
    fn byte_accounting_tracks_mutations() {
        let mut h = TupleHeap::new();
        assert_eq!(h.byte_size(), 0);
        let r = h.insert(tuple![1, "hello"]);
        let sz = h.byte_size();
        assert!(sz > 0);
        h.update(r, tuple![1, "a much longer string than before"]).unwrap();
        assert!(h.byte_size() > sz);
        h.delete(r);
        assert_eq!(h.byte_size(), 0);
    }

    #[test]
    fn iteration_skips_holes() {
        let mut h = TupleHeap::new();
        let rids: Vec<_> = (0..10).map(|i| h.insert(tuple![i])).collect();
        for r in rids.iter().step_by(2) {
            h.delete(*r);
        }
        let vals: Vec<i64> = h
            .iter()
            .map(|(_, t)| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 3, 5, 7, 9]);
        assert_eq!(h.rids().len(), 5);
    }

    #[test]
    fn update_keeps_rid_valid() {
        let mut h = TupleHeap::new();
        let r = h.insert(tuple![1]);
        let old = h.update(r, tuple![2]).unwrap();
        assert_eq!(old, tuple![1]);
        assert_eq!(h.get(r).unwrap(), &tuple![2]);
        assert_eq!(h.len(), 1);
    }
}
