//! Equality index: multi-map from key values to Rids.

use prisma_types::{Tuple, Value};

use crate::heap::Rid;
use crate::FastMap;

/// Hash index over one or more key columns of a fragment.
///
/// The index is a secondary structure: it stores Rids into the fragment's
/// [`crate::TupleHeap`] and must be maintained on every mutation (the OFM
/// does this). Duplicate keys are supported — each key maps to a postings
/// list.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_cols: Vec<usize>,
    map: FastMap<Vec<Value>, Vec<Rid>>,
    entries: usize,
}

impl HashIndex {
    /// New index on the given key columns (in key order).
    pub fn new(key_cols: Vec<usize>) -> Self {
        HashIndex {
            key_cols,
            map: FastMap::default(),
            entries: 0,
        }
    }

    /// Columns this index covers.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of indexed (key, rid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys, the statistic the optimizer's selectivity
    /// estimator reads.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Index `tuple` under its key at `rid`.
    pub fn insert(&mut self, tuple: &Tuple, rid: Rid) {
        let key = tuple.key(&self.key_cols);
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    /// Remove the entry for `tuple`/`rid`; returns whether it was present.
    pub fn remove(&mut self, tuple: &Tuple, rid: Rid) -> bool {
        let key = tuple.key(&self.key_cols);
        if let Some(list) = self.map.get_mut(&key) {
            if let Some(pos) = list.iter().position(|&r| r == rid) {
                list.swap_remove(pos);
                if list.is_empty() {
                    self.map.remove(&key);
                }
                self.entries -= 1;
                return true;
            }
        }
        false
    }

    /// Rids whose tuples have exactly this key.
    pub fn lookup(&self, key: &[Value]) -> &[Rid] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Point lookup by single value (for single-column indexes).
    pub fn lookup_one(&self, v: &Value) -> &[Rid] {
        self.map
            .get(std::slice::from_ref(v))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::tuple;

    #[test]
    fn insert_lookup_remove() {
        let mut idx = HashIndex::new(vec![0]);
        let t1 = tuple![7, "a"];
        let t2 = tuple![7, "b"];
        let t3 = tuple![8, "c"];
        idx.insert(&t1, Rid(0));
        idx.insert(&t2, Rid(1));
        idx.insert(&t3, Rid(2));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.distinct_keys(), 2);
        let hits = idx.lookup_one(&Value::Int(7));
        assert_eq!(hits.len(), 2);
        assert!(idx.remove(&t1, Rid(0)));
        assert_eq!(idx.lookup_one(&Value::Int(7)), &[Rid(1)]);
        assert!(!idx.remove(&t1, Rid(0)), "double remove must report false");
        assert!(idx.remove(&t3, Rid(2)));
        assert!(idx.lookup_one(&Value::Int(8)).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn composite_keys() {
        let mut idx = HashIndex::new(vec![0, 2]);
        let t = tuple![1, "x", 2];
        idx.insert(&t, Rid(5));
        assert_eq!(idx.lookup(&[Value::Int(1), Value::Int(2)]), &[Rid(5)]);
        assert!(idx.lookup(&[Value::Int(1), Value::Int(3)]).is_empty());
    }

    #[test]
    fn mixed_numeric_keys_unify() {
        // Int(2) and Double(2.0) are Value-equal and hash identically, so
        // a probe with either representation finds the row.
        let mut idx = HashIndex::new(vec![0]);
        idx.insert(&tuple![2], Rid(0));
        assert_eq!(idx.lookup_one(&Value::Double(2.0)), &[Rid(0)]);
    }
}
