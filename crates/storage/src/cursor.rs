//! Markings and cursor maintenance (paper §2.5).
//!
//! A **marking** is a named, persistent subset of a fragment's tuples —
//! PRISMA's mechanism for letting a multi-step query (or a transaction)
//! pin an intermediate selection on the base fragment instead of copying
//! it. A **cursor** is a stable iterator over a marking or over the whole
//! fragment; the OFM maintains both across concurrent mutations: deleting
//! a tuple removes it from every marking, and cursors never observe a
//! deleted tuple.

use crate::heap::{Rid, TupleHeap};
use crate::FastSet;

/// A named persistent subset of a fragment (a set of Rids).
#[derive(Debug, Clone, Default)]
pub struct Marking {
    rids: FastSet<Rid>,
}

impl Marking {
    /// Empty marking.
    pub fn new() -> Self {
        Marking::default()
    }

    /// Build from an iterator of Rids.
    pub fn from_rids(rids: impl IntoIterator<Item = Rid>) -> Self {
        Marking {
            rids: rids.into_iter().collect(),
        }
    }

    /// Add a Rid.
    pub fn mark(&mut self, rid: Rid) {
        self.rids.insert(rid);
    }

    /// Remove a Rid (e.g. when its tuple is deleted).
    pub fn unmark(&mut self, rid: Rid) {
        self.rids.remove(&rid);
    }

    /// Membership test.
    pub fn contains(&self, rid: Rid) -> bool {
        self.rids.contains(&rid)
    }

    /// Number of marked tuples.
    pub fn len(&self) -> usize {
        self.rids.len()
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// Set intersection — conjunctive refinement of two markings.
    pub fn and(&self, other: &Marking) -> Marking {
        Marking {
            rids: self.rids.intersection(&other.rids).copied().collect(),
        }
    }

    /// Set union — disjunctive combination.
    pub fn or(&self, other: &Marking) -> Marking {
        Marking {
            rids: self.rids.union(&other.rids).copied().collect(),
        }
    }

    /// Set difference `self \ other`.
    pub fn minus(&self, other: &Marking) -> Marking {
        Marking {
            rids: self.rids.difference(&other.rids).copied().collect(),
        }
    }

    /// Rids in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = Rid> + '_ {
        self.rids.iter().copied()
    }

    /// Rids sorted ascending (deterministic order for cursors and tests).
    pub fn sorted_rids(&self) -> Vec<Rid> {
        let mut v: Vec<Rid> = self.rids.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

/// A stable scan position over a snapshot of Rids.
///
/// The cursor validates each Rid against the heap at `next()` time, so
/// tuples deleted after the cursor was opened are silently skipped rather
/// than dangling — the OFM's "cursor maintenance" obligation.
#[derive(Debug, Clone)]
pub struct Cursor {
    rids: Vec<Rid>,
    pos: usize,
}

impl Cursor {
    /// Cursor over the whole fragment (snapshot of current live Rids).
    pub fn over_heap(heap: &TupleHeap) -> Self {
        Cursor {
            rids: heap.rids(),
            pos: 0,
        }
    }

    /// Cursor over a marking, in ascending Rid order.
    pub fn over_marking(marking: &Marking) -> Self {
        Cursor {
            rids: marking.sorted_rids(),
            pos: 0,
        }
    }

    /// Next live tuple's Rid, skipping tuples deleted since the snapshot.
    pub fn next(&mut self, heap: &TupleHeap) -> Option<Rid> {
        while self.pos < self.rids.len() {
            let rid = self.rids[self.pos];
            self.pos += 1;
            if heap.get(rid).is_some() {
                return Some(rid);
            }
        }
        None
    }

    /// Remaining snapshot length (upper bound on tuples still to come).
    pub fn remaining(&self) -> usize {
        self.rids.len() - self.pos
    }

    /// Rewind to the start of the snapshot.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::tuple;

    #[test]
    fn marking_set_algebra() {
        let a = Marking::from_rids([Rid(1), Rid(2), Rid(3)]);
        let b = Marking::from_rids([Rid(2), Rid(3), Rid(4)]);
        assert_eq!(a.and(&b).sorted_rids(), vec![Rid(2), Rid(3)]);
        assert_eq!(a.or(&b).len(), 4);
        assert_eq!(a.minus(&b).sorted_rids(), vec![Rid(1)]);
    }

    #[test]
    fn cursor_skips_concurrently_deleted_tuples() {
        let mut heap = TupleHeap::new();
        let rids: Vec<Rid> = (0..5).map(|i| heap.insert(tuple![i])).collect();
        let mut cur = Cursor::over_heap(&heap);
        assert_eq!(cur.next(&heap), Some(rids[0]));
        // Delete a tuple the cursor has not reached yet.
        heap.delete(rids[2]);
        let seen: Vec<Rid> = std::iter::from_fn(|| cur.next(&heap)).collect();
        assert_eq!(seen, vec![rids[1], rids[3], rids[4]]);
    }

    #[test]
    fn cursor_over_marking_is_ordered_and_rewindable() {
        let mut heap = TupleHeap::new();
        let rids: Vec<Rid> = (0..4).map(|i| heap.insert(tuple![i])).collect();
        let m = Marking::from_rids([rids[3], rids[1]]);
        let mut cur = Cursor::over_marking(&m);
        assert_eq!(cur.next(&heap), Some(rids[1]));
        assert_eq!(cur.next(&heap), Some(rids[3]));
        assert_eq!(cur.next(&heap), None);
        cur.rewind();
        assert_eq!(cur.remaining(), 2);
        assert_eq!(cur.next(&heap), Some(rids[1]));
    }

    #[test]
    fn unmark_on_delete_protocol() {
        // The OFM deletes a tuple and unmarks it everywhere; a cursor over
        // the marking then skips it even though the snapshot predates the
        // delete.
        let mut heap = TupleHeap::new();
        let r0 = heap.insert(tuple![0]);
        let r1 = heap.insert(tuple![1]);
        let mut m = Marking::from_rids([r0, r1]);
        let mut cur = Cursor::over_marking(&m);
        heap.delete(r0);
        m.unmark(r0);
        assert_eq!(cur.next(&heap), Some(r1));
        assert_eq!(cur.next(&heap), None);
        assert_eq!(m.len(), 1);
    }
}
