//! Scalar expressions: AST, type checker, interpreter, and the **expression
//! compiler**.
//!
//! Paper §2.5: "each OFM is equipped with an expression compiler to
//! generate routines dynamically. … it avoids the otherwise excessive
//! interpretation overhead incurred by a query expression interpreter."
//!
//! PRISMA generated POOL-X code at run time; the closest safe-Rust
//! equivalent is **closure composition**: [`ScalarExpr::compile`] folds the
//! AST once into a tree of `Box<dyn Fn>` whose evaluation performs no
//! enum-discriminant dispatch, no column re-resolution and no Result
//! plumbing on the hot path. [`ScalarExpr::eval`] is the tree-walking
//! interpreter kept as the baseline; experiment E5 measures the gap.

use std::fmt;
use std::sync::Arc;

use prisma_types::{DataType, PrismaError, Result, Schema, Tuple, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to an ordering produced by `Value::sql_cmp`.
    #[inline]
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// `a op b` ⇒ `b (flip op) a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "%",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of one input schema.
///
/// Column references are *ordinal* (resolved by the front end against the
/// input schema), so evaluation never touches names.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference by ordinal.
    Col(usize),
    /// Literal constant.
    Lit(Value),
    /// Comparison with SQL three-valued logic.
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Kleene AND.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Kleene OR.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Kleene NOT.
    Not(Box<ScalarExpr>),
    /// `IS NULL` (never unknown).
    IsNull(Box<ScalarExpr>),
    /// Unary minus.
    Neg(Box<ScalarExpr>),
}

/// A compiled scalar routine: tuple in, value out.
pub type CompiledExpr = Arc<dyn Fn(&Tuple) -> Value + Send + Sync>;
/// A compiled predicate routine: tuple in, keep/drop out (SQL semantics —
/// NULL/unknown filters the row out).
pub type CompiledPredicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

impl ScalarExpr {
    // ---------- constructors (builder helpers for tests & front ends) ----

    /// Column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Comparison node.
    pub fn cmp(op: CmpOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// `l = r`.
    pub fn eq(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, l, r)
    }

    /// Conjunction.
    pub fn and(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::And(Box::new(l), Box::new(r))
    }

    /// Disjunction.
    pub fn or(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Or(Box::new(l), Box::new(r))
    }

    /// Arithmetic node.
    pub fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Arith(op, Box::new(l), Box::new(r))
    }

    /// Fold a list of predicates into a conjunction (`true` for empty).
    pub fn conjunction(mut preds: Vec<ScalarExpr>) -> ScalarExpr {
        match preds.len() {
            0 => ScalarExpr::lit(true),
            1 => preds.pop().expect("len checked"),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, ScalarExpr::and)
            }
        }
    }

    /// Split a conjunction into its flattened factors.
    pub fn split_conjunction(self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::And(l, r) => {
                let mut v = l.split_conjunction();
                v.extend(r.split_conjunction());
                v
            }
            other => vec![other],
        }
    }

    // ---------- analysis ----------

    /// All column ordinals referenced.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let ScalarExpr::Col(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Pre-order visit of all nodes.
    pub fn visit(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Col(_) | ScalarExpr::Lit(_) => {}
            ScalarExpr::Cmp(_, l, r) | ScalarExpr::Arith(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) | ScalarExpr::Neg(e) => e.visit(f),
        }
    }

    /// Rewrite column ordinals through `map` (used when predicates are
    /// pushed through projections/joins).
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => ScalarExpr::Col(map(*i)),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Cmp(op, l, r) => {
                ScalarExpr::cmp(*op, l.remap_columns(map), r.remap_columns(map))
            }
            ScalarExpr::Arith(op, l, r) => {
                ScalarExpr::arith(*op, l.remap_columns(map), r.remap_columns(map))
            }
            ScalarExpr::And(l, r) => ScalarExpr::and(l.remap_columns(map), r.remap_columns(map)),
            ScalarExpr::Or(l, r) => ScalarExpr::or(l.remap_columns(map), r.remap_columns(map)),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_columns(map))),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.remap_columns(map))),
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.remap_columns(map))),
        }
    }

    /// Static type of the expression against `schema`.
    ///
    /// Comparisons and boolean connectives yield `Bool`; arithmetic yields
    /// `Int` unless either side is `Double`. Type errors (comparing string
    /// to int, arithmetic on bool, ...) are rejected here, before any tuple
    /// is touched.
    pub fn check(&self, schema: &Schema) -> Result<DataType> {
        match self {
            ScalarExpr::Col(i) => schema
                .column(*i)
                .map(|c| c.dtype)
                .ok_or_else(|| PrismaError::ExprType(format!("column ordinal {i} out of range"))),
            ScalarExpr::Lit(v) => Ok(v.data_type().unwrap_or(DataType::Bool)),
            ScalarExpr::Cmp(_, l, r) => {
                let (lt, rt) = (l.check(schema)?, r.check(schema)?);
                let compatible = lt == rt || (lt.is_numeric() && rt.is_numeric());
                if !compatible {
                    return Err(PrismaError::ExprType(format!(
                        "cannot compare {lt} with {rt}"
                    )));
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::Arith(op, l, r) => {
                let (lt, rt) = (l.check(schema)?, r.check(schema)?);
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(PrismaError::ExprType(format!(
                        "arithmetic {op} needs numeric operands, got {lt} and {rt}"
                    )));
                }
                if lt == DataType::Double || rt == DataType::Double {
                    Ok(DataType::Double)
                } else {
                    Ok(DataType::Int)
                }
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                for side in [l, r] {
                    let t = side.check(schema)?;
                    if t != DataType::Bool {
                        return Err(PrismaError::ExprType(format!(
                            "boolean connective over {t}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::Not(e) => {
                let t = e.check(schema)?;
                if t != DataType::Bool {
                    return Err(PrismaError::ExprType(format!("NOT over {t}")));
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::IsNull(e) => {
                e.check(schema)?;
                Ok(DataType::Bool)
            }
            ScalarExpr::Neg(e) => {
                let t = e.check(schema)?;
                if !t.is_numeric() {
                    return Err(PrismaError::ExprType(format!("unary minus over {t}")));
                }
                Ok(t)
            }
        }
    }

    // ---------- the interpreter (baseline for E5) ----------

    /// Tree-walking evaluation: one enum dispatch per node per tuple.
    /// NULL propagates through comparisons and arithmetic; AND/OR use
    /// Kleene three-valued logic represented as `Value::Null` = unknown.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        Ok(match self {
            ScalarExpr::Col(i) => tuple.get(*i).clone(),
            ScalarExpr::Lit(v) => v.clone(),
            ScalarExpr::Cmp(op, l, r) => {
                let (a, b) = (l.eval(tuple)?, r.eval(tuple)?);
                match a.sql_cmp(&b) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.test(ord)),
                }
            }
            ScalarExpr::Arith(op, l, r) => {
                let (a, b) = (l.eval(tuple)?, r.eval(tuple)?);
                if a.is_null() || b.is_null() {
                    Value::Null
                } else {
                    apply_arith(*op, &a, &b)?
                }
            }
            ScalarExpr::And(l, r) => kleene_and(l.eval(tuple)?, r.eval(tuple)?),
            ScalarExpr::Or(l, r) => kleene_or(l.eval(tuple)?, r.eval(tuple)?),
            ScalarExpr::Not(e) => match e.eval(tuple)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                other => {
                    return Err(PrismaError::ExprType(format!("NOT over {other}")));
                }
            },
            ScalarExpr::IsNull(e) => Value::Bool(e.eval(tuple)?.is_null()),
            ScalarExpr::Neg(e) => match e.eval(tuple)? {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(|| {
                    PrismaError::Arithmetic("negation overflow".into())
                })?),
                Value::Double(d) => Value::Double(-d),
                other => return Err(PrismaError::ExprType(format!("unary minus over {other}"))),
            },
        })
    }

    /// Evaluate as a filter predicate: unknown (NULL) rejects the row.
    pub fn eval_predicate(&self, tuple: &Tuple) -> Result<bool> {
        Ok(matches!(self.eval(tuple)?, Value::Bool(true)))
    }

    // ---------- the compiler (paper §2.5) ----------

    /// Compile to a closure tree. The expression must already type-check:
    /// compiled routines omit the checks the interpreter performs per
    /// tuple (that is the point), so runtime type surprises degrade to
    /// NULL rather than error.
    pub fn compile(&self) -> CompiledExpr {
        match self {
            ScalarExpr::Col(i) => {
                let i = *i;
                Arc::new(move |t| t.get(i).clone())
            }
            ScalarExpr::Lit(v) => {
                let v = v.clone();
                Arc::new(move |_| v.clone())
            }
            ScalarExpr::Cmp(op, l, r) => compile_cmp(*op, l, r),
            ScalarExpr::Arith(op, l, r) => {
                let (op, lf, rf) = (*op, l.compile(), r.compile());
                Arc::new(move |t| {
                    let (a, b) = (lf(t), rf(t));
                    if a.is_null() || b.is_null() {
                        return Value::Null;
                    }
                    apply_arith(op, &a, &b).unwrap_or(Value::Null)
                })
            }
            ScalarExpr::And(l, r) => {
                let (lf, rf) = (l.compile(), r.compile());
                Arc::new(move |t| kleene_and(lf(t), rf(t)))
            }
            ScalarExpr::Or(l, r) => {
                let (lf, rf) = (l.compile(), r.compile());
                Arc::new(move |t| kleene_or(lf(t), rf(t)))
            }
            ScalarExpr::Not(e) => {
                let f = e.compile();
                Arc::new(move |t| match f(t) {
                    Value::Bool(b) => Value::Bool(!b),
                    _ => Value::Null,
                })
            }
            ScalarExpr::IsNull(e) => {
                let f = e.compile();
                Arc::new(move |t| Value::Bool(f(t).is_null()))
            }
            ScalarExpr::Neg(e) => {
                let f = e.compile();
                Arc::new(move |t| match f(t) {
                    Value::Int(i) => i.checked_neg().map(Value::Int).unwrap_or(Value::Null),
                    Value::Double(d) => Value::Double(-d),
                    _ => Value::Null,
                })
            }
        }
    }

    /// Compile to a boolean filter routine (unknown rejects).
    ///
    /// Fast paths: the very common shapes `col <op> literal` and
    /// `col <op> col` compile to closures that read the column slots
    /// directly with zero intermediate `Value` clones — this is where the
    /// interpretation overhead the paper talks about actually goes away.
    pub fn compile_predicate(&self) -> CompiledPredicate {
        // Fast path: Cmp(col, lit) / Cmp(lit, col) / Cmp(col, col).
        if let ScalarExpr::Cmp(op, l, r) = self {
            match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(i), ScalarExpr::Lit(v)) if !v.is_null() => {
                    let (i, v, op) = (*i, v.clone(), *op);
                    return Arc::new(move |t| {
                        t.get(i).sql_cmp(&v).map(|o| op.test(o)).unwrap_or(false)
                    });
                }
                (ScalarExpr::Lit(v), ScalarExpr::Col(i)) if !v.is_null() => {
                    let (i, v, op) = (*i, v.clone(), op.flip());
                    return Arc::new(move |t| {
                        t.get(i).sql_cmp(&v).map(|o| op.test(o)).unwrap_or(false)
                    });
                }
                (ScalarExpr::Col(i), ScalarExpr::Col(j)) => {
                    let (i, j, op) = (*i, *j, *op);
                    return Arc::new(move |t| {
                        t.get(i)
                            .sql_cmp(t.get(j))
                            .map(|o| op.test(o))
                            .unwrap_or(false)
                    });
                }
                _ => {}
            }
        }
        // Fast path: conjunction of two compiled predicates short-circuits.
        if let ScalarExpr::And(l, r) = self {
            let (lf, rf) = (l.compile_predicate(), r.compile_predicate());
            return Arc::new(move |t| lf(t) && rf(t));
        }
        let f = self.compile();
        Arc::new(move |t| matches!(f(t), Value::Bool(true)))
    }
}

fn compile_cmp(op: CmpOp, l: &ScalarExpr, r: &ScalarExpr) -> CompiledExpr {
    let (lf, rf) = (l.compile(), r.compile());
    Arc::new(move |t| {
        let (a, b) = (lf(t), rf(t));
        match a.sql_cmp(&b) {
            None => Value::Null,
            Some(ord) => Value::Bool(op.test(ord)),
        }
    })
}

fn apply_arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    let res = match op {
        ArithOp::Add => a.add(b),
        ArithOp::Sub => a.sub(b),
        ArithOp::Mul => a.mul(b),
        ArithOp::Div => a.div(b),
        ArithOp::Rem => a.rem(b),
    };
    res.ok_or_else(|| PrismaError::Arithmetic(format!("{a} {op} {b}")))
}

fn kleene_and(a: Value, b: Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn kleene_or(a: Value, b: Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Col(i) => write!(f, "#{i}"),
            ScalarExpr::Lit(v) => write!(f, "{v}"),
            ScalarExpr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::And(l, r) => write!(f, "({l} AND {r})"),
            ScalarExpr::Or(l, r) => write!(f, "({l} OR {r})"),
            ScalarExpr::Not(e) => write!(f, "(NOT {e})"),
            ScalarExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Double),
            Column::new("s", DataType::Str),
            Column::nullable("n", DataType::Int),
        ])
    }

    fn row() -> Tuple {
        tuple![10, 2.5, "hi"].concat(&Tuple::new(vec![Value::Null]))
    }

    #[test]
    fn typecheck_accepts_and_rejects() {
        let s = schema();
        assert_eq!(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1))
                .check(&s)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(0), ScalarExpr::col(1))
                .check(&s)
                .unwrap(),
            DataType::Double
        );
        assert!(ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::col(2))
            .check(&s)
            .is_err());
        assert!(
            ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(2), ScalarExpr::lit(1))
                .check(&s)
                .is_err()
        );
        assert!(ScalarExpr::Not(Box::new(ScalarExpr::col(0))).check(&s).is_err());
        assert!(ScalarExpr::col(9).check(&s).is_err());
    }

    #[test]
    fn interpreter_and_compiler_agree() {
        let exprs = vec![
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5)),
            ScalarExpr::and(
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(1), ScalarExpr::lit(2.0)),
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(2), ScalarExpr::lit("hi")),
            ),
            ScalarExpr::or(
                ScalarExpr::IsNull(Box::new(ScalarExpr::col(3))),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(0)),
            ),
            ScalarExpr::arith(
                ArithOp::Mul,
                ScalarExpr::col(0),
                ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(1), ScalarExpr::lit(0.5)),
            ),
            ScalarExpr::Neg(Box::new(ScalarExpr::col(0))),
            // NULL propagation through comparison and arithmetic.
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(3), ScalarExpr::lit(1)),
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(3), ScalarExpr::lit(1)),
        ];
        let t = row();
        for e in exprs {
            let interp = e.eval(&t).unwrap();
            let compiled = e.compile()(&t);
            assert_eq!(interp, compiled, "disagreement on {e}");
        }
    }

    #[test]
    fn predicate_semantics_null_rejects() {
        let t = row();
        // n = 1 is unknown -> row filtered out by both paths.
        let e = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(3), ScalarExpr::lit(1));
        assert!(!e.eval_predicate(&t).unwrap());
        assert!(!e.compile_predicate()(&t));
        // NOT(unknown) is still unknown -> rejected.
        let ne = ScalarExpr::Not(Box::new(e));
        assert!(!ne.eval_predicate(&t).unwrap());
        assert!(!ne.compile_predicate()(&t));
    }

    #[test]
    fn kleene_logic_tables() {
        let (t, f, u) = (Value::Bool(true), Value::Bool(false), Value::Null);
        assert_eq!(kleene_and(f.clone(), u.clone()), Value::Bool(false));
        assert_eq!(kleene_and(t.clone(), u.clone()), Value::Null);
        assert_eq!(kleene_or(t.clone(), u.clone()), Value::Bool(true));
        assert_eq!(kleene_or(f.clone(), u.clone()), Value::Null);
        assert_eq!(kleene_or(f.clone(), f.clone()), Value::Bool(false));
        assert_eq!(kleene_and(t.clone(), t), Value::Bool(true));
    }

    #[test]
    fn fast_path_predicates_match_general_path() {
        let t = row();
        for e in [
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::lit(5), ScalarExpr::col(0)),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1)),
        ] {
            assert_eq!(e.compile_predicate()(&t), e.eval_predicate(&t).unwrap());
        }
    }

    #[test]
    fn division_by_zero_is_error_interpreted_null_compiled() {
        let e = ScalarExpr::arith(ArithOp::Div, ScalarExpr::col(0), ScalarExpr::lit(0));
        let t = row();
        assert!(matches!(e.eval(&t), Err(PrismaError::Arithmetic(_))));
        assert_eq!(e.compile()(&t), Value::Null);
    }

    #[test]
    fn split_and_conjunction_roundtrip() {
        let p1 = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(1));
        let p2 = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(9));
        let p3 = ScalarExpr::IsNull(Box::new(ScalarExpr::col(3)));
        let c = ScalarExpr::conjunction(vec![p1.clone(), p2.clone(), p3.clone()]);
        let parts = c.split_conjunction();
        assert_eq!(parts, vec![p1, p2, p3]);
        assert_eq!(
            ScalarExpr::conjunction(vec![]),
            ScalarExpr::lit(true)
        );
    }

    #[test]
    fn remap_and_columns() {
        let e = ScalarExpr::and(
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(1), ScalarExpr::col(4)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(0)),
        );
        assert_eq!(e.columns(), vec![1, 4]);
        let shifted = e.remap_columns(&|i| i + 10);
        assert_eq!(shifted.columns(), vec![11, 14]);
    }
}
