//! Scalar expressions: AST, type checker, interpreter, and the **expression
//! compiler**.
//!
//! Paper §2.5: "each OFM is equipped with an expression compiler to
//! generate routines dynamically. … it avoids the otherwise excessive
//! interpretation overhead incurred by a query expression interpreter."
//!
//! PRISMA generated POOL-X code at run time; the closest safe-Rust
//! equivalent is **closure composition**: [`ScalarExpr::compile`] folds the
//! AST once into a tree of `Box<dyn Fn>` whose evaluation performs no
//! enum-discriminant dispatch, no column re-resolution and no Result
//! plumbing on the hot path. [`ScalarExpr::eval`] is the tree-walking
//! interpreter kept as the baseline; experiment E5 measures the gap.

use std::fmt;
use std::sync::Arc;

use prisma_types::{ColumnVec, DataType, LazyColumns, PrismaError, Result, Schema, SelVec, Tuple, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Apply to an ordering produced by `Value::sql_cmp`.
    #[inline]
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// `a op b` ⇒ `b (flip op) a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Rem => "%",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of one input schema.
///
/// Column references are *ordinal* (resolved by the front end against the
/// input schema), so evaluation never touches names.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Column reference by ordinal.
    Col(usize),
    /// Literal constant.
    Lit(Value),
    /// Comparison with SQL three-valued logic.
    Cmp(CmpOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<ScalarExpr>, Box<ScalarExpr>),
    /// Kleene AND.
    And(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Kleene OR.
    Or(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Kleene NOT.
    Not(Box<ScalarExpr>),
    /// `IS NULL` (never unknown).
    IsNull(Box<ScalarExpr>),
    /// Unary minus.
    Neg(Box<ScalarExpr>),
}

/// A compiled scalar routine: tuple in, value out.
pub type CompiledExpr = Arc<dyn Fn(&Tuple) -> Value + Send + Sync>;
/// A compiled predicate routine: tuple in, keep/drop out (SQL semantics —
/// NULL/unknown filters the row out).
pub type CompiledPredicate = Arc<dyn Fn(&Tuple) -> bool + Send + Sync>;

impl ScalarExpr {
    // ---------- constructors (builder helpers for tests & front ends) ----

    /// Column reference.
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    /// Comparison node.
    pub fn cmp(op: CmpOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp(op, Box::new(l), Box::new(r))
    }

    /// `l = r`.
    pub fn eq(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, l, r)
    }

    /// Conjunction.
    pub fn and(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::And(Box::new(l), Box::new(r))
    }

    /// Disjunction.
    pub fn or(l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Or(Box::new(l), Box::new(r))
    }

    /// Arithmetic node.
    pub fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Arith(op, Box::new(l), Box::new(r))
    }

    /// Fold a list of predicates into a conjunction (`true` for empty).
    pub fn conjunction(mut preds: Vec<ScalarExpr>) -> ScalarExpr {
        match preds.len() {
            0 => ScalarExpr::lit(true),
            1 => preds.pop().expect("len checked"),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, ScalarExpr::and)
            }
        }
    }

    /// Split a conjunction into its flattened factors.
    pub fn split_conjunction(self) -> Vec<ScalarExpr> {
        match self {
            ScalarExpr::And(l, r) => {
                let mut v = l.split_conjunction();
                v.extend(r.split_conjunction());
                v
            }
            other => vec![other],
        }
    }

    // ---------- analysis ----------

    /// All column ordinals referenced.
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit(&mut |e| {
            if let ScalarExpr::Col(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Pre-order visit of all nodes.
    pub fn visit(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Col(_) | ScalarExpr::Lit(_) => {}
            ScalarExpr::Cmp(_, l, r) | ScalarExpr::Arith(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                l.visit(f);
                r.visit(f);
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull(e) | ScalarExpr::Neg(e) => e.visit(f),
        }
    }

    /// Rewrite column ordinals through `map` (used when predicates are
    /// pushed through projections/joins).
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Col(i) => ScalarExpr::Col(map(*i)),
            ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
            ScalarExpr::Cmp(op, l, r) => {
                ScalarExpr::cmp(*op, l.remap_columns(map), r.remap_columns(map))
            }
            ScalarExpr::Arith(op, l, r) => {
                ScalarExpr::arith(*op, l.remap_columns(map), r.remap_columns(map))
            }
            ScalarExpr::And(l, r) => ScalarExpr::and(l.remap_columns(map), r.remap_columns(map)),
            ScalarExpr::Or(l, r) => ScalarExpr::or(l.remap_columns(map), r.remap_columns(map)),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.remap_columns(map))),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Box::new(e.remap_columns(map))),
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.remap_columns(map))),
        }
    }

    /// Static type of the expression against `schema`.
    ///
    /// Comparisons and boolean connectives yield `Bool`; arithmetic yields
    /// `Int` unless either side is `Double`. Type errors (comparing string
    /// to int, arithmetic on bool, ...) are rejected here, before any tuple
    /// is touched.
    pub fn check(&self, schema: &Schema) -> Result<DataType> {
        match self {
            ScalarExpr::Col(i) => schema
                .column(*i)
                .map(|c| c.dtype)
                .ok_or_else(|| PrismaError::ExprType(format!("column ordinal {i} out of range"))),
            ScalarExpr::Lit(v) => Ok(v.data_type().unwrap_or(DataType::Bool)),
            ScalarExpr::Cmp(_, l, r) => {
                let (lt, rt) = (l.check(schema)?, r.check(schema)?);
                let compatible = lt == rt || (lt.is_numeric() && rt.is_numeric());
                if !compatible {
                    return Err(PrismaError::ExprType(format!(
                        "cannot compare {lt} with {rt}"
                    )));
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::Arith(op, l, r) => {
                let (lt, rt) = (l.check(schema)?, r.check(schema)?);
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(PrismaError::ExprType(format!(
                        "arithmetic {op} needs numeric operands, got {lt} and {rt}"
                    )));
                }
                if lt == DataType::Double || rt == DataType::Double {
                    Ok(DataType::Double)
                } else {
                    Ok(DataType::Int)
                }
            }
            ScalarExpr::And(l, r) | ScalarExpr::Or(l, r) => {
                for side in [l, r] {
                    let t = side.check(schema)?;
                    if t != DataType::Bool {
                        return Err(PrismaError::ExprType(format!(
                            "boolean connective over {t}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::Not(e) => {
                let t = e.check(schema)?;
                if t != DataType::Bool {
                    return Err(PrismaError::ExprType(format!("NOT over {t}")));
                }
                Ok(DataType::Bool)
            }
            ScalarExpr::IsNull(e) => {
                e.check(schema)?;
                Ok(DataType::Bool)
            }
            ScalarExpr::Neg(e) => {
                let t = e.check(schema)?;
                if !t.is_numeric() {
                    return Err(PrismaError::ExprType(format!("unary minus over {t}")));
                }
                Ok(t)
            }
        }
    }

    // ---------- the interpreter (baseline for E5) ----------

    /// Tree-walking evaluation: one enum dispatch per node per tuple.
    /// NULL propagates through comparisons and arithmetic; AND/OR use
    /// Kleene three-valued logic represented as `Value::Null` = unknown.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        Ok(match self {
            ScalarExpr::Col(i) => tuple.get(*i).clone(),
            ScalarExpr::Lit(v) => v.clone(),
            ScalarExpr::Cmp(op, l, r) => {
                let (a, b) = (l.eval(tuple)?, r.eval(tuple)?);
                match a.sql_cmp(&b) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.test(ord)),
                }
            }
            ScalarExpr::Arith(op, l, r) => {
                let (a, b) = (l.eval(tuple)?, r.eval(tuple)?);
                if a.is_null() || b.is_null() {
                    Value::Null
                } else {
                    apply_arith(*op, &a, &b)?
                }
            }
            ScalarExpr::And(l, r) => kleene_and(l.eval(tuple)?, r.eval(tuple)?),
            ScalarExpr::Or(l, r) => kleene_or(l.eval(tuple)?, r.eval(tuple)?),
            ScalarExpr::Not(e) => match e.eval(tuple)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                other => {
                    return Err(PrismaError::ExprType(format!("NOT over {other}")));
                }
            },
            ScalarExpr::IsNull(e) => Value::Bool(e.eval(tuple)?.is_null()),
            ScalarExpr::Neg(e) => match e.eval(tuple)? {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.checked_neg().ok_or_else(|| {
                    PrismaError::Arithmetic("negation overflow".into())
                })?),
                Value::Double(d) => Value::Double(-d),
                other => return Err(PrismaError::ExprType(format!("unary minus over {other}"))),
            },
        })
    }

    /// Evaluate as a filter predicate: unknown (NULL) rejects the row.
    pub fn eval_predicate(&self, tuple: &Tuple) -> Result<bool> {
        Ok(matches!(self.eval(tuple)?, Value::Bool(true)))
    }

    // ---------- the compiler (paper §2.5) ----------

    /// Compile to a closure tree. The expression must already type-check:
    /// compiled routines omit the checks the interpreter performs per
    /// tuple (that is the point), so runtime type surprises degrade to
    /// NULL rather than error.
    pub fn compile(&self) -> CompiledExpr {
        match self {
            ScalarExpr::Col(i) => {
                let i = *i;
                Arc::new(move |t| t.get(i).clone())
            }
            ScalarExpr::Lit(v) => {
                let v = v.clone();
                Arc::new(move |_| v.clone())
            }
            ScalarExpr::Cmp(op, l, r) => compile_cmp(*op, l, r),
            ScalarExpr::Arith(op, l, r) => {
                let (op, lf, rf) = (*op, l.compile(), r.compile());
                Arc::new(move |t| {
                    let (a, b) = (lf(t), rf(t));
                    if a.is_null() || b.is_null() {
                        return Value::Null;
                    }
                    apply_arith(op, &a, &b).unwrap_or(Value::Null)
                })
            }
            ScalarExpr::And(l, r) => {
                let (lf, rf) = (l.compile(), r.compile());
                Arc::new(move |t| kleene_and(lf(t), rf(t)))
            }
            ScalarExpr::Or(l, r) => {
                let (lf, rf) = (l.compile(), r.compile());
                Arc::new(move |t| kleene_or(lf(t), rf(t)))
            }
            ScalarExpr::Not(e) => {
                let f = e.compile();
                Arc::new(move |t| match f(t) {
                    Value::Bool(b) => Value::Bool(!b),
                    _ => Value::Null,
                })
            }
            ScalarExpr::IsNull(e) => {
                let f = e.compile();
                Arc::new(move |t| Value::Bool(f(t).is_null()))
            }
            ScalarExpr::Neg(e) => {
                let f = e.compile();
                Arc::new(move |t| match f(t) {
                    Value::Int(i) => i.checked_neg().map(Value::Int).unwrap_or(Value::Null),
                    Value::Double(d) => Value::Double(-d),
                    _ => Value::Null,
                })
            }
        }
    }

    /// Compile to a boolean filter routine (unknown rejects).
    ///
    /// Fast paths: the very common shapes `col <op> literal` and
    /// `col <op> col` compile to closures that read the column slots
    /// directly with zero intermediate `Value` clones — this is where the
    /// interpretation overhead the paper talks about actually goes away.
    pub fn compile_predicate(&self) -> CompiledPredicate {
        // Fast path: Cmp(col, lit) / Cmp(lit, col) / Cmp(col, col).
        if let ScalarExpr::Cmp(op, l, r) = self {
            match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(i), ScalarExpr::Lit(v)) if !v.is_null() => {
                    let (i, v, op) = (*i, v.clone(), *op);
                    return Arc::new(move |t| {
                        t.get(i).sql_cmp(&v).map(|o| op.test(o)).unwrap_or(false)
                    });
                }
                (ScalarExpr::Lit(v), ScalarExpr::Col(i)) if !v.is_null() => {
                    let (i, v, op) = (*i, v.clone(), op.flip());
                    return Arc::new(move |t| {
                        t.get(i).sql_cmp(&v).map(|o| op.test(o)).unwrap_or(false)
                    });
                }
                (ScalarExpr::Col(i), ScalarExpr::Col(j)) => {
                    let (i, j, op) = (*i, *j, *op);
                    return Arc::new(move |t| {
                        t.get(i)
                            .sql_cmp(t.get(j))
                            .map(|o| op.test(o))
                            .unwrap_or(false)
                    });
                }
                _ => {}
            }
        }
        // Fast path: conjunction of two compiled predicates short-circuits.
        if let ScalarExpr::And(l, r) = self {
            let (lf, rf) = (l.compile_predicate(), r.compile_predicate());
            return Arc::new(move |t| lf(t) && rf(t));
        }
        let f = self.compile();
        Arc::new(move |t| matches!(f(t), Value::Bool(true)))
    }

    // ---------- the vectorized compiler (column-at-a-time) ----------

    /// Compile to a column-at-a-time kernel tree. Where [`compile`]
    /// produces one closure invoked per tuple, the vectorized form
    /// dispatches on operand *column* types once per batch and then runs
    /// typed loops over `&[i64]` / `&[f64]` payloads — no per-row virtual
    /// call and no per-row [`Value`] construction on the numeric paths.
    /// Mixed-type and string operands fall back to element-wise `Value`
    /// semantics, so results always agree with [`ScalarExpr::compile`]
    /// (NULL propagation identical to [`ScalarExpr::eval`]; arithmetic
    /// faults degrade to NULL exactly like the scalar compiler).
    ///
    /// [`compile`]: ScalarExpr::compile
    pub fn compile_vec(&self) -> CompiledVecExpr {
        CompiledVecExpr {
            node: VecNode::from_expr(self),
        }
    }

    /// Compile to a vectorized filter that refines a [`SelVec`] instead of
    /// producing rows (unknown rejects, as in SQL). Conjunctions are
    /// factored so each factor narrows the previous selection; the common
    /// `col <op> lit` / `col <op> col` factors run fused typed loops that
    /// touch nothing but the referenced column.
    pub fn compile_vec_predicate(&self) -> CompiledVecPredicate {
        let factors = self
            .clone()
            .split_conjunction()
            .iter()
            .map(PredFactor::from_expr)
            .collect();
        CompiledVecPredicate {
            factors,
            tmp: Vec::new(),
        }
    }
}

fn compile_cmp(op: CmpOp, l: &ScalarExpr, r: &ScalarExpr) -> CompiledExpr {
    let (lf, rf) = (l.compile(), r.compile());
    Arc::new(move |t| {
        let (a, b) = (lf(t), rf(t));
        match a.sql_cmp(&b) {
            None => Value::Null,
            Some(ord) => Value::Bool(op.test(ord)),
        }
    })
}

fn apply_arith(op: ArithOp, a: &Value, b: &Value) -> Result<Value> {
    let res = match op {
        ArithOp::Add => a.add(b),
        ArithOp::Sub => a.sub(b),
        ArithOp::Mul => a.mul(b),
        ArithOp::Div => a.div(b),
        ArithOp::Rem => a.rem(b),
    };
    res.ok_or_else(|| PrismaError::Arithmetic(format!("{a} {op} {b}")))
}

fn kleene_and(a: Value, b: Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn kleene_or(a: Value, b: Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

// =================== vectorized kernels ===================

/// A compiled vectorized expression: batch columns + selection in,
/// *compacted* result column out (`len == sel.count()`, rows in selection
/// order). Shareable across threads like [`CompiledExpr`].
#[derive(Debug, Clone)]
pub struct CompiledVecExpr {
    node: VecNode,
}

impl CompiledVecExpr {
    /// Evaluate over the selected rows of a batch's columns. Only the
    /// columns the kernel tree references are ever materialized — the
    /// lazy set pivots per column on first access.
    pub fn eval(&self, cols: &LazyColumns, sel: &SelVec) -> Arc<ColumnVec> {
        self.node.eval(cols, SelView::from(sel))
    }
}

/// A compiled vectorized filter. Owns scratch buffers (reused across
/// batches) for chaining conjunction factors, hence `&mut self`. A clone
/// shares the factor tree logically (fresh empty scratch), which is how
/// the morsel-parallel executor hands each worker its own instance.
#[derive(Debug)]
pub struct CompiledVecPredicate {
    factors: Vec<PredFactor>,
    /// Ping-pong buffer for multi-factor conjunctions; retains capacity
    /// across [`select`](Self::select) calls.
    tmp: Vec<u32>,
}

impl Clone for CompiledVecPredicate {
    fn clone(&self) -> Self {
        CompiledVecPredicate {
            factors: self.factors.clone(),
            tmp: Vec::new(),
        }
    }
}

impl CompiledVecPredicate {
    /// Append to `out` (cleared first) the row indices within `sel` that
    /// satisfy the predicate, in ascending order. NULL/unknown rejects.
    pub fn select(&mut self, cols: &LazyColumns, sel: &SelVec, out: &mut Vec<u32>) {
        out.clear();
        let mut first = true;
        for f in &self.factors {
            if first {
                f.filter(cols, SelView::from(sel), out);
                first = false;
            } else {
                self.tmp.clear();
                f.filter(cols, SelView::Idx(out), &mut self.tmp);
                std::mem::swap(out, &mut self.tmp);
            }
            if out.is_empty() {
                return;
            }
        }
    }
}

// =================== zone-map refutation ===================

/// Chunk-level refutation of a predicate against per-column
/// [`ZoneMap`](prisma_types::chunk::ZoneMap)s.
///
/// Compiled once per scan from the pushed-down predicate, it answers "can
/// *any* row of a chunk summarized by these zone maps satisfy the
/// predicate?" — [`ZoneRefuter::refutes`] returning `true` means provably
/// not, so the scan skips the whole chunk without touching its payloads.
///
/// Only conjunction factors of the shape `col <op> literal` (either
/// orientation) contribute refutation rules; everything else is ignored,
/// which keeps the answer *conservative* — a factor the refuter does not
/// understand can only cause a chunk to be scanned, never skipped. A single
/// refuted factor refutes the chunk: under Kleene AND a false (or NULL)
/// factor makes the conjunction false-or-NULL for every row, and SQL filter
/// semantics reject both.
///
/// Soundness leans on the same total order the kernels use: zone `min`/
/// `max` are under [`Value::total_cmp`], the vectorized comparison loops
/// compare `Double`s with `f64::total_cmp`, and every fallback goes through
/// [`Value::sql_cmp`] — so a bound proven here can never disagree with the
/// per-row kernel, NaN and `-0.0` included.
#[derive(Debug, Clone, Default)]
pub struct ZoneRefuter {
    rules: Vec<ZoneRule>,
}

#[derive(Debug, Clone)]
enum ZoneRule {
    /// `col <op> lit` factor with a non-null literal.
    CmpColLit { col: usize, op: CmpOp, lit: Value },
    /// A factor that is constant false or NULL (`WHERE false`, `x = NULL`):
    /// no row of any chunk can pass, so every chunk is refuted.
    Never,
}

impl ZoneRefuter {
    /// Extract refutation rules from `pred`'s conjunction factors.
    pub fn compile(pred: &ScalarExpr) -> ZoneRefuter {
        let mut rules = Vec::new();
        for factor in pred.clone().split_conjunction() {
            match factor {
                // A literal factor other than TRUE rejects every row
                // (false and NULL directly; non-bool folds to NULL under
                // Kleene AND).
                ScalarExpr::Lit(v) if v != Value::Bool(true) => {
                    rules.push(ZoneRule::Never);
                }
                ScalarExpr::Cmp(op, l, r) => match (&*l, &*r) {
                    (ScalarExpr::Col(i), ScalarExpr::Lit(v)) => {
                        rules.push(ZoneRule::cmp(*i, op, v));
                    }
                    (ScalarExpr::Lit(v), ScalarExpr::Col(i)) => {
                        rules.push(ZoneRule::cmp(*i, op.flip(), v));
                    }
                    _ => {}
                },
                _ => {}
            }
        }
        ZoneRefuter { rules }
    }

    /// True when the predicate provably selects no row of a chunk whose
    /// columns are summarized by `zones`.
    pub fn refutes(&self, zones: &[prisma_types::ZoneMap]) -> bool {
        self.rules.iter().any(|r| r.refutes(zones))
    }

    /// True when no factor yielded a rule — the refuter can never prune.
    pub fn is_trivial(&self) -> bool {
        self.rules.is_empty()
    }
}

impl ZoneRule {
    fn cmp(col: usize, op: CmpOp, lit: &Value) -> ZoneRule {
        if lit.is_null() {
            // `col <op> NULL` is NULL for every row — never selects.
            ZoneRule::Never
        } else {
            ZoneRule::CmpColLit {
                col,
                op,
                lit: lit.clone(),
            }
        }
    }

    fn refutes(&self, zones: &[prisma_types::ZoneMap]) -> bool {
        use std::cmp::Ordering::*;
        match self {
            ZoneRule::Never => true,
            ZoneRule::CmpColLit { col, op, lit } => {
                let Some(zone) = zones.get(*col) else {
                    return false;
                };
                let (Some(min), Some(max)) = (&zone.min, &zone.max) else {
                    // Every row of the column is NULL (or the chunk is
                    // empty): the comparison is NULL for each row, so none
                    // is selected.
                    return true;
                };
                // Both sides non-null, so sql_cmp is total here.
                let (Some(lo), Some(hi)) = (lit.sql_cmp(min), lit.sql_cmp(max)) else {
                    return false;
                };
                match op {
                    // No row can equal a literal outside [min, max].
                    CmpOp::Eq => lo == Less || hi == Greater,
                    // Every non-null row equals the literal.
                    CmpOp::Ne => lo == Equal && hi == Equal,
                    // `row < lit` impossible when lit <= min.
                    CmpOp::Lt => lo != Greater,
                    // `row <= lit` impossible when lit < min.
                    CmpOp::Le => lo == Less,
                    // `row > lit` impossible when lit >= max.
                    CmpOp::Gt => hi != Less,
                    // `row >= lit` impossible when lit > max.
                    CmpOp::Ge => hi == Greater,
                }
            }
        }
    }
}

/// Borrowed view of a selection (so factors can chain through index
/// buffers without building `SelVec`s).
#[derive(Clone, Copy)]
enum SelView<'a> {
    All(usize),
    Idx(&'a [u32]),
}

impl<'a> SelView<'a> {
    fn from(sel: &'a SelVec) -> SelView<'a> {
        match sel.indices() {
            None => SelView::All(sel.len()),
            Some(idx) => SelView::Idx(idx),
        }
    }

    fn count(&self) -> usize {
        match self {
            SelView::All(n) => *n,
            SelView::Idx(ix) => ix.len(),
        }
    }

    /// Iterate `(position, row index)` pairs.
    fn enumerated(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let view = *self;
        (0..self.count()).map(move |p| match view {
            SelView::All(_) => (p, p),
            SelView::Idx(ix) => (p, ix[p] as usize),
        })
    }
}

/// The kernel tree behind [`CompiledVecExpr`]. Binary nodes evaluate both
/// children to compacted columns and combine them with a typed loop; a
/// `Col` leaf under a full selection is a refcount bump, never a copy.
#[derive(Debug, Clone)]
enum VecNode {
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<VecNode>, Box<VecNode>),
    Arith(ArithOp, Box<VecNode>, Box<VecNode>),
    And(Box<VecNode>, Box<VecNode>),
    Or(Box<VecNode>, Box<VecNode>),
    Not(Box<VecNode>),
    IsNull(Box<VecNode>),
    Neg(Box<VecNode>),
}

impl VecNode {
    fn from_expr(e: &ScalarExpr) -> VecNode {
        match e {
            ScalarExpr::Col(i) => VecNode::Col(*i),
            ScalarExpr::Lit(v) => VecNode::Lit(v.clone()),
            ScalarExpr::Cmp(op, l, r) => {
                VecNode::Cmp(*op, Box::new(Self::from_expr(l)), Box::new(Self::from_expr(r)))
            }
            ScalarExpr::Arith(op, l, r) => {
                VecNode::Arith(*op, Box::new(Self::from_expr(l)), Box::new(Self::from_expr(r)))
            }
            ScalarExpr::And(l, r) => {
                VecNode::And(Box::new(Self::from_expr(l)), Box::new(Self::from_expr(r)))
            }
            ScalarExpr::Or(l, r) => {
                VecNode::Or(Box::new(Self::from_expr(l)), Box::new(Self::from_expr(r)))
            }
            ScalarExpr::Not(x) => VecNode::Not(Box::new(Self::from_expr(x))),
            ScalarExpr::IsNull(x) => VecNode::IsNull(Box::new(Self::from_expr(x))),
            ScalarExpr::Neg(x) => VecNode::Neg(Box::new(Self::from_expr(x))),
        }
    }

    fn eval(&self, cols: &LazyColumns, sel: SelView<'_>) -> Arc<ColumnVec> {
        match self {
            VecNode::Col(i) => match sel {
                SelView::All(_) => Arc::clone(cols.col(*i)),
                SelView::Idx(ix) => Arc::new(cols.col(*i).gather(ix)),
            },
            VecNode::Lit(v) => Arc::new(const_column(v, sel.count())),
            VecNode::Cmp(op, l, r) => {
                let (a, b) = (l.eval(cols, sel), r.eval(cols, sel));
                Arc::new(cmp_columns(*op, &a, &b))
            }
            VecNode::Arith(op, l, r) => {
                let (a, b) = (l.eval(cols, sel), r.eval(cols, sel));
                Arc::new(arith_columns(*op, &a, &b))
            }
            VecNode::And(l, r) => {
                let (a, b) = (l.eval(cols, sel), r.eval(cols, sel));
                Arc::new(kleene_columns(&a, &b, kleene_and))
            }
            VecNode::Or(l, r) => {
                let (a, b) = (l.eval(cols, sel), r.eval(cols, sel));
                Arc::new(kleene_columns(&a, &b, kleene_or))
            }
            VecNode::Not(x) => Arc::new(not_column(&x.eval(cols, sel))),
            VecNode::IsNull(x) => Arc::new(is_null_column(&x.eval(cols, sel))),
            VecNode::Neg(x) => Arc::new(neg_column(&x.eval(cols, sel))),
        }
    }
}

/// One conjunction factor of a vectorized predicate.
#[derive(Debug, Clone)]
enum PredFactor {
    /// `col <op> lit` — fused typed loop, no intermediate column.
    CmpColLit(CmpOp, usize, Value),
    /// `col <op> col` — fused typed loop, no intermediate column.
    CmpColCol(CmpOp, usize, usize),
    /// Anything else: evaluate to a boolean column, keep where true.
    General(VecNode),
}

impl PredFactor {
    fn from_expr(e: &ScalarExpr) -> PredFactor {
        if let ScalarExpr::Cmp(op, l, r) = e {
            match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(i), ScalarExpr::Lit(v)) if !v.is_null() => {
                    return PredFactor::CmpColLit(*op, *i, v.clone());
                }
                (ScalarExpr::Lit(v), ScalarExpr::Col(i)) if !v.is_null() => {
                    return PredFactor::CmpColLit(op.flip(), *i, v.clone());
                }
                (ScalarExpr::Col(i), ScalarExpr::Col(j)) => {
                    return PredFactor::CmpColCol(*op, *i, *j);
                }
                _ => {}
            }
        }
        PredFactor::General(VecNode::from_expr(e))
    }

    fn filter(&self, cols: &LazyColumns, sel: SelView<'_>, out: &mut Vec<u32>) {
        match self {
            PredFactor::CmpColLit(op, i, v) => cmp_col_lit_filter(*op, cols.col(*i), v, sel, out),
            PredFactor::CmpColCol(op, i, j) => {
                cmp_col_col_filter(*op, cols.col(*i), cols.col(*j), sel, out)
            }
            PredFactor::General(node) => {
                let col = node.eval(cols, sel);
                for (p, idx) in sel.enumerated() {
                    if bool_at(&col, p) == Some(true) {
                        out.push(idx as u32);
                    }
                }
            }
        }
    }
}

// ---- fused filter loops ----

/// Run `test` over the selection, appending passing row indices. Rows
/// under a set bit of either null mask are rejected (SQL: unknown filters
/// out). The index is written unconditionally and the cursor advanced by
/// the test outcome — branchless, so selectivity near 50% does not stall
/// the branch predictor.
#[inline]
fn push_matching(
    sel: SelView<'_>,
    an: Option<&[bool]>,
    bn: Option<&[bool]>,
    out: &mut Vec<u32>,
    test: impl Fn(usize) -> bool,
) {
    let keep = |i: usize| {
        !an.is_some_and(|n| n[i]) && !bn.is_some_and(|n| n[i]) && test(i)
    };
    let base = out.len();
    let mut k = base;
    match sel {
        SelView::All(n) => {
            out.resize(base + n, 0);
            for i in 0..n {
                out[k] = i as u32;
                k += keep(i) as usize;
            }
        }
        SelView::Idx(ix) => {
            out.resize(base + ix.len(), 0);
            for &i in ix {
                out[k] = i;
                k += keep(i as usize) as usize;
            }
        }
    }
    out.truncate(k);
}

fn cmp_col_lit_filter(
    op: CmpOp,
    col: &ColumnVec,
    lit: &Value,
    sel: SelView<'_>,
    out: &mut Vec<u32>,
) {
    use ColumnVec as C;
    match (col, lit) {
        (C::Int { data, nulls }, Value::Int(k)) => {
            let k = *k;
            let nn = nulls.as_deref();
            // The op dispatch is lifted out of the loop: each arm
            // monomorphizes to a straight-line integer compare.
            match op {
                CmpOp::Eq => push_matching(sel, nn, None, out, |i| data[i] == k),
                CmpOp::Ne => push_matching(sel, nn, None, out, |i| data[i] != k),
                CmpOp::Lt => push_matching(sel, nn, None, out, |i| data[i] < k),
                CmpOp::Le => push_matching(sel, nn, None, out, |i| data[i] <= k),
                CmpOp::Gt => push_matching(sel, nn, None, out, |i| data[i] > k),
                CmpOp::Ge => push_matching(sel, nn, None, out, |i| data[i] >= k),
            }
        }
        (C::Int { data, nulls }, Value::Double(k)) => {
            let k = *k;
            push_matching(sel, nulls.as_deref(), None, out, |i| {
                op.test((data[i] as f64).total_cmp(&k))
            });
        }
        (C::Double { data, nulls }, Value::Int(k)) => {
            let k = *k as f64;
            push_matching(sel, nulls.as_deref(), None, out, |i| {
                op.test(data[i].total_cmp(&k))
            });
        }
        (C::Double { data, nulls }, Value::Double(k)) => {
            let k = *k;
            push_matching(sel, nulls.as_deref(), None, out, |i| {
                op.test(data[i].total_cmp(&k))
            });
        }
        (C::Str { data, nulls }, Value::Str(k)) => {
            push_matching(sel, nulls.as_deref(), None, out, |i| {
                op.test(data[i].as_str().cmp(k.as_str()))
            });
        }
        (C::Bool { data, nulls }, Value::Bool(k)) => {
            push_matching(sel, nulls.as_deref(), None, out, |i| op.test(data[i].cmp(k)));
        }
        // Mixed column or cross-type literal: total-order semantics via
        // Value, matching the scalar fast path's `sql_cmp`.
        _ => push_matching(sel, None, None, out, |i| {
            col.value_at(i).sql_cmp(lit).map(|o| op.test(o)).unwrap_or(false)
        }),
    }
}

fn cmp_col_col_filter(
    op: CmpOp,
    a: &ColumnVec,
    b: &ColumnVec,
    sel: SelView<'_>,
    out: &mut Vec<u32>,
) {
    use ColumnVec as C;
    match (a, b) {
        (C::Int { data: ad, nulls: an }, C::Int { data: bd, nulls: bn }) => {
            let (an, bn) = (an.as_deref(), bn.as_deref());
            match op {
                CmpOp::Eq => push_matching(sel, an, bn, out, |i| ad[i] == bd[i]),
                CmpOp::Ne => push_matching(sel, an, bn, out, |i| ad[i] != bd[i]),
                CmpOp::Lt => push_matching(sel, an, bn, out, |i| ad[i] < bd[i]),
                CmpOp::Le => push_matching(sel, an, bn, out, |i| ad[i] <= bd[i]),
                CmpOp::Gt => push_matching(sel, an, bn, out, |i| ad[i] > bd[i]),
                CmpOp::Ge => push_matching(sel, an, bn, out, |i| ad[i] >= bd[i]),
            }
        }
        (C::Int { data: ad, nulls: an }, C::Double { data: bd, nulls: bn }) => {
            push_matching(sel, an.as_deref(), bn.as_deref(), out, |i| {
                op.test((ad[i] as f64).total_cmp(&bd[i]))
            });
        }
        (C::Double { data: ad, nulls: an }, C::Int { data: bd, nulls: bn }) => {
            push_matching(sel, an.as_deref(), bn.as_deref(), out, |i| {
                op.test(ad[i].total_cmp(&(bd[i] as f64)))
            });
        }
        (C::Double { data: ad, nulls: an }, C::Double { data: bd, nulls: bn }) => {
            push_matching(sel, an.as_deref(), bn.as_deref(), out, |i| {
                op.test(ad[i].total_cmp(&bd[i]))
            });
        }
        (C::Str { data: ad, nulls: an }, C::Str { data: bd, nulls: bn }) => {
            push_matching(sel, an.as_deref(), bn.as_deref(), out, |i| {
                op.test(ad[i].cmp(&bd[i]))
            });
        }
        (C::Bool { data: ad, nulls: an }, C::Bool { data: bd, nulls: bn }) => {
            push_matching(sel, an.as_deref(), bn.as_deref(), out, |i| {
                op.test(ad[i].cmp(&bd[i]))
            });
        }
        _ => push_matching(sel, None, None, out, |i| {
            a.value_at(i)
                .sql_cmp(&b.value_at(i))
                .map(|o| op.test(o))
                .unwrap_or(false)
        }),
    }
}

// ---- column combinators (general expression path) ----

/// Constant column of `n` copies of `v`.
fn const_column(v: &Value, n: usize) -> ColumnVec {
    match v {
        Value::Int(i) => ColumnVec::Int {
            data: vec![*i; n],
            nulls: None,
        },
        Value::Double(d) => ColumnVec::Double {
            data: vec![*d; n],
            nulls: None,
        },
        Value::Bool(b) => ColumnVec::Bool {
            data: vec![*b; n],
            nulls: None,
        },
        Value::Str(s) => ColumnVec::Str {
            data: vec![s.clone(); n],
            nulls: None,
        },
        Value::Null => ColumnVec::Mixed(vec![Value::Null; n]),
    }
}

fn null_mask_of(col: &ColumnVec) -> Option<Vec<bool>> {
    match col {
        ColumnVec::Int { nulls, .. }
        | ColumnVec::Double { nulls, .. }
        | ColumnVec::Bool { nulls, .. }
        | ColumnVec::Str { nulls, .. } => nulls.clone(),
        ColumnVec::Mixed(v) => {
            let mask: Vec<bool> = v.iter().map(Value::is_null).collect();
            mask.iter().any(|&b| b).then_some(mask)
        }
    }
}

/// Union of two optional null masks.
fn union_nulls(a: Option<Vec<bool>>, b: Option<Vec<bool>>) -> Option<Vec<bool>> {
    match (a, b) {
        (None, m) | (m, None) => m,
        (Some(mut x), Some(y)) => {
            for (xi, yi) in x.iter_mut().zip(&y) {
                *xi |= yi;
            }
            Some(x)
        }
    }
}

/// Mark row `i` NULL, materializing the mask on first use.
#[inline]
fn set_null(nulls: &mut Option<Vec<bool>>, n: usize, i: usize) {
    nulls.get_or_insert_with(|| vec![false; n])[i] = true;
}

/// Boolean payload of row `i`, `None` for NULL or non-boolean (the same
/// tri-state `Value::as_bool` gives the scalar Kleene combinators).
#[inline]
fn bool_at(col: &ColumnVec, i: usize) -> Option<bool> {
    match col {
        ColumnVec::Bool { data, nulls } => {
            if nulls.as_ref().is_some_and(|ns| ns[i]) {
                None
            } else {
                Some(data[i])
            }
        }
        ColumnVec::Mixed(v) => v[i].as_bool(),
        _ => None,
    }
}

/// Typed comparison of two equal-length compacted columns.
fn cmp_columns(op: CmpOp, a: &ColumnVec, b: &ColumnVec) -> ColumnVec {
    use ColumnVec as C;
    let n = a.len();
    debug_assert_eq!(n, b.len());
    let mut data = vec![false; n];
    let mut nulls = union_nulls(null_mask_of(a), null_mask_of(b));
    macro_rules! loop_cmp {
        ($ad:ident, $bd:ident, $cmp:expr) => {
            for i in 0..n {
                data[i] = op.test($cmp(&$ad[i], &$bd[i]));
            }
        };
    }
    match (a, b) {
        (C::Int { data: ad, .. }, C::Int { data: bd, .. }) => {
            loop_cmp!(ad, bd, |x: &i64, y: &i64| x.cmp(y));
        }
        (C::Int { data: ad, .. }, C::Double { data: bd, .. }) => {
            loop_cmp!(ad, bd, |x: &i64, y: &f64| (*x as f64).total_cmp(y));
        }
        (C::Double { data: ad, .. }, C::Int { data: bd, .. }) => {
            loop_cmp!(ad, bd, |x: &f64, y: &i64| x.total_cmp(&(*y as f64)));
        }
        (C::Double { data: ad, .. }, C::Double { data: bd, .. }) => {
            loop_cmp!(ad, bd, |x: &f64, y: &f64| x.total_cmp(y));
        }
        (C::Str { data: ad, .. }, C::Str { data: bd, .. }) => {
            loop_cmp!(ad, bd, |x: &String, y: &String| x.cmp(y));
        }
        (C::Bool { data: ad, .. }, C::Bool { data: bd, .. }) => {
            loop_cmp!(ad, bd, |x: &bool, y: &bool| x.cmp(y));
        }
        _ => {
            for (i, slot) in data.iter_mut().enumerate() {
                match a.value_at(i).sql_cmp(&b.value_at(i)) {
                    Some(o) => *slot = op.test(o),
                    None => set_null(&mut nulls, n, i),
                }
            }
        }
    }
    ColumnVec::Bool { data, nulls }
}

/// Typed arithmetic over two equal-length compacted columns. Faults
/// (overflow, integer division by zero, non-numeric operands) degrade to
/// NULL, matching the scalar compiler.
fn arith_columns(op: ArithOp, a: &ColumnVec, b: &ColumnVec) -> ColumnVec {
    use ColumnVec as C;
    let n = a.len();
    debug_assert_eq!(n, b.len());
    match (a, b) {
        (C::Int { data: ad, .. }, C::Int { data: bd, .. }) => {
            let mut nulls = union_nulls(null_mask_of(a), null_mask_of(b));
            let mut data = vec![0i64; n];
            for i in 0..n {
                let r = match op {
                    ArithOp::Add => ad[i].checked_add(bd[i]),
                    ArithOp::Sub => ad[i].checked_sub(bd[i]),
                    ArithOp::Mul => ad[i].checked_mul(bd[i]),
                    ArithOp::Div => ad[i].checked_div(bd[i]),
                    ArithOp::Rem => ad[i].checked_rem(bd[i]),
                };
                match r {
                    Some(v) => data[i] = v,
                    None => set_null(&mut nulls, n, i),
                }
            }
            C::Int { data, nulls }
        }
        // Mixed Int/Double numerics widen to f64, as in `Value`'s
        // arithmetic; Rem stays integer-only and yields NULL here.
        (
            C::Int { .. } | C::Double { .. },
            C::Int { .. } | C::Double { .. },
        ) if op != ArithOp::Rem => {
            let nulls = union_nulls(null_mask_of(a), null_mask_of(b));
            let mut data = vec![0f64; n];
            let at = |c: &ColumnVec, i: usize| match c {
                C::Int { data, .. } => data[i] as f64,
                C::Double { data, .. } => data[i],
                _ => unreachable!("guarded by match"),
            };
            for (i, slot) in data.iter_mut().enumerate() {
                let (x, y) = (at(a, i), at(b, i));
                *slot = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                    ArithOp::Rem => unreachable!("guarded by match"),
                };
            }
            C::Double { data, nulls }
        }
        _ => {
            // Scalar fallback: element-wise Value arithmetic.
            let vals: Vec<Value> = (0..n)
                .map(|i| {
                    let (x, y) = (a.value_at(i), b.value_at(i));
                    if x.is_null() || y.is_null() {
                        Value::Null
                    } else {
                        apply_arith(op, &x, &y).unwrap_or(Value::Null)
                    }
                })
                .collect();
            C::Mixed(vals)
        }
    }
}

/// Element-wise Kleene connective through the same tri-state combinators
/// the scalar paths use.
fn kleene_columns(a: &ColumnVec, b: &ColumnVec, f: fn(Value, Value) -> Value) -> ColumnVec {
    let n = a.len();
    let mut data = vec![false; n];
    let mut nulls = None;
    for (i, slot) in data.iter_mut().enumerate() {
        let x = bool_at(a, i).map(Value::Bool).unwrap_or(Value::Null);
        let y = bool_at(b, i).map(Value::Bool).unwrap_or(Value::Null);
        match f(x, y) {
            Value::Bool(v) => *slot = v,
            _ => set_null(&mut nulls, n, i),
        }
    }
    ColumnVec::Bool { data, nulls }
}

fn not_column(a: &ColumnVec) -> ColumnVec {
    let n = a.len();
    let mut data = vec![false; n];
    let mut nulls = None;
    for (i, slot) in data.iter_mut().enumerate() {
        match bool_at(a, i) {
            Some(v) => *slot = !v,
            None => set_null(&mut nulls, n, i),
        }
    }
    ColumnVec::Bool { data, nulls }
}

fn is_null_column(a: &ColumnVec) -> ColumnVec {
    let n = a.len();
    ColumnVec::Bool {
        data: (0..n).map(|i| a.is_null_at(i)).collect(),
        nulls: None,
    }
}

fn neg_column(a: &ColumnVec) -> ColumnVec {
    use ColumnVec as C;
    let n = a.len();
    match a {
        C::Int { data: ad, nulls } => {
            let mut nulls = nulls.clone();
            let mut data = vec![0i64; n];
            for i in 0..n {
                match ad[i].checked_neg() {
                    Some(v) => data[i] = v,
                    None => set_null(&mut nulls, n, i),
                }
            }
            C::Int { data, nulls }
        }
        C::Double { data, nulls } => C::Double {
            data: data.iter().map(|d| -d).collect(),
            nulls: nulls.clone(),
        },
        _ => C::Mixed(
            (0..n)
                .map(|i| match a.value_at(i) {
                    Value::Int(v) => v.checked_neg().map(Value::Int).unwrap_or(Value::Null),
                    Value::Double(d) => Value::Double(-d),
                    _ => Value::Null,
                })
                .collect(),
        ),
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Col(i) => write!(f, "#{i}"),
            ScalarExpr::Lit(v) => write!(f, "{v}"),
            ScalarExpr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::Arith(op, l, r) => write!(f, "({l} {op} {r})"),
            ScalarExpr::And(l, r) => write!(f, "({l} AND {r})"),
            ScalarExpr::Or(l, r) => write!(f, "({l} OR {r})"),
            ScalarExpr::Not(e) => write!(f, "(NOT {e})"),
            ScalarExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
            ScalarExpr::Neg(e) => write!(f, "(-{e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Double),
            Column::new("s", DataType::Str),
            Column::nullable("n", DataType::Int),
        ])
    }

    fn row() -> Tuple {
        tuple![10, 2.5, "hi"].concat(&Tuple::new(vec![Value::Null]))
    }

    #[test]
    fn typecheck_accepts_and_rejects() {
        let s = schema();
        assert_eq!(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1))
                .check(&s)
                .unwrap(),
            DataType::Bool
        );
        assert_eq!(
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(0), ScalarExpr::col(1))
                .check(&s)
                .unwrap(),
            DataType::Double
        );
        assert!(ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::col(2))
            .check(&s)
            .is_err());
        assert!(
            ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(2), ScalarExpr::lit(1))
                .check(&s)
                .is_err()
        );
        assert!(ScalarExpr::Not(Box::new(ScalarExpr::col(0))).check(&s).is_err());
        assert!(ScalarExpr::col(9).check(&s).is_err());
    }

    #[test]
    fn interpreter_and_compiler_agree() {
        let exprs = vec![
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5)),
            ScalarExpr::and(
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(1), ScalarExpr::lit(2.0)),
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(2), ScalarExpr::lit("hi")),
            ),
            ScalarExpr::or(
                ScalarExpr::IsNull(Box::new(ScalarExpr::col(3))),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(0)),
            ),
            ScalarExpr::arith(
                ArithOp::Mul,
                ScalarExpr::col(0),
                ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(1), ScalarExpr::lit(0.5)),
            ),
            ScalarExpr::Neg(Box::new(ScalarExpr::col(0))),
            // NULL propagation through comparison and arithmetic.
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(3), ScalarExpr::lit(1)),
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(3), ScalarExpr::lit(1)),
        ];
        let t = row();
        for e in exprs {
            let interp = e.eval(&t).unwrap();
            let compiled = e.compile()(&t);
            assert_eq!(interp, compiled, "disagreement on {e}");
        }
    }

    #[test]
    fn predicate_semantics_null_rejects() {
        let t = row();
        // n = 1 is unknown -> row filtered out by both paths.
        let e = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(3), ScalarExpr::lit(1));
        assert!(!e.eval_predicate(&t).unwrap());
        assert!(!e.compile_predicate()(&t));
        // NOT(unknown) is still unknown -> rejected.
        let ne = ScalarExpr::Not(Box::new(e));
        assert!(!ne.eval_predicate(&t).unwrap());
        assert!(!ne.compile_predicate()(&t));
    }

    #[test]
    fn kleene_logic_tables() {
        let (t, f, u) = (Value::Bool(true), Value::Bool(false), Value::Null);
        assert_eq!(kleene_and(f.clone(), u.clone()), Value::Bool(false));
        assert_eq!(kleene_and(t.clone(), u.clone()), Value::Null);
        assert_eq!(kleene_or(t.clone(), u.clone()), Value::Bool(true));
        assert_eq!(kleene_or(f.clone(), u.clone()), Value::Null);
        assert_eq!(kleene_or(f.clone(), f.clone()), Value::Bool(false));
        assert_eq!(kleene_and(t.clone(), t), Value::Bool(true));
    }

    #[test]
    fn fast_path_predicates_match_general_path() {
        let t = row();
        for e in [
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::lit(5), ScalarExpr::col(0)),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::col(1)),
        ] {
            assert_eq!(e.compile_predicate()(&t), e.eval_predicate(&t).unwrap());
        }
    }

    #[test]
    fn division_by_zero_is_error_interpreted_null_compiled() {
        let e = ScalarExpr::arith(ArithOp::Div, ScalarExpr::col(0), ScalarExpr::lit(0));
        let t = row();
        assert!(matches!(e.eval(&t), Err(PrismaError::Arithmetic(_))));
        assert_eq!(e.compile()(&t), Value::Null);
    }

    #[test]
    fn split_and_conjunction_roundtrip() {
        let p1 = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(1));
        let p2 = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(9));
        let p3 = ScalarExpr::IsNull(Box::new(ScalarExpr::col(3)));
        let c = ScalarExpr::conjunction(vec![p1.clone(), p2.clone(), p3.clone()]);
        let parts = c.split_conjunction();
        assert_eq!(parts, vec![p1, p2, p3]);
        assert_eq!(
            ScalarExpr::conjunction(vec![]),
            ScalarExpr::lit(true)
        );
    }

    // ---- vectorized kernels ----

    /// Columns for a small batch over `schema()`-shaped rows (a Int,
    /// b Double, s Str, n nullable Int).
    fn batch_columns() -> (LazyColumns, Vec<Tuple>) {
        let rows: Vec<Tuple> = vec![
            tuple![10, 2.5, "hi"].concat(&Tuple::new(vec![Value::Null])),
            tuple![3, -1.0, "zz"].concat(&tuple![7]),
            tuple![-4, 0.0, "hi"].concat(&tuple![0]),
            tuple![i64::MAX, 9.25, "aa"].concat(&Tuple::new(vec![Value::Null])),
        ];
        (LazyColumns::from_rows(Arc::new(rows.clone())), rows)
    }

    fn vec_exprs() -> Vec<ScalarExpr> {
        vec![
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5)),
            ScalarExpr::cmp(CmpOp::Le, ScalarExpr::col(1), ScalarExpr::col(0)),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(2), ScalarExpr::lit("hi")),
            ScalarExpr::cmp(CmpOp::Ne, ScalarExpr::col(3), ScalarExpr::lit(7)),
            ScalarExpr::arith(
                ArithOp::Add,
                ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::lit(3)),
                ScalarExpr::col(3),
            ),
            ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::col(1)),
            ScalarExpr::arith(ArithOp::Div, ScalarExpr::col(0), ScalarExpr::lit(0)),
            ScalarExpr::and(
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(0), ScalarExpr::lit(0)),
                ScalarExpr::or(
                    ScalarExpr::IsNull(Box::new(ScalarExpr::col(3))),
                    ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::lit(3.0)),
                ),
            ),
            ScalarExpr::Not(Box::new(ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::col(3),
                ScalarExpr::lit(7),
            ))),
            ScalarExpr::Neg(Box::new(ScalarExpr::col(0))),
            // Type surprise: arithmetic over a string column degrades to
            // NULL in both compiled paths.
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::col(2), ScalarExpr::lit(1)),
        ]
    }

    #[test]
    fn vectorized_expr_matches_scalar_compiler() {
        let (cols, rows) = batch_columns();
        for e in vec_exprs() {
            let scalar = e.compile();
            let vec = e.compile_vec();
            for sel in [SelVec::all(rows.len()), SelVec::from_indices(rows.len(), vec![1, 3])] {
                let out = vec.eval(&cols, &sel);
                assert_eq!(out.len(), sel.count());
                for (p, idx) in sel.iter().enumerate() {
                    assert_eq!(
                        out.value_at(p),
                        scalar(&rows[idx]),
                        "disagreement on {e} at row {idx}"
                    );
                }
            }
        }
    }

    #[test]
    fn vectorized_predicate_matches_scalar_predicate() {
        let (cols, rows) = batch_columns();
        let preds = vec![
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5)),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(0.5), ScalarExpr::col(1)),
            ScalarExpr::cmp(CmpOp::Le, ScalarExpr::col(0), ScalarExpr::col(3)),
            ScalarExpr::conjunction(vec![
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(0), ScalarExpr::lit(-10)),
                ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(2), ScalarExpr::lit("hi")),
                ScalarExpr::cmp(CmpOp::Ne, ScalarExpr::col(3), ScalarExpr::lit(0)),
            ]),
            ScalarExpr::or(
                ScalarExpr::IsNull(Box::new(ScalarExpr::col(3))),
                ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(100)),
            ),
        ];
        let mut out = Vec::new();
        for p in preds {
            let scalar = p.compile_predicate();
            let mut vp = p.compile_vec_predicate();
            vp.select(&cols, &SelVec::all(rows.len()), &mut out);
            let expected: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, t)| scalar(t))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(out, expected, "predicate {p}");
            // Selection refinement only ever narrows.
            let narrow = SelVec::from_indices(rows.len(), vec![0, 2]);
            vp.select(&cols, &narrow, &mut out);
            assert!(out.iter().all(|i| [0, 2].contains(i)), "predicate {p}");
        }
    }

    #[test]
    fn vectorized_predicate_on_empty_batch() {
        let cols = LazyColumns::from_cols(vec![Arc::new(ColumnVec::Int {
            data: vec![],
            nulls: None,
        })]);
        let mut vp = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(5))
            .compile_vec_predicate();
        let mut out = vec![9];
        vp.select(&cols, &SelVec::all(0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn remap_and_columns() {
        let e = ScalarExpr::and(
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(1), ScalarExpr::col(4)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(1), ScalarExpr::lit(0)),
        );
        assert_eq!(e.columns(), vec![1, 4]);
        let shifted = e.remap_columns(&|i| i + 10);
        assert_eq!(shifted.columns(), vec![11, 14]);
    }

    #[test]
    fn zone_refuter_prunes_out_of_range_chunks() {
        use prisma_types::ZoneMap;
        let zones = vec![ZoneMap {
            min: Some(Value::Int(100)),
            max: Some(Value::Int(200)),
            nulls: 3,
            rows: 10,
            has_dups: false,
        }];
        let refutes = |op, lit: i64| {
            ZoneRefuter::compile(&ScalarExpr::cmp(op, ScalarExpr::col(0), ScalarExpr::lit(lit)))
                .refutes(&zones)
        };
        // Eq: only refutable outside [min, max].
        assert!(refutes(CmpOp::Eq, 99));
        assert!(refutes(CmpOp::Eq, 201));
        assert!(!refutes(CmpOp::Eq, 100));
        assert!(!refutes(CmpOp::Eq, 150));
        // Lt/Le hinge on min; Gt/Ge hinge on max — boundary-exact.
        assert!(refutes(CmpOp::Lt, 100));
        assert!(!refutes(CmpOp::Lt, 101));
        assert!(refutes(CmpOp::Le, 99));
        assert!(!refutes(CmpOp::Le, 100));
        assert!(refutes(CmpOp::Gt, 200));
        assert!(!refutes(CmpOp::Gt, 199));
        assert!(refutes(CmpOp::Ge, 201));
        assert!(!refutes(CmpOp::Ge, 200));
        // Ne: only when every non-null row equals the literal.
        let point = vec![ZoneMap {
            min: Some(Value::Int(7)),
            max: Some(Value::Int(7)),
            nulls: 0,
            rows: 4,
            has_dups: true,
        }];
        let ne = |lit: i64| {
            ZoneRefuter::compile(&ScalarExpr::cmp(
                CmpOp::Ne,
                ScalarExpr::col(0),
                ScalarExpr::lit(lit),
            ))
            .refutes(&point)
        };
        assert!(ne(7));
        assert!(!ne(8));
    }

    #[test]
    fn zone_refuter_flipped_null_and_conjunction_factors() {
        use prisma_types::ZoneMap;
        let zones = vec![ZoneMap {
            min: Some(Value::Int(10)),
            max: Some(Value::Int(20)),
            nulls: 0,
            rows: 5,
            has_dups: false,
        }];
        // `30 < col` is `col > 30` — refuted by max = 20.
        let flipped = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(30), ScalarExpr::col(0));
        assert!(ZoneRefuter::compile(&flipped).refutes(&zones));
        // Comparison against a NULL literal never selects a row.
        let vs_null = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::Lit(Value::Null));
        assert!(ZoneRefuter::compile(&vs_null).refutes(&zones));
        // One refuted conjunct refutes the chunk even when the other matches.
        let conj = ScalarExpr::and(
            ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(0), ScalarExpr::lit(10)),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(99)),
        );
        assert!(ZoneRefuter::compile(&conj).refutes(&zones));
        // An all-NULL column refutes any comparison against it.
        let all_null = vec![ZoneMap {
            min: None,
            max: None,
            nulls: 5,
            rows: 5,
            has_dups: false,
        }];
        let cmp = ScalarExpr::cmp(CmpOp::Ne, ScalarExpr::col(0), ScalarExpr::lit(1));
        assert!(ZoneRefuter::compile(&cmp).refutes(&all_null));
        // Factors the refuter does not model stay conservative.
        let opaque = ScalarExpr::or(
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(99)),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(98)),
        );
        let r = ZoneRefuter::compile(&opaque);
        assert!(r.is_trivial());
        assert!(!r.refutes(&zones));
    }
}
