//! Ordered index supporting range scans.

use std::collections::BTreeMap;
use std::ops::Bound;

use prisma_types::{Tuple, Value};

use crate::heap::Rid;

/// Ordered secondary index over one or more key columns.
///
/// Backed by a B-tree keyed on the total order of [`Value`]; supports the
/// range predicates (`<`, `<=`, `>`, `>=`, `BETWEEN`) that the OFM's local
/// query optimizer routes here instead of scanning the heap.
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    key_cols: Vec<usize>,
    map: BTreeMap<Vec<Value>, Vec<Rid>>,
    entries: usize,
}

impl BTreeIndex {
    /// New ordered index on the given key columns.
    pub fn new(key_cols: Vec<usize>) -> Self {
        BTreeIndex {
            key_cols,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// Columns this index covers.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of (key, rid) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Smallest key present.
    pub fn min_key(&self) -> Option<&[Value]> {
        self.map.keys().next().map(Vec::as_slice)
    }

    /// Largest key present.
    pub fn max_key(&self) -> Option<&[Value]> {
        self.map.keys().next_back().map(Vec::as_slice)
    }

    /// Index `tuple` at `rid`.
    pub fn insert(&mut self, tuple: &Tuple, rid: Rid) {
        let key = tuple.key(&self.key_cols);
        self.map.entry(key).or_default().push(rid);
        self.entries += 1;
    }

    /// Remove `tuple`/`rid`; returns whether it was present.
    pub fn remove(&mut self, tuple: &Tuple, rid: Rid) -> bool {
        let key = tuple.key(&self.key_cols);
        if let Some(list) = self.map.get_mut(&key) {
            if let Some(pos) = list.iter().position(|&r| r == rid) {
                list.swap_remove(pos);
                if list.is_empty() {
                    self.map.remove(&key);
                }
                self.entries -= 1;
                return true;
            }
        }
        false
    }

    /// Exact-key lookup.
    pub fn lookup(&self, key: &[Value]) -> &[Rid] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Range scan over keys, bounds as in `std::ops::Bound`, yielding Rids
    /// in key order.
    pub fn range(
        &self,
        lower: Bound<Vec<Value>>,
        upper: Bound<Vec<Value>>,
    ) -> impl Iterator<Item = Rid> + '_ {
        self.map
            .range((lower, upper))
            .flat_map(|(_, rids)| rids.iter().copied())
    }

    /// Convenience single-column range with optional inclusive/exclusive
    /// value bounds.
    pub fn range_one(
        &self,
        lower: Option<(&Value, bool)>,
        upper: Option<(&Value, bool)>,
    ) -> Vec<Rid> {
        let lb = match lower {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(vec![v.clone()]),
            Some((v, false)) => Bound::Excluded(vec![v.clone()]),
        };
        let ub = match upper {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Included(vec![v.clone()]),
            Some((v, false)) => Bound::Excluded(vec![v.clone()]),
        };
        self.range(lb, ub).collect()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::tuple;

    fn idx() -> BTreeIndex {
        let mut idx = BTreeIndex::new(vec![0]);
        for (i, v) in [5, 1, 9, 3, 7, 3].iter().enumerate() {
            idx.insert(&tuple![*v], Rid(i as u32));
        }
        idx
    }

    #[test]
    fn ordered_range_scan() {
        let idx = idx();
        let hits = idx.range_one(Some((&Value::Int(3), true)), Some((&Value::Int(7), false)));
        // keys 3 (two rids) and 5.
        assert_eq!(hits.len(), 3);
        assert_eq!(idx.min_key().unwrap(), &[Value::Int(1)]);
        assert_eq!(idx.max_key().unwrap(), &[Value::Int(9)]);
    }

    #[test]
    fn unbounded_scans() {
        let idx = idx();
        assert_eq!(idx.range_one(None, None).len(), 6);
        assert_eq!(idx.range_one(Some((&Value::Int(8), true)), None), vec![Rid(2)]);
    }

    #[test]
    fn remove_maintains_order_and_counts() {
        let mut idx = idx();
        assert!(idx.remove(&tuple![3], Rid(3)));
        assert_eq!(idx.lookup(&[Value::Int(3)]), &[Rid(5)]);
        assert!(idx.remove(&tuple![3], Rid(5)));
        assert!(idx.lookup(&[Value::Int(3)]).is_empty());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.distinct_keys(), 4);
    }

    #[test]
    fn string_ranges() {
        let mut idx = BTreeIndex::new(vec![0]);
        for (i, s) in ["apple", "banana", "cherry"].iter().enumerate() {
            idx.insert(&tuple![*s], Rid(i as u32));
        }
        let hits = idx.range_one(Some((&Value::from("b"), true)), None);
        assert_eq!(hits, vec![Rid(1), Rid(2)]);
    }
}
