//! # prisma-storage
//!
//! Main-memory storage structures for One-Fragment Managers (paper §2.5):
//!
//! * [`heap::TupleHeap`] — the primary slotted tuple store of a fragment;
//! * [`hash_index::HashIndex`] and [`btree_index::BTreeIndex`] — the
//!   "(various) storage structures" an OFM is generated with;
//! * [`cursor`] — the paper's "markings and cursor maintenance";
//! * [`expr`] — the per-OFM **expression compiler** that "generate\[s\]
//!   routines dynamically … avoid\[ing\] the otherwise excessive
//!   interpretation overhead incurred by a query expression interpreter".
//!
//! Everything here is strictly node-local: distribution lives in
//! `prisma-ofm` / `prisma-gdh`.

pub mod btree_index;
pub mod cursor;
pub mod expr;
pub mod hash_index;
pub mod heap;

pub use btree_index::BTreeIndex;
pub use cursor::{Cursor, Marking};
pub use expr::{
    ArithOp, CmpOp, CompiledExpr, CompiledPredicate, CompiledVecExpr, CompiledVecPredicate,
    ScalarExpr, ZoneRefuter,
};
pub use hash_index::HashIndex;
pub use heap::{Rid, TupleHeap};

/// A fast, non-cryptographic 64-bit hasher (FNV-1a) used for hash indexes
/// and hash joins, where HashDoS resistance is irrelevant and key
/// throughput dominates.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`Fnv1a`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = Fnv1a;
    fn build_hasher(&self) -> Fnv1a {
        Fnv1a::default()
    }
}

/// HashMap keyed with the fast FNV hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FnvBuild>;
/// HashSet keyed with the fast FNV hasher.
pub type FastSet<K> = std::collections::HashSet<K, FnvBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hasher};

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of "a" is 0xaf63dc4c8601ec8c.
        let mut h = FnvBuild.build_hasher();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fast_map_works() {
        let mut m: FastMap<String, i32> = FastMap::default();
        m.insert("x".into(), 1);
        assert_eq!(m.get("x"), Some(&1));
    }
}
