//! # prisma-optimizer
//!
//! The **knowledge-based query optimizer** of the Global Data Handler
//! (paper §2.4):
//!
//! > "A knowledge-based approach to query optimization is chosen to
//! > exploit all this parallelism in a coherent way. The knowledge base
//! > contains rules concerning logical transformations, estimating sizes
//! > of intermediate results, detection of common subexpressions, and
//! > applying parallelism to minimize response time."
//!
//! The four rule families map onto modules:
//!
//! * **logical transformations** — [`fold`] (constant folding),
//!   [`pushdown`] (join-key extraction + selection pushdown),
//!   [`join_order`] (greedy cardinality-driven join ordering), [`prune`]
//!   (column pruning, which minimizes inter-PE shipping);
//! * **size estimation** — [`stats`] and [`cardinality`];
//! * **common-subexpression detection** — [`cse`]; the distributed
//!   executor memoizes detected duplicates so a shared subquery runs once;
//! * **parallelism allocation** — the [`physical`] lowering pass turns
//!   the optimized logical plan into a physical operator tree, choosing
//!   broadcast vs. hash-partitioned join distribution from the
//!   cardinality estimates and fusing projections into scans; the
//!   fragment-parallel executor in `prisma-gdh` ships those physical
//!   subplans to the PEs.
//!
//! Every rule firing is recorded in an explain [`Trace`], and each rule
//! family can be disabled via [`OptimizerConfig`] — experiment E9 ablates
//! them one by one.

pub mod cardinality;
pub mod cse;
pub mod fold;
pub mod join_order;
pub mod physical;
pub mod prune;
pub mod pushdown;
pub mod stats;

use prisma_relalg::LogicalPlan;
use prisma_types::Result;

pub use cardinality::estimate_rows;
pub use cse::detect_common_subexpressions;
pub use physical::{lower_physical, op_label, PhysicalConfig};
pub use stats::{StatsSource, TableStats};

/// Which rule families run (all on by default; E9 toggles them).
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    /// Constant folding and trivial-selection elimination.
    pub fold: bool,
    /// Join-key extraction and selection pushdown.
    pub pushdown: bool,
    /// Cardinality-driven join reordering.
    pub join_order: bool,
    /// Column pruning.
    pub prune: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            fold: true,
            pushdown: true,
            join_order: true,
            prune: true,
        }
    }
}

impl OptimizerConfig {
    /// Everything off — the naive planner output runs as-is.
    pub fn disabled() -> Self {
        OptimizerConfig {
            fold: false,
            pushdown: false,
            join_order: false,
            prune: false,
        }
    }
}

/// Explain trace: which rules fired, and the estimates that drove them.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Human-readable rule firings in order.
    pub fired: Vec<String>,
    enabled: bool,
}

impl Default for Trace {
    fn default() -> Self {
        Trace {
            fired: Vec::new(),
            enabled: true,
        }
    }
}

impl Trace {
    /// A trace that records nothing — for hot paths (the executor
    /// lowers every shipped subplan) where nobody reads the firings and
    /// the per-operator cardinality walk would be pure overhead.
    pub fn sink() -> Trace {
        Trace {
            fired: Vec::new(),
            enabled: false,
        }
    }

    /// Whether this trace records firings (false for [`Trace::sink`]).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn note(&mut self, rule: &str, detail: impl std::fmt::Display) {
        if self.enabled {
            self.fired.push(format!("{rule}: {detail}"));
        }
    }

    /// Number of firings of a given rule family (prefix match).
    pub fn count_of(&self, rule: &str) -> usize {
        self.fired.iter().filter(|f| f.starts_with(rule)).count()
    }
}

/// The optimizer: a rule base applied to logical plans.
pub struct Optimizer<'a> {
    config: OptimizerConfig,
    stats: &'a dyn StatsSource,
}

impl<'a> Optimizer<'a> {
    /// Optimizer over a statistics source (the GDH data dictionary).
    pub fn new(stats: &'a dyn StatsSource) -> Self {
        Optimizer {
            config: OptimizerConfig::default(),
            stats,
        }
    }

    /// Override the rule configuration.
    pub fn with_config(mut self, config: OptimizerConfig) -> Self {
        self.config = config;
        self
    }

    /// Optimize a plan, returning the rewritten plan and the explain
    /// trace. The output is always semantically equivalent to the input
    /// (tests verify by evaluation).
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<(LogicalPlan, Trace)> {
        let mut trace = Trace::default();
        let mut plan = plan.clone();
        if self.config.fold {
            plan = fold::fold_constants(plan, &mut trace);
        }
        if self.config.pushdown {
            // Key extraction enables join ordering; pushdown before and
            // after ordering (ordering can expose new pushdown sites).
            plan = pushdown::extract_join_keys(plan, &mut trace);
            plan = pushdown::push_selections(plan, &mut trace);
        }
        if self.config.join_order {
            plan = join_order::reorder_joins(plan, self.stats, &mut trace)?;
            if self.config.pushdown {
                plan = pushdown::extract_join_keys(plan, &mut trace);
                plan = pushdown::push_selections(plan, &mut trace);
            }
        }
        if self.config.prune {
            plan = prune::prune_columns(plan, &mut trace)?;
        }
        plan.validate()?;
        Ok((plan, trace))
    }

    /// Estimated output rows of a plan (size-estimation rule family).
    pub fn estimate(&self, plan: &LogicalPlan) -> f64 {
        cardinality::estimate_rows(plan, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_relalg::eval;
    use prisma_relalg::Relation;
    use prisma_storage::expr::{CmpOp, ScalarExpr};
    use prisma_types::{tuple, Column, DataType, Schema};
    use std::collections::HashMap;

    fn db() -> HashMap<String, Relation> {
        let big = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("k", DataType::Int),
        ]);
        let small = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("tag", DataType::Str),
        ]);
        let mut db = HashMap::new();
        db.insert(
            "big".to_owned(),
            Relation::new(
                big,
                (0..200).map(|i| tuple![i, i % 10]).collect(),
            ),
        );
        db.insert(
            "small".to_owned(),
            Relation::new(
                small,
                (0..10).map(|i| tuple![i, format!("t{i}")]).collect(),
            ),
        );
        db
    }

    fn stats_of(db: &HashMap<String, Relation>) -> HashMap<String, TableStats> {
        db.iter()
            .map(|(k, v)| (k.clone(), TableStats::from_relation(v)))
            .collect()
    }

    #[test]
    fn optimization_preserves_semantics_on_cross_join_query() {
        let db = db();
        let stats = stats_of(&db);
        // Naive planner shape: Select over cross join.
        let plan = LogicalPlan::scan("big", db["big"].schema().clone().qualify("b"))
            .join(
                LogicalPlan::scan("small", db["small"].schema().clone().qualify("s")),
                vec![],
            )
            .select(ScalarExpr::and(
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2)),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(50)),
            ));
        let opt = Optimizer::new(&stats);
        let (optimized, trace) = opt.optimize(&plan).unwrap();
        let before = eval(&plan, &db).unwrap().canonicalized();
        let after = eval(&optimized, &db).unwrap().canonicalized();
        assert_eq!(before, after);
        assert!(trace.count_of("extract-join-keys") > 0, "{:?}", trace.fired);
    }

    #[test]
    fn disabled_config_is_identity() {
        let db = db();
        let stats = stats_of(&db);
        let plan = LogicalPlan::scan("big", db["big"].schema().clone())
            .select(ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(3)));
        let opt = Optimizer::new(&stats).with_config(OptimizerConfig::disabled());
        let (optimized, trace) = opt.optimize(&plan).unwrap();
        assert_eq!(optimized, plan);
        assert!(trace.fired.is_empty());
    }
}
