//! Physical lowering: the optimizer's parallelism rule family made
//! concrete (paper §2.4: "applying parallelism to minimize response
//! time").
//!
//! Lowers an optimized [`LogicalPlan`] to a [`PhysicalPlan`] and makes the
//! two physical choices the distributed executor consumes:
//!
//! 1. **Join distribution** — per equi-join, broadcast the small side when
//!    its estimated cardinality is at most
//!    [`PhysicalConfig::broadcast_max_rows`], otherwise hash-partition
//!    both sides (grace join). Estimates come from the size-estimation
//!    rule family in [`crate::cardinality`]. The threshold is
//!    **skew-adjusted**: a heavily-repeated join key concentrates one
//!    hash bucket, so partitioning buys less balance than the uniform
//!    model assumes — the broadcast cutoff is raised in proportion to the
//!    heaviest key's share of the rows (known from the per-fragment
//!    most-common-value statistics).
//! 2. **Projection fusion** — a pure column projection directly above a
//!    scan is folded into the scan, so fragments ship only the columns
//!    the query needs (fewer 256-bit packets on the interconnect).
//! 3. **Shuffle placement** — each partitioned join's buckets are
//!    assigned to phase-2 site fragments. With per-fragment statistics
//!    available, buckets are **weight-balanced**: the most-common join
//!    keys of both sides are mapped through the executor's own bucket
//!    hash to estimate per-bucket row weight, and buckets go greedily to
//!    the least-loaded site (initial load = the site fragment's own
//!    resident rows). Without statistics — or with
//!    [`PhysicalConfig::skew_aware_placement`] off — placement falls back
//!    to round-robin over the probe side's fragments.
//!
//! Every choice is recorded in the explain [`Trace`], along with
//! per-operator cardinality estimates and the freshness
//! (fresh/stale/absent) of the statistics each decision consumed.

use prisma_relalg::{lower_with, JoinStrategy, LogicalPlan, PhysicalPlan, ShufflePlacement};
use prisma_storage::expr::ScalarExpr;
use prisma_types::{FragmentId, Result};

use crate::cardinality::{base_column, estimate_rows};
use crate::stats::StatsSource;
use crate::Trace;

/// How strongly join-key skew raises the broadcast cutoff: the effective
/// threshold is `broadcast_max_rows * (1 + SKEW_BROADCAST_BOOST * f)`
/// where `f` is the heaviest key's fraction of its side's rows.
const SKEW_BROADCAST_BOOST: f64 = 4.0;

/// Tunables for the physical lowering.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalConfig {
    /// Broadcast a join side when its estimated row count is at most
    /// this; otherwise partition both sides.
    pub broadcast_max_rows: f64,
    /// Bucket count for partitioned-join shuffles (None = one bucket per
    /// fragment of the larger side). Exposed so experiments and tests
    /// can force bucket-count/fragment-count mismatches.
    pub shuffle_parts: Option<usize>,
    /// Weight-balance shuffle buckets over sites using the join key's
    /// most-common values and per-fragment loads (true, the default).
    /// `false` keeps the probe-side round-robin placement — the E8
    /// baseline.
    pub skew_aware_placement: bool,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        PhysicalConfig {
            // One batch per fragment is cheap to copy everywhere; beyond
            // that, repartitioning moves each tuple once instead of
            // |fragments| times.
            broadcast_max_rows: 1024.0,
            shuffle_parts: None,
            skew_aware_placement: true,
        }
    }
}

/// Lower an optimized logical plan to its physical form, choosing join
/// strategies from cardinality estimates and fusing projections into
/// scans.
pub fn lower_physical(
    plan: &LogicalPlan,
    stats: &dyn StatsSource,
    config: PhysicalConfig,
    trace: &mut Trace,
) -> Result<PhysicalPlan> {
    let mut strategy_notes: Vec<String> = Vec::new();
    let mut skew_notes: Vec<String> = Vec::new();
    let physical = lower_with(plan, &mut |join| {
        let LogicalPlan::Join { left, right, .. } = join else {
            return JoinStrategy::Broadcast;
        };
        let l = estimate_rows(left, stats);
        let r = estimate_rows(right, stats);
        // A repeated join key concentrates one hash bucket, so a grace
        // join's balance benefit shrinks with skew — raise the broadcast
        // cutoff in proportion to the heaviest key's row share.
        let skew = join_key_skew(join, stats);
        let threshold = config.broadcast_max_rows * (1.0 + SKEW_BROADCAST_BOOST * skew);
        let strategy = if l.min(r) <= threshold {
            JoinStrategy::Broadcast
        } else {
            JoinStrategy::Partitioned
        };
        if skew > 0.0 && l.min(r) > config.broadcast_max_rows && l.min(r) <= threshold {
            skew_notes.push(format!(
                "heaviest join key holds {:.0}% of its side's rows; broadcast \
                 threshold raised {:.0} → {threshold:.0}",
                skew * 100.0,
                config.broadcast_max_rows,
            ));
        }
        strategy_notes.push(format!("{strategy} (est left={l:.0}, right={r:.0})"));
        strategy
    })?;
    for note in strategy_notes {
        trace.note("physical-join-strategy", note);
    }
    for note in skew_notes {
        trace.note("physical-join-skew", note);
    }
    let physical = fuse_projections(physical, trace);
    let mut physical = place_shuffles(physical, stats, config, trace);
    physical.push_prune_hints();
    if trace.enabled() {
        note_prune_hints(&physical, trace);
    }
    if trace.enabled() {
        // The annotation walks exist for EXPLAIN's reader; the
        // executor's per-query lowering passes a sink trace and skips
        // them (note_cardinalities re-estimates every subtree — O(n²)
        // in plan size — which is fine for a debug surface, not for the
        // hot path).
        note_vectorized(&physical, trace);
        note_exchanges(&physical, trace);
        note_stats_sources(plan, stats, trace);
        note_cardinalities(plan, stats, trace);
    }
    Ok(physical)
}

/// The heaviest join-key value's share of its side's rows, over every
/// key pair of the join (0 when no side's key column has most-common
/// value statistics). Both sides matter: either one's heavy hitter
/// concentrates the same hash bucket.
fn join_key_skew(join: &LogicalPlan, stats: &dyn StatsSource) -> f64 {
    let LogicalPlan::Join {
        left, right, on, ..
    } = join
    else {
        return 0.0;
    };
    let mut skew = 0.0f64;
    for &(lc, rc) in on {
        for (side, col) in [(&**left, lc), (&**right, rc)] {
            let Some((rel, base)) = base_column(side, col) else {
                continue;
            };
            let Some(ts) = stats.table_stats(rel) else {
                continue;
            };
            if ts.rows > 0 {
                if let Some((_, c)) = ts.mcv_of(base).first() {
                    skew = skew.max(*c as f64 / ts.rows as f64);
                }
            }
        }
    }
    skew.clamp(0.0, 1.0)
}

/// Record the statistics provenance of every base relation the plan
/// scans: freshness (fresh/stale/absent) and how many columns carry
/// histograms — so EXPLAIN names the stats that fed each decision.
fn note_stats_sources(plan: &LogicalPlan, stats: &dyn StatsSource, trace: &mut Trace) {
    let mut seen = std::collections::BTreeSet::new();
    for rel in plan.scanned_relations() {
        if rel.starts_with("__") || rel.starts_with('Δ') || !seen.insert(rel.clone()) {
            continue;
        }
        let freshness = stats.stats_freshness(&rel);
        let detail = match stats.table_stats(&rel) {
            Some(ts) => {
                let with_hist = ts.hist.iter().filter(|h| h.is_some()).count();
                format!(
                    "{rel}: {freshness} ({} row(s), {with_hist}/{} column histogram(s))",
                    ts.rows,
                    ts.hist.len().max(ts.distinct.len()),
                )
            }
            None => format!("{rel}: {freshness} (estimates run on defaults)"),
        };
        trace.note("stats-source", detail);
    }
}

/// Record the estimated output cardinality of every operator, bottom-up
/// — the `est=` half of EXPLAIN's estimated-vs-actual view (EXPLAIN
/// ANALYZE fills in the actuals).
fn note_cardinalities(plan: &LogicalPlan, stats: &dyn StatsSource, trace: &mut Trace) {
    for child in plan.children() {
        note_cardinalities(child, stats, trace);
    }
    trace.note(
        "physical-cardinality",
        format!(
            "{}: est {:.0} row(s)",
            op_label(plan),
            estimate_rows(plan, stats)
        ),
    );
}

/// Short operator label for cardinality notes (also used by EXPLAIN
/// ANALYZE's estimated-vs-actual section).
pub fn op_label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { relation, .. } => format!("Scan({relation})"),
        LogicalPlan::Values { .. } => "Values".into(),
        LogicalPlan::Select { .. } => "Select".into(),
        LogicalPlan::Project { .. } => "Project".into(),
        LogicalPlan::Join { kind, .. } => format!("Join[{kind:?}]"),
        LogicalPlan::Union { .. } => "Union".into(),
        LogicalPlan::Difference { .. } => "Difference".into(),
        LogicalPlan::Distinct { .. } => "Distinct".into(),
        LogicalPlan::Aggregate { .. } => "Aggregate".into(),
        LogicalPlan::Sort { .. } => "Sort".into(),
        LogicalPlan::Limit { .. } => "Limit".into(),
        LogicalPlan::Closure { .. } => "Closure".into(),
        LogicalPlan::Fixpoint { name, .. } => format!("Fixpoint({name})"),
    }
}

/// The base relation a shippable join side scans, when the side is a
/// single-relation operator chain (the only shape the parallel executor
/// runs as a grace join).
fn scanned_base_relation(plan: &PhysicalPlan) -> Option<&str> {
    match plan {
        PhysicalPlan::SeqScan { relation, .. } => {
            (!relation.starts_with("__") && !relation.starts_with('Δ'))
                .then_some(relation.as_str())
        }
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            scanned_base_relation(input)
        }
        _ => None,
    }
}

/// Emit the shuffle placement map for every partitioned join whose sides
/// scan known-fragmented base relations: bucket `j` of both sides is
/// joined at a fragment of the **left** (probe) relation, chosen
/// round-robin, so phase-1 streams address their chunks straight at the
/// phase-2 site actors instead of relaying through the coordinator.
/// Bucket count defaults to the larger side's fragment count
/// ([`PhysicalConfig::shuffle_parts`] overrides).
fn place_shuffles(
    plan: PhysicalPlan,
    stats: &dyn StatsSource,
    config: PhysicalConfig,
    trace: &mut Trace,
) -> PhysicalPlan {
    match plan {
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            strategy: JoinStrategy::Partitioned,
            placement: None,
        } => {
            let left = Box::new(place_shuffles(*left, stats, config, trace));
            let right = Box::new(place_shuffles(*right, stats, config, trace));
            let placement = match (
                scanned_base_relation(&left).and_then(|r| stats.fragmentation(r)),
                scanned_base_relation(&right).and_then(|r| stats.fragmentation(r)),
            ) {
                (Some(lfrags), Some(rfrags)) if !lfrags.is_empty() => {
                    let parts = config
                        .shuffle_parts
                        .unwrap_or_else(|| lfrags.len().max(rfrags.len()))
                        .max(1);
                    let lrel = scanned_base_relation(&left).expect("checked above");
                    let weighted = if config.skew_aware_placement {
                        weighted_placement(&left, &right, &on, parts, &lfrags, lrel, stats)
                    } else {
                        None
                    };
                    let p = match weighted {
                        Some((p, max_bucket, max_site)) => {
                            trace.note(
                                "physical-shuffle-placement",
                                format!(
                                    "{} bucket(s) skew-weighted over {} site(s) of {lrel} \
                                     (max bucket est {max_bucket:.0} row(s), max site est \
                                     {max_site:.0})",
                                    p.parts,
                                    lfrags.len().min(p.parts),
                                ),
                            );
                            p
                        }
                        None => {
                            let p = ShufflePlacement::round_robin(parts, &lfrags);
                            trace.note(
                                "physical-shuffle-placement",
                                format!(
                                    "{} bucket(s) over {} site(s) of {lrel}",
                                    p.parts,
                                    lfrags.len().min(p.parts),
                                ),
                            );
                            p
                        }
                    };
                    Some(p)
                }
                _ => None,
            };
            PhysicalPlan::HashJoin {
                left,
                right,
                kind,
                on,
                residual,
                strategy: JoinStrategy::Partitioned,
                placement,
            }
        }
        other => map_children(other, &mut |c| place_shuffles(c, stats, config, trace)),
    }
}

/// Trace a physical side plan's output column back to its base-relation
/// column through Filter/Project/projecting-scan chains — the shapes the
/// parallel executor ships as grace-join sides.
fn physical_base_column(plan: &PhysicalPlan, col: usize) -> Option<(&str, usize)> {
    match plan {
        PhysicalPlan::SeqScan {
            relation,
            projection,
            ..
        } => {
            let base = match projection {
                Some(cols) => *cols.get(col)?,
                None => col,
            };
            (!relation.starts_with("__") && !relation.starts_with('Δ'))
                .then_some((relation.as_str(), base))
        }
        PhysicalPlan::Filter { input, .. } => physical_base_column(input, col),
        PhysicalPlan::Project { input, exprs, .. } => match exprs.get(col)? {
            ScalarExpr::Col(i) => physical_base_column(input, *i),
            _ => None,
        },
        _ => None,
    }
}

/// Weight-balanced shuffle placement: estimate each bucket's row weight
/// from both sides' most-common join-key values (mapped through the
/// executor's own [`prisma_relalg::exec::key_hash`] bucketing, so the
/// estimate and the runtime agree on where each value lands) plus a
/// uniform share for the remaining rows, then assign buckets greedily —
/// heaviest first — to the least-loaded probe-side fragment, seeding
/// each site's load with its resident rows (the per-PE load signal).
///
/// Returns `None` — and the caller falls back to round-robin — when the
/// join key is multi-column (per-column MCVs cannot predict the joint
/// hash) or when neither side's key column has most-common-value
/// statistics (the weights would be flat and the greedy pass would
/// reproduce round-robin anyway).
fn weighted_placement(
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    on: &[(usize, usize)],
    parts: usize,
    lfrags: &[FragmentId],
    lrel: &str,
    stats: &dyn StatsSource,
) -> Option<(ShufflePlacement, f64, f64)> {
    let &[(lc, rc)] = on else {
        return None;
    };
    let mut weights = vec![0.0f64; parts];
    let mut any_mcv = false;
    for (side, col) in [(left, lc), (right, rc)] {
        let Some((rel, base)) = physical_base_column(side, col) else {
            continue;
        };
        let Some(ts) = stats.table_stats(rel) else {
            continue;
        };
        let mcv = ts.mcv_of(base);
        if mcv.is_empty() {
            for w in weights.iter_mut() {
                *w += ts.rows as f64 / parts as f64;
            }
            continue;
        }
        any_mcv = true;
        let mcv_rows: u64 = mcv.iter().map(|&(_, c)| c).sum();
        let rest = ts.rows.saturating_sub(mcv_rows) as f64 / parts as f64;
        for w in weights.iter_mut() {
            *w += rest;
        }
        for (v, c) in mcv {
            let j = (prisma_relalg::exec::key_hash(std::slice::from_ref(v))
                % parts as u64) as usize;
            weights[j] += *c as f64;
        }
    }
    if !any_mcv {
        return None;
    }
    // Seed each site with its resident rows, so a fragment already
    // holding more data attracts fewer buckets. `fragment_rows` (not
    // `fragment_stats`): only the counts matter here, and this runs per
    // partitioned join per query — cloning every fragment's histograms
    // and MCV lists for one u64 apiece was measurable in E8.
    let mut loads: Vec<f64> = match stats.fragment_rows(lrel) {
        Some(fs) => lfrags
            .iter()
            .map(|fid| {
                fs.iter()
                    .find(|(id, _)| id == fid)
                    .map_or(0.0, |&(_, rows)| rows as f64)
            })
            .collect(),
        None => vec![0.0; lfrags.len()],
    };
    let mut order: Vec<usize> = (0..parts).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut sites = vec![lfrags[0]; parts];
    for j in order {
        let (s, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .expect("at least one site");
        sites[j] = lfrags[s];
        loads[s] += weights[j];
    }
    let max_bucket = weights.iter().copied().fold(0.0f64, f64::max);
    let max_site = loads.iter().copied().fold(0.0f64, f64::max);
    Some((ShufflePlacement { parts, sites }, max_bucket, max_site))
}

/// Rebuild one node with `f` applied to each child (structure-preserving
/// recursion helper for physical-plan passes).
fn map_children(
    plan: PhysicalPlan,
    f: &mut impl FnMut(PhysicalPlan) -> PhysicalPlan,
) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            strategy,
            placement,
        } => PhysicalPlan::HashJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            on,
            residual,
            strategy,
            placement,
        },
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            kind,
            residual,
        } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            residual,
        },
        PhysicalPlan::Union { left, right, all } => PhysicalPlan::Union {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            all,
        },
        PhysicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        PhysicalPlan::Closure { input } => PhysicalPlan::Closure {
            input: Box::new(f(*input)),
        },
        PhysicalPlan::Fixpoint { name, base, step } => PhysicalPlan::Fixpoint {
            name,
            base: Box::new(f(*base)),
            step: Box::new(f(*step)),
        },
        leaf @ (PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. }) => leaf,
    }
}

/// Record in the EXPLAIN trace how each exchange (fragment→coordinator
/// data movement) ships its data. Base-relation scans and grace-join
/// repartitioning **stream** — one `BatchChunk`/`PartitionChunk` message
/// per produced batch, merged while fragments still scan — while a
/// broadcast join's build side is the one remaining **materialized**
/// exchange (it must be complete before it is copied to every fragment).
fn note_exchanges(plan: &PhysicalPlan, trace: &mut Trace) {
    match plan {
        PhysicalPlan::SeqScan { relation, .. } if !relation.starts_with("__") => {
            trace.note(
                "physical-exchange",
                format!("scan {relation}: streams batches fragment→coordinator"),
            );
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            strategy,
            ..
        } => {
            match strategy {
                JoinStrategy::Partitioned => trace.note(
                    "physical-exchange",
                    "partitioned join: both sides stream buckets per-batch, \
                     addressed fragment→fragment at the phase-2 sites"
                        .to_owned(),
                ),
                JoinStrategy::Broadcast => trace.note(
                    "physical-exchange",
                    "broadcast join: build side materialized, probe side streams".to_owned(),
                ),
            }
            note_exchanges(left, trace);
            note_exchanges(right, trace);
        }
        PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::Union { left, right, .. }
        | PhysicalPlan::Difference { left, right } => {
            note_exchanges(left, trace);
            note_exchanges(right, trace);
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Distinct { input }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Closure { input } => note_exchanges(input, trace),
        PhysicalPlan::Fixpoint { base, step, .. } => {
            note_exchanges(base, trace);
            note_exchanges(step, trace);
        }
        PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. } => {}
    }
}

/// Record in the EXPLAIN trace which operators will evaluate their
/// expressions through the vectorized (column-at-a-time) kernels: every
/// Filter predicate and every non-fused Project in the physical plan.
fn note_vectorized(plan: &PhysicalPlan, trace: &mut Trace) {
    match plan {
        PhysicalPlan::Filter { input, predicate } => {
            trace.note("physical-vectorized-eval", format!("filter {predicate}"));
            note_vectorized(input, trace);
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let shown: Vec<String> = exprs.iter().map(ToString::to_string).collect();
            trace.note(
                "physical-vectorized-eval",
                format!("project [{}]", shown.join(", ")),
            );
            note_vectorized(input, trace);
        }
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::Union { left, right, .. }
        | PhysicalPlan::Difference { left, right } => {
            note_vectorized(left, trace);
            note_vectorized(right, trace);
        }
        PhysicalPlan::Distinct { input }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Closure { input } => note_vectorized(input, trace),
        PhysicalPlan::Fixpoint { base, step, .. } => {
            note_vectorized(base, trace);
            note_vectorized(step, trace);
        }
        PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. } => {}
    }
}

/// Record in the EXPLAIN trace which scans carry a zone-map prune hint
/// (the filter predicate copied down by
/// [`PhysicalPlan::push_prune_hints`]): sealed chunks whose zone maps
/// refute the hint are skipped whole at scan open.
fn note_prune_hints(plan: &PhysicalPlan, trace: &mut Trace) {
    if let PhysicalPlan::SeqScan {
        relation,
        prune: Some(p),
        ..
    } = plan
    {
        trace.note("physical-zone-prune", format!("{relation} prune {p}"));
    }
    for c in plan.children() {
        note_prune_hints(c, trace);
    }
}

/// Fold `Project [Col…] → SeqScan` pairs into projecting scans. Only
/// pure column projections whose output schema matches the scan schema's
/// projection are fused — expression evaluation and renaming stay as
/// explicit operators.
fn fuse_projections(plan: PhysicalPlan, trace: &mut Trace) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let input = fuse_projections(*input, trace);
            if let PhysicalPlan::SeqScan {
                relation,
                schema: base,
                projection: None,
                prune,
            } = &input
            {
                let cols: Option<Vec<usize>> = exprs
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Col(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                if let Some(cols) = cols {
                    if base.project(&cols) == schema {
                        trace.note(
                            "physical-scan-projection",
                            format!("{relation} cols={cols:?}"),
                        );
                        return PhysicalPlan::SeqScan {
                            relation: relation.clone(),
                            schema: base.clone(),
                            projection: Some(cols),
                            prune: prune.clone(),
                        };
                    }
                }
            }
            PhysicalPlan::Project {
                input: Box::new(input),
                exprs,
                schema,
            }
        }
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(fuse_projections(*input, trace)),
            predicate,
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            strategy,
            placement,
        } => PhysicalPlan::HashJoin {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
            kind,
            on,
            residual,
            strategy,
            placement,
        },
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            kind,
            residual,
        } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
            kind,
            residual,
        },
        PhysicalPlan::Union { left, right, all } => PhysicalPlan::Union {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
            all,
        },
        PhysicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(fuse_projections(*input, trace)),
        },
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(fuse_projections(*input, trace)),
            group_by,
            aggs,
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(fuse_projections(*input, trace)),
            keys,
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(fuse_projections(*input, trace)),
            n,
        },
        PhysicalPlan::Closure { input } => PhysicalPlan::Closure {
            input: Box::new(fuse_projections(*input, trace)),
        },
        PhysicalPlan::Fixpoint { name, base, step } => PhysicalPlan::Fixpoint {
            name,
            base: Box::new(fuse_projections(*base, trace)),
            step: Box::new(fuse_projections(*step, trace)),
        },
        leaf @ (PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use prisma_types::{Column, DataType, Schema};
    use std::collections::HashMap;

    fn schema2() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn stats() -> HashMap<String, TableStats> {
        let mut m = HashMap::new();
        for (name, rows) in [("big", 100_000u64), ("huge", 50_000), ("small", 40)] {
            m.insert(
                name.to_owned(),
                TableStats {
                    rows,
                    distinct: vec![rows, rows / 10],
                    min: vec![None, None],
                    max: vec![None, None],
                    ..TableStats::default()
                },
            );
        }
        m
    }

    #[test]
    fn small_side_broadcasts_large_sides_partition() {
        let s = stats();
        let small_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("small", schema2()), vec![(1, 0)]);
        let mut trace = Trace::default();
        let phys =
            lower_physical(&small_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Broadcast,
                ..
            }
        ));

        let big_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let phys = lower_physical(&big_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Partitioned,
                ..
            }
        ));
        assert!(trace.count_of("physical-join-strategy") == 2, "{:?}", trace.fired);
    }

    #[test]
    fn pure_column_projection_fuses_into_scan() {
        let s = stats();
        let plan = LogicalPlan::scan("big", schema2()).project_cols(&[1]).unwrap();
        let mut trace = Trace::default();
        let phys = lower_physical(&plan, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            &phys,
            PhysicalPlan::SeqScan {
                projection: Some(cols),
                ..
            } if cols == &vec![1]
        ));
        assert_eq!(trace.count_of("physical-scan-projection"), 1);
        // The fused scan's schema matches the logical projection exactly.
        assert_eq!(phys.output_schema().unwrap(), plan.output_schema().unwrap());
    }

    #[test]
    fn explain_notes_vectorized_filter_and_project() {
        use prisma_storage::expr::CmpOp;
        let s = stats();
        let plan = LogicalPlan::scan("big", schema2())
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(0),
                ScalarExpr::lit(5),
            ))
            .project_cols(&[1])
            .unwrap();
        let mut trace = Trace::default();
        lower_physical(&plan, &s, PhysicalConfig::default(), &mut trace).unwrap();
        // Both the filter predicate and the projection above it (not
        // adjacent to the scan, so not fused) evaluate vectorized.
        assert_eq!(trace.count_of("physical-vectorized-eval"), 2);
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("physical-vectorized-eval: filter")));

        // A pure column projection directly above the scan is fused away
        // and leaves no vectorized-eval note.
        let fused = LogicalPlan::scan("big", schema2()).project_cols(&[1]).unwrap();
        let mut trace = Trace::default();
        lower_physical(&fused, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert_eq!(trace.count_of("physical-vectorized-eval"), 0);
    }

    #[test]
    fn explain_notes_streaming_exchanges() {
        let s = stats();
        // Broadcast join: both scans stream; the build side is the one
        // materialized exchange.
        let small_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("small", schema2()), vec![(1, 0)]);
        let mut trace = Trace::default();
        lower_physical(&small_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert_eq!(trace.count_of("physical-exchange"), 3, "{:?}", trace.fired);
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("broadcast join: build side materialized")));
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("scan big: streams batches")));

        // Partitioned join: buckets stream per-batch.
        let big_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let mut trace = Trace::default();
        lower_physical(&big_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("partitioned join: both sides stream buckets per-batch")));
    }

    /// Stats source that also knows fragmentation (what the GDH data
    /// dictionary provides at run time).
    struct Fragged(HashMap<String, TableStats>, HashMap<String, Vec<prisma_types::FragmentId>>);

    impl StatsSource for Fragged {
        fn table_stats(&self, name: &str) -> Option<std::sync::Arc<TableStats>> {
            self.0.get(name).map(|s| std::sync::Arc::new(s.clone()))
        }
        fn fragmentation(&self, name: &str) -> Option<Vec<prisma_types::FragmentId>> {
            self.1.get(name).cloned()
        }
    }

    #[test]
    fn partitioned_join_gets_a_shuffle_placement_map() {
        use prisma_types::FragmentId;
        let frags: HashMap<String, Vec<FragmentId>> = [
            ("big".to_owned(), vec![FragmentId(0), FragmentId(1)]),
            ("huge".to_owned(), (2..5).map(FragmentId).collect()),
        ]
        .into_iter()
        .collect();
        let s = Fragged(stats(), frags);
        let join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let mut trace = Trace::default();
        let phys = lower_physical(&join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        let PhysicalPlan::HashJoin {
            placement: Some(p), ..
        } = &phys
        else {
            panic!("no placement: {phys}");
        };
        // Buckets = the larger side's fragment count; every site is a
        // fragment of the left (probe) relation, round-robin.
        assert_eq!(p.parts, 3);
        assert_eq!(p.sites, vec![FragmentId(0), FragmentId(1), FragmentId(0)]);
        assert_eq!(p.by_site().len(), 2);
        assert_eq!(trace.count_of("physical-shuffle-placement"), 1);
        assert!(phys.to_string().contains("shuffle 3×buckets→2 site(s)"), "{phys}");

        // The bucket count is overridable — including past the fragment
        // count (the mismatch edge the executor must survive).
        let s = Fragged(
            stats(),
            [
                ("big".to_owned(), vec![FragmentId(0), FragmentId(1)]),
                ("huge".to_owned(), (2..5).map(FragmentId).collect()),
            ]
            .into_iter()
            .collect(),
        );
        let cfg = PhysicalConfig {
            shuffle_parts: Some(7),
            ..PhysicalConfig::default()
        };
        let mut trace = Trace::default();
        let phys = lower_physical(&join, &s, cfg, &mut trace).unwrap();
        let PhysicalPlan::HashJoin {
            placement: Some(p), ..
        } = &phys
        else {
            panic!("no placement: {phys}");
        };
        assert_eq!(p.parts, 7);
        assert_eq!(p.sites.len(), 7);

        // Without fragmentation knowledge the map is omitted (the
        // executor derives a default).
        let mut trace = Trace::default();
        let phys =
            lower_physical(&join, &stats(), PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                placement: None,
                ..
            }
        ));
    }

    /// Stats source with fragmentation, per-fragment statistics and MCVs
    /// — everything the dictionary provides at run time.
    struct FullStats {
        tables: HashMap<String, TableStats>,
        frags: HashMap<String, Vec<prisma_types::FragmentId>>,
        frag_stats: HashMap<String, Vec<(prisma_types::FragmentId, prisma_types::FragmentStatistics)>>,
    }

    impl StatsSource for FullStats {
        fn table_stats(&self, name: &str) -> Option<std::sync::Arc<TableStats>> {
            self.tables.get(name).map(|s| std::sync::Arc::new(s.clone()))
        }
        fn fragmentation(&self, name: &str) -> Option<Vec<prisma_types::FragmentId>> {
            self.frags.get(name).cloned()
        }
        fn fragment_stats(
            &self,
            name: &str,
        ) -> Option<Vec<(prisma_types::FragmentId, prisma_types::FragmentStatistics)>> {
            self.frag_stats.get(name).cloned()
        }
        fn stats_freshness(&self, name: &str) -> prisma_types::StatsFreshness {
            if self.tables.contains_key(name) {
                prisma_types::StatsFreshness::Fresh
            } else {
                prisma_types::StatsFreshness::Absent
            }
        }
    }

    #[test]
    fn skew_weighted_placement_spreads_heavy_buckets() {
        use prisma_types::{FragmentId, Value};
        // One join-key value carries most of both sides' rows; its
        // bucket outweighs everything else combined, so the weighted
        // pass must give its site no other bucket (round-robin would
        // stack 3 more on it).
        let mut tables = stats();
        let heavy = Value::Int(7);
        tables.get_mut("big").unwrap().mcv =
            vec![vec![(heavy.clone(), 60_000)], Vec::new()];
        tables.get_mut("huge").unwrap().mcv =
            vec![vec![(heavy.clone(), 20_000)], Vec::new()];
        let frags: HashMap<String, Vec<FragmentId>> = [
            ("big".to_owned(), vec![FragmentId(0), FragmentId(1)]),
            ("huge".to_owned(), vec![FragmentId(2), FragmentId(3)]),
        ]
        .into_iter()
        .collect();
        let s = FullStats {
            tables,
            frags,
            frag_stats: HashMap::new(),
        };
        let join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let cfg = PhysicalConfig {
            shuffle_parts: Some(8),
            ..PhysicalConfig::default()
        };
        let mut trace = Trace::default();
        let phys = lower_physical(&join, &s, cfg, &mut trace).unwrap();
        let PhysicalPlan::HashJoin {
            placement: Some(p), ..
        } = &phys
        else {
            panic!("no placement: {phys}");
        };
        assert_eq!(p.parts, 8);
        assert_eq!(trace.count_of("physical-shuffle-placement"), 1);
        assert!(
            trace.fired.iter().any(|f| f.contains("skew-weighted")),
            "{:?}",
            trace.fired
        );
        // The heavy value's bucket must sit alone on its site: every
        // other bucket goes to the other fragment.
        let heavy_bucket =
            (prisma_relalg::exec::key_hash(std::slice::from_ref(&heavy)) % 8) as usize;
        let heavy_site = p.sites[heavy_bucket];
        let colocated = p
            .sites
            .iter()
            .enumerate()
            .filter(|&(j, &s)| j != heavy_bucket && s == heavy_site)
            .count();
        assert_eq!(colocated, 0, "heavy bucket shares its site: {:?}", p.sites);

        // The baseline flag restores probe-side round-robin.
        let cfg = PhysicalConfig {
            shuffle_parts: Some(8),
            skew_aware_placement: false,
            ..PhysicalConfig::default()
        };
        let mut trace = Trace::default();
        let phys = lower_physical(&join, &s, cfg, &mut trace).unwrap();
        let PhysicalPlan::HashJoin {
            placement: Some(p), ..
        } = &phys
        else {
            panic!("no placement: {phys}");
        };
        assert_eq!(
            p.sites,
            ShufflePlacement::round_robin(8, &[prisma_types::FragmentId(0), prisma_types::FragmentId(1)]).sites
        );
        assert!(!trace.fired.iter().any(|f| f.contains("skew-weighted")));
    }

    #[test]
    fn key_skew_raises_the_broadcast_threshold() {
        use prisma_types::Value;
        // Both sides estimated above the base threshold (2000 > 1024),
        // but the join key's heaviest value holds half the big side's
        // rows: threshold × (1 + 4·0.5) = 3× → broadcast after all.
        let mut tables = HashMap::new();
        tables.insert(
            "l".to_owned(),
            TableStats {
                rows: 2_000,
                distinct: vec![2_000, 10],
                min: vec![None, None],
                max: vec![None, None],
                ..TableStats::default()
            },
        );
        let mut rstats = TableStats {
            rows: 40_000,
            distinct: vec![100, 10],
            min: vec![None, None],
            max: vec![None, None],
            ..TableStats::default()
        };
        rstats.mcv = vec![vec![(Value::Int(1), 20_000)], Vec::new()];
        tables.insert("r".to_owned(), rstats);
        let join = LogicalPlan::scan("l", schema2())
            .join(LogicalPlan::scan("r", schema2()), vec![(0, 0)]);
        let mut trace = Trace::default();
        let phys =
            lower_physical(&join, &tables, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(
            matches!(
                phys,
                PhysicalPlan::HashJoin {
                    strategy: JoinStrategy::Broadcast,
                    ..
                }
            ),
            "{phys}"
        );
        assert_eq!(trace.count_of("physical-join-skew"), 1, "{:?}", trace.fired);

        // Without the skew the same sizes partition.
        let mut tables2 = tables.clone();
        tables2.get_mut("r").unwrap().mcv = Vec::new();
        let mut trace = Trace::default();
        let phys =
            lower_physical(&join, &tables2, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Partitioned,
                ..
            }
        ));
    }

    #[test]
    fn explain_notes_cardinalities_and_stats_sources() {
        use prisma_storage::expr::CmpOp;
        let s = stats();
        let plan = LogicalPlan::scan("big", schema2())
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(0),
                ScalarExpr::lit(5),
            ))
            .join(LogicalPlan::scan("mystery", schema2()), vec![(0, 0)]);
        let mut trace = Trace::default();
        lower_physical(&plan, &s, PhysicalConfig::default(), &mut trace).unwrap();
        // One cardinality note per operator: 2 scans + select + join.
        assert_eq!(trace.count_of("physical-cardinality"), 4, "{:?}", trace.fired);
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("Scan(big): est 100000 row(s)")));
        // Both relations' stats provenance is named; the unknown one is
        // absent.
        assert_eq!(trace.count_of("stats-source"), 2);
        assert!(trace.fired.iter().any(|f| f.contains("big: fresh")));
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("mystery: absent")));
    }

    #[test]
    fn renaming_projection_is_not_fused() {
        use prisma_storage::expr::ScalarExpr;
        let s = stats();
        let renamed = LogicalPlan::Project {
            input: Box::new(LogicalPlan::scan("big", schema2())),
            exprs: vec![ScalarExpr::col(1)],
            schema: Schema::new(vec![Column::new("renamed", DataType::Int)]),
        };
        let mut trace = Trace::default();
        let phys = lower_physical(&renamed, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(phys, PhysicalPlan::Project { .. }));
        assert_eq!(trace.count_of("physical-scan-projection"), 0);
    }
}
