//! Physical lowering: the optimizer's parallelism rule family made
//! concrete (paper §2.4: "applying parallelism to minimize response
//! time").
//!
//! Lowers an optimized [`LogicalPlan`] to a [`PhysicalPlan`] and makes the
//! two physical choices the distributed executor consumes:
//!
//! 1. **Join distribution** — per equi-join, broadcast the small side when
//!    its estimated cardinality is at most
//!    [`PhysicalConfig::broadcast_max_rows`], otherwise hash-partition
//!    both sides (grace join). Estimates come from the size-estimation
//!    rule family in [`crate::cardinality`].
//! 2. **Projection fusion** — a pure column projection directly above a
//!    scan is folded into the scan, so fragments ship only the columns
//!    the query needs (fewer 256-bit packets on the interconnect).
//!
//! Every choice is recorded in the explain [`Trace`].

use prisma_relalg::{lower_with, JoinStrategy, LogicalPlan, PhysicalPlan, ShufflePlacement};
use prisma_storage::expr::ScalarExpr;
use prisma_types::Result;

use crate::cardinality::estimate_rows;
use crate::stats::StatsSource;
use crate::Trace;

/// Tunables for the physical lowering.
#[derive(Debug, Clone, Copy)]
pub struct PhysicalConfig {
    /// Broadcast a join side when its estimated row count is at most
    /// this; otherwise partition both sides.
    pub broadcast_max_rows: f64,
    /// Bucket count for partitioned-join shuffles (None = one bucket per
    /// fragment of the larger side). Exposed so experiments and tests
    /// can force bucket-count/fragment-count mismatches.
    pub shuffle_parts: Option<usize>,
}

impl Default for PhysicalConfig {
    fn default() -> Self {
        PhysicalConfig {
            // One batch per fragment is cheap to copy everywhere; beyond
            // that, repartitioning moves each tuple once instead of
            // |fragments| times.
            broadcast_max_rows: 1024.0,
            shuffle_parts: None,
        }
    }
}

/// Lower an optimized logical plan to its physical form, choosing join
/// strategies from cardinality estimates and fusing projections into
/// scans.
pub fn lower_physical(
    plan: &LogicalPlan,
    stats: &dyn StatsSource,
    config: PhysicalConfig,
    trace: &mut Trace,
) -> Result<PhysicalPlan> {
    let mut strategy_notes: Vec<String> = Vec::new();
    let physical = lower_with(plan, &mut |join| {
        let LogicalPlan::Join { left, right, .. } = join else {
            return JoinStrategy::Broadcast;
        };
        let l = estimate_rows(left, stats);
        let r = estimate_rows(right, stats);
        let strategy = if l.min(r) <= config.broadcast_max_rows {
            JoinStrategy::Broadcast
        } else {
            JoinStrategy::Partitioned
        };
        strategy_notes.push(format!("{strategy} (est left={l:.0}, right={r:.0})"));
        strategy
    })?;
    for note in strategy_notes {
        trace.note("physical-join-strategy", note);
    }
    let physical = fuse_projections(physical, trace);
    let physical = place_shuffles(physical, stats, config, trace);
    note_vectorized(&physical, trace);
    note_exchanges(&physical, trace);
    Ok(physical)
}

/// The base relation a shippable join side scans, when the side is a
/// single-relation operator chain (the only shape the parallel executor
/// runs as a grace join).
fn scanned_base_relation(plan: &PhysicalPlan) -> Option<&str> {
    match plan {
        PhysicalPlan::SeqScan { relation, .. } => {
            (!relation.starts_with("__") && !relation.starts_with('Δ'))
                .then_some(relation.as_str())
        }
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            scanned_base_relation(input)
        }
        _ => None,
    }
}

/// Emit the shuffle placement map for every partitioned join whose sides
/// scan known-fragmented base relations: bucket `j` of both sides is
/// joined at a fragment of the **left** (probe) relation, chosen
/// round-robin, so phase-1 streams address their chunks straight at the
/// phase-2 site actors instead of relaying through the coordinator.
/// Bucket count defaults to the larger side's fragment count
/// ([`PhysicalConfig::shuffle_parts`] overrides).
fn place_shuffles(
    plan: PhysicalPlan,
    stats: &dyn StatsSource,
    config: PhysicalConfig,
    trace: &mut Trace,
) -> PhysicalPlan {
    match plan {
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            strategy: JoinStrategy::Partitioned,
            placement: None,
        } => {
            let left = Box::new(place_shuffles(*left, stats, config, trace));
            let right = Box::new(place_shuffles(*right, stats, config, trace));
            let placement = match (
                scanned_base_relation(&left).and_then(|r| stats.fragmentation(r)),
                scanned_base_relation(&right).and_then(|r| stats.fragmentation(r)),
            ) {
                (Some(lfrags), Some(rfrags)) if !lfrags.is_empty() => {
                    let parts = config
                        .shuffle_parts
                        .unwrap_or_else(|| lfrags.len().max(rfrags.len()))
                        .max(1);
                    let p = ShufflePlacement::round_robin(parts, &lfrags);
                    trace.note(
                        "physical-shuffle-placement",
                        format!(
                            "{} bucket(s) over {} site(s) of {}",
                            p.parts,
                            lfrags.len().min(p.parts),
                            scanned_base_relation(&left).expect("checked above"),
                        ),
                    );
                    Some(p)
                }
                _ => None,
            };
            PhysicalPlan::HashJoin {
                left,
                right,
                kind,
                on,
                residual,
                strategy: JoinStrategy::Partitioned,
                placement,
            }
        }
        other => map_children(other, &mut |c| place_shuffles(c, stats, config, trace)),
    }
}

/// Rebuild one node with `f` applied to each child (structure-preserving
/// recursion helper for physical-plan passes).
fn map_children(
    plan: PhysicalPlan,
    f: &mut impl FnMut(PhysicalPlan) -> PhysicalPlan,
) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => PhysicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            strategy,
            placement,
        } => PhysicalPlan::HashJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            on,
            residual,
            strategy,
            placement,
        },
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            kind,
            residual,
        } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            residual,
        },
        PhysicalPlan::Union { left, right, all } => PhysicalPlan::Union {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            all,
        },
        PhysicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(f(*input)),
            n,
        },
        PhysicalPlan::Closure { input } => PhysicalPlan::Closure {
            input: Box::new(f(*input)),
        },
        PhysicalPlan::Fixpoint { name, base, step } => PhysicalPlan::Fixpoint {
            name,
            base: Box::new(f(*base)),
            step: Box::new(f(*step)),
        },
        leaf @ (PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. }) => leaf,
    }
}

/// Record in the EXPLAIN trace how each exchange (fragment→coordinator
/// data movement) ships its data. Base-relation scans and grace-join
/// repartitioning **stream** — one `BatchChunk`/`PartitionChunk` message
/// per produced batch, merged while fragments still scan — while a
/// broadcast join's build side is the one remaining **materialized**
/// exchange (it must be complete before it is copied to every fragment).
fn note_exchanges(plan: &PhysicalPlan, trace: &mut Trace) {
    match plan {
        PhysicalPlan::SeqScan { relation, .. } if !relation.starts_with("__") => {
            trace.note(
                "physical-exchange",
                format!("scan {relation}: streams batches fragment→coordinator"),
            );
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            strategy,
            ..
        } => {
            match strategy {
                JoinStrategy::Partitioned => trace.note(
                    "physical-exchange",
                    "partitioned join: both sides stream buckets per-batch, \
                     addressed fragment→fragment at the phase-2 sites"
                        .to_owned(),
                ),
                JoinStrategy::Broadcast => trace.note(
                    "physical-exchange",
                    "broadcast join: build side materialized, probe side streams".to_owned(),
                ),
            }
            note_exchanges(left, trace);
            note_exchanges(right, trace);
        }
        PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::Union { left, right, .. }
        | PhysicalPlan::Difference { left, right } => {
            note_exchanges(left, trace);
            note_exchanges(right, trace);
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Distinct { input }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Closure { input } => note_exchanges(input, trace),
        PhysicalPlan::Fixpoint { base, step, .. } => {
            note_exchanges(base, trace);
            note_exchanges(step, trace);
        }
        PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. } => {}
    }
}

/// Record in the EXPLAIN trace which operators will evaluate their
/// expressions through the vectorized (column-at-a-time) kernels: every
/// Filter predicate and every non-fused Project in the physical plan.
fn note_vectorized(plan: &PhysicalPlan, trace: &mut Trace) {
    match plan {
        PhysicalPlan::Filter { input, predicate } => {
            trace.note("physical-vectorized-eval", format!("filter {predicate}"));
            note_vectorized(input, trace);
        }
        PhysicalPlan::Project { input, exprs, .. } => {
            let shown: Vec<String> = exprs.iter().map(ToString::to_string).collect();
            trace.note(
                "physical-vectorized-eval",
                format!("project [{}]", shown.join(", ")),
            );
            note_vectorized(input, trace);
        }
        PhysicalPlan::HashJoin { left, right, .. }
        | PhysicalPlan::NestedLoopJoin { left, right, .. }
        | PhysicalPlan::Union { left, right, .. }
        | PhysicalPlan::Difference { left, right } => {
            note_vectorized(left, trace);
            note_vectorized(right, trace);
        }
        PhysicalPlan::Distinct { input }
        | PhysicalPlan::HashAggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. }
        | PhysicalPlan::Closure { input } => note_vectorized(input, trace),
        PhysicalPlan::Fixpoint { base, step, .. } => {
            note_vectorized(base, trace);
            note_vectorized(step, trace);
        }
        PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. } => {}
    }
}

/// Fold `Project [Col…] → SeqScan` pairs into projecting scans. Only
/// pure column projections whose output schema matches the scan schema's
/// projection are fused — expression evaluation and renaming stay as
/// explicit operators.
fn fuse_projections(plan: PhysicalPlan, trace: &mut Trace) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let input = fuse_projections(*input, trace);
            if let PhysicalPlan::SeqScan {
                relation,
                schema: base,
                projection: None,
            } = &input
            {
                let cols: Option<Vec<usize>> = exprs
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Col(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                if let Some(cols) = cols {
                    if base.project(&cols) == schema {
                        trace.note(
                            "physical-scan-projection",
                            format!("{relation} cols={cols:?}"),
                        );
                        return PhysicalPlan::SeqScan {
                            relation: relation.clone(),
                            schema: base.clone(),
                            projection: Some(cols),
                        };
                    }
                }
            }
            PhysicalPlan::Project {
                input: Box::new(input),
                exprs,
                schema,
            }
        }
        PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
            input: Box::new(fuse_projections(*input, trace)),
            predicate,
        },
        PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            on,
            residual,
            strategy,
            placement,
        } => PhysicalPlan::HashJoin {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
            kind,
            on,
            residual,
            strategy,
            placement,
        },
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            kind,
            residual,
        } => PhysicalPlan::NestedLoopJoin {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
            kind,
            residual,
        },
        PhysicalPlan::Union { left, right, all } => PhysicalPlan::Union {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
            all,
        },
        PhysicalPlan::Difference { left, right } => PhysicalPlan::Difference {
            left: Box::new(fuse_projections(*left, trace)),
            right: Box::new(fuse_projections(*right, trace)),
        },
        PhysicalPlan::Distinct { input } => PhysicalPlan::Distinct {
            input: Box::new(fuse_projections(*input, trace)),
        },
        PhysicalPlan::HashAggregate {
            input,
            group_by,
            aggs,
        } => PhysicalPlan::HashAggregate {
            input: Box::new(fuse_projections(*input, trace)),
            group_by,
            aggs,
        },
        PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
            input: Box::new(fuse_projections(*input, trace)),
            keys,
        },
        PhysicalPlan::Limit { input, n } => PhysicalPlan::Limit {
            input: Box::new(fuse_projections(*input, trace)),
            n,
        },
        PhysicalPlan::Closure { input } => PhysicalPlan::Closure {
            input: Box::new(fuse_projections(*input, trace)),
        },
        PhysicalPlan::Fixpoint { name, base, step } => PhysicalPlan::Fixpoint {
            name,
            base: Box::new(fuse_projections(*base, trace)),
            step: Box::new(fuse_projections(*step, trace)),
        },
        leaf @ (PhysicalPlan::SeqScan { .. } | PhysicalPlan::Values { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use prisma_types::{Column, DataType, Schema};
    use std::collections::HashMap;

    fn schema2() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn stats() -> HashMap<String, TableStats> {
        let mut m = HashMap::new();
        for (name, rows) in [("big", 100_000u64), ("huge", 50_000), ("small", 40)] {
            m.insert(
                name.to_owned(),
                TableStats {
                    rows,
                    distinct: vec![rows, rows / 10],
                    min: vec![None, None],
                    max: vec![None, None],
                },
            );
        }
        m
    }

    #[test]
    fn small_side_broadcasts_large_sides_partition() {
        let s = stats();
        let small_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("small", schema2()), vec![(1, 0)]);
        let mut trace = Trace::default();
        let phys =
            lower_physical(&small_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Broadcast,
                ..
            }
        ));

        let big_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let phys = lower_physical(&big_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                strategy: JoinStrategy::Partitioned,
                ..
            }
        ));
        assert!(trace.count_of("physical-join-strategy") == 2, "{:?}", trace.fired);
    }

    #[test]
    fn pure_column_projection_fuses_into_scan() {
        let s = stats();
        let plan = LogicalPlan::scan("big", schema2()).project_cols(&[1]).unwrap();
        let mut trace = Trace::default();
        let phys = lower_physical(&plan, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            &phys,
            PhysicalPlan::SeqScan {
                projection: Some(cols),
                ..
            } if cols == &vec![1]
        ));
        assert_eq!(trace.count_of("physical-scan-projection"), 1);
        // The fused scan's schema matches the logical projection exactly.
        assert_eq!(phys.output_schema().unwrap(), plan.output_schema().unwrap());
    }

    #[test]
    fn explain_notes_vectorized_filter_and_project() {
        use prisma_storage::expr::CmpOp;
        let s = stats();
        let plan = LogicalPlan::scan("big", schema2())
            .select(ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(0),
                ScalarExpr::lit(5),
            ))
            .project_cols(&[1])
            .unwrap();
        let mut trace = Trace::default();
        lower_physical(&plan, &s, PhysicalConfig::default(), &mut trace).unwrap();
        // Both the filter predicate and the projection above it (not
        // adjacent to the scan, so not fused) evaluate vectorized.
        assert_eq!(trace.count_of("physical-vectorized-eval"), 2);
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("physical-vectorized-eval: filter")));

        // A pure column projection directly above the scan is fused away
        // and leaves no vectorized-eval note.
        let fused = LogicalPlan::scan("big", schema2()).project_cols(&[1]).unwrap();
        let mut trace = Trace::default();
        lower_physical(&fused, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert_eq!(trace.count_of("physical-vectorized-eval"), 0);
    }

    #[test]
    fn explain_notes_streaming_exchanges() {
        let s = stats();
        // Broadcast join: both scans stream; the build side is the one
        // materialized exchange.
        let small_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("small", schema2()), vec![(1, 0)]);
        let mut trace = Trace::default();
        lower_physical(&small_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert_eq!(trace.count_of("physical-exchange"), 3, "{:?}", trace.fired);
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("broadcast join: build side materialized")));
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("scan big: streams batches")));

        // Partitioned join: buckets stream per-batch.
        let big_join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let mut trace = Trace::default();
        lower_physical(&big_join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(trace
            .fired
            .iter()
            .any(|f| f.contains("partitioned join: both sides stream buckets per-batch")));
    }

    /// Stats source that also knows fragmentation (what the GDH data
    /// dictionary provides at run time).
    struct Fragged(HashMap<String, TableStats>, HashMap<String, Vec<prisma_types::FragmentId>>);

    impl StatsSource for Fragged {
        fn table_stats(&self, name: &str) -> Option<TableStats> {
            self.0.get(name).cloned()
        }
        fn fragmentation(&self, name: &str) -> Option<Vec<prisma_types::FragmentId>> {
            self.1.get(name).cloned()
        }
    }

    #[test]
    fn partitioned_join_gets_a_shuffle_placement_map() {
        use prisma_types::FragmentId;
        let frags: HashMap<String, Vec<FragmentId>> = [
            ("big".to_owned(), vec![FragmentId(0), FragmentId(1)]),
            ("huge".to_owned(), (2..5).map(FragmentId).collect()),
        ]
        .into_iter()
        .collect();
        let s = Fragged(stats(), frags);
        let join = LogicalPlan::scan("big", schema2())
            .join(LogicalPlan::scan("huge", schema2()), vec![(0, 0)]);
        let mut trace = Trace::default();
        let phys = lower_physical(&join, &s, PhysicalConfig::default(), &mut trace).unwrap();
        let PhysicalPlan::HashJoin {
            placement: Some(p), ..
        } = &phys
        else {
            panic!("no placement: {phys}");
        };
        // Buckets = the larger side's fragment count; every site is a
        // fragment of the left (probe) relation, round-robin.
        assert_eq!(p.parts, 3);
        assert_eq!(p.sites, vec![FragmentId(0), FragmentId(1), FragmentId(0)]);
        assert_eq!(p.by_site().len(), 2);
        assert_eq!(trace.count_of("physical-shuffle-placement"), 1);
        assert!(phys.to_string().contains("shuffle 3×buckets→2 site(s)"), "{phys}");

        // The bucket count is overridable — including past the fragment
        // count (the mismatch edge the executor must survive).
        let s = Fragged(
            stats(),
            [
                ("big".to_owned(), vec![FragmentId(0), FragmentId(1)]),
                ("huge".to_owned(), (2..5).map(FragmentId).collect()),
            ]
            .into_iter()
            .collect(),
        );
        let cfg = PhysicalConfig {
            shuffle_parts: Some(7),
            ..PhysicalConfig::default()
        };
        let mut trace = Trace::default();
        let phys = lower_physical(&join, &s, cfg, &mut trace).unwrap();
        let PhysicalPlan::HashJoin {
            placement: Some(p), ..
        } = &phys
        else {
            panic!("no placement: {phys}");
        };
        assert_eq!(p.parts, 7);
        assert_eq!(p.sites.len(), 7);

        // Without fragmentation knowledge the map is omitted (the
        // executor derives a default).
        let mut trace = Trace::default();
        let phys =
            lower_physical(&join, &stats(), PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(
            phys,
            PhysicalPlan::HashJoin {
                placement: None,
                ..
            }
        ));
    }

    #[test]
    fn renaming_projection_is_not_fused() {
        use prisma_storage::expr::ScalarExpr;
        let s = stats();
        let renamed = LogicalPlan::Project {
            input: Box::new(LogicalPlan::scan("big", schema2())),
            exprs: vec![ScalarExpr::col(1)],
            schema: Schema::new(vec![Column::new("renamed", DataType::Int)]),
        };
        let mut trace = Trace::default();
        let phys = lower_physical(&renamed, &s, PhysicalConfig::default(), &mut trace).unwrap();
        assert!(matches!(phys, PhysicalPlan::Project { .. }));
        assert_eq!(trace.count_of("physical-scan-projection"), 0);
    }
}
