//! Join-key extraction and selection pushdown — the workhorse logical
//! transformations. The SQL planner deliberately emits `Select` over cross
//! joins; these rules recover equi-joins and move filters to the data.

use prisma_relalg::{JoinKind, LogicalPlan};
use prisma_storage::expr::{CmpOp, ScalarExpr};

use crate::Trace;

/// Rewrite `Select(p) over Join{on: [], ...}` (and joins with partial key
/// sets) so that conjuncts of the shape `left.col = right.col` become hash
/// join keys.
pub fn extract_join_keys(plan: LogicalPlan, trace: &mut Trace) -> LogicalPlan {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Select { input, predicate } = node else {
            return node;
        };
        let LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            mut on,
            residual,
        } = *input
        else {
            return LogicalPlan::Select { input, predicate };
        };
        let larity = match left.output_schema() {
            Ok(s) => s.arity(),
            Err(_) => {
                return LogicalPlan::Select {
                    input: Box::new(LogicalPlan::Join {
                        left,
                        right,
                        kind: JoinKind::Inner,
                        on,
                        residual,
                    }),
                    predicate,
                }
            }
        };
        let mut keep = Vec::new();
        let mut extracted = 0;
        for factor in predicate.split_conjunction() {
            if let Some((l, r)) = as_cross_equality(&factor, larity) {
                on.push((l, r));
                extracted += 1;
            } else {
                keep.push(factor);
            }
        }
        if extracted > 0 {
            trace.note(
                "extract-join-keys",
                format!("moved {extracted} equality conjunct(s) into the join"),
            );
        }
        let mut rebuilt = LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            on,
            residual,
        };
        if !keep.is_empty() {
            rebuilt = rebuilt.select(ScalarExpr::conjunction(keep));
        }
        rebuilt
    })
}

/// `col_i = col_j` with i on the left side, j on the right (or flipped):
/// returns `(left ordinal, right-local ordinal)`.
fn as_cross_equality(e: &ScalarExpr, larity: usize) -> Option<(usize, usize)> {
    let ScalarExpr::Cmp(CmpOp::Eq, l, r) = e else {
        return None;
    };
    match (l.as_ref(), r.as_ref()) {
        (ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
            if *a < larity && *b >= larity {
                Some((*a, *b - larity))
            } else if *b < larity && *a >= larity {
                Some((*b, *a - larity))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Push selection conjuncts towards the leaves: through projections
/// (by substitution), into join sides, through sorts/limits-free paths,
/// into union branches and the left side of differences, and below
/// aggregates when the factor touches only group-by outputs.
pub fn push_selections(plan: LogicalPlan, trace: &mut Trace) -> LogicalPlan {
    // Iterate to a fixpoint (each pass pushes one level).
    let mut current = plan;
    for _ in 0..16 {
        let before = current.clone();
        current = push_once(current, trace);
        if current == before {
            break;
        }
    }
    current
}

fn push_once(plan: LogicalPlan, trace: &mut Trace) -> LogicalPlan {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Select { input, predicate } = node else {
            return node;
        };
        match *input {
            LogicalPlan::Select {
                input: inner,
                predicate: p2,
            } => {
                // Merge stacked selects so factors push as one batch.
                LogicalPlan::Select {
                    input: inner,
                    predicate: ScalarExpr::and(p2, predicate),
                }
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let Ok(lschema) = left.output_schema() else {
                    return LogicalPlan::Select {
                        input: Box::new(LogicalPlan::Join {
                            left,
                            right,
                            kind,
                            on,
                            residual,
                        }),
                        predicate,
                    };
                };
                let larity = lschema.arity();
                let mut to_left = Vec::new();
                let mut to_right = Vec::new();
                let mut keep = Vec::new();
                for factor in predicate.split_conjunction() {
                    let cols = factor.columns();
                    if cols.iter().all(|&c| c < larity) {
                        to_left.push(factor);
                    } else if kind == JoinKind::Inner && cols.iter().all(|&c| c >= larity) {
                        to_right.push(factor.remap_columns(&|c| c - larity));
                    } else {
                        keep.push(factor);
                    }
                }
                if !to_left.is_empty() || !to_right.is_empty() {
                    trace.note(
                        "push-selection",
                        format!(
                            "{} factor(s) to the left, {} to the right of a join",
                            to_left.len(),
                            to_right.len()
                        ),
                    );
                }
                let new_left = if to_left.is_empty() {
                    left
                } else {
                    Box::new(left.select(ScalarExpr::conjunction(to_left)))
                };
                let new_right = if to_right.is_empty() {
                    right
                } else {
                    Box::new(right.select(ScalarExpr::conjunction(to_right)))
                };
                let mut rebuilt = LogicalPlan::Join {
                    left: new_left,
                    right: new_right,
                    kind,
                    on,
                    residual,
                };
                if !keep.is_empty() {
                    rebuilt = rebuilt.select(ScalarExpr::conjunction(keep));
                }
                rebuilt
            }
            LogicalPlan::Project {
                input: inner,
                exprs,
                schema,
            } => {
                // Substitute projection expressions into the predicate and
                // push the whole selection below (always sound: projection
                // is per-tuple and deterministic).
                let substituted = substitute(&predicate, &exprs);
                trace.note("push-selection", "through a projection");
                LogicalPlan::Project {
                    input: Box::new(inner.select(substituted)),
                    exprs,
                    schema,
                }
            }
            LogicalPlan::Union { left, right, all } => {
                trace.note("push-selection", "into both union branches");
                LogicalPlan::Union {
                    left: Box::new(left.select(predicate.clone())),
                    right: Box::new(right.select(predicate)),
                    all,
                }
            }
            LogicalPlan::Difference { left, right } => {
                // σ(L − R) = σ(L) − R; pushing into R would be unsound.
                trace.note("push-selection", "into the left side of a difference");
                LogicalPlan::Difference {
                    left: Box::new(left.select(predicate)),
                    right,
                }
            }
            LogicalPlan::Distinct { input: inner } => LogicalPlan::Distinct {
                input: Box::new(inner.select(predicate)),
            },
            LogicalPlan::Sort { input: inner, keys } => LogicalPlan::Sort {
                input: Box::new(inner.select(predicate)),
                keys,
            },
            LogicalPlan::Aggregate {
                input: inner,
                group_by,
                aggs,
            } => {
                // Factors over group-by outputs filter groups ⇔ filter rows.
                let mut push = Vec::new();
                let mut keep = Vec::new();
                for factor in predicate.split_conjunction() {
                    if factor.columns().iter().all(|&c| c < group_by.len()) {
                        push.push(factor.remap_columns(&|c| group_by[c]));
                    } else {
                        keep.push(factor);
                    }
                }
                if !push.is_empty() {
                    trace.note(
                        "push-selection",
                        format!("{} group factor(s) below an aggregate", push.len()),
                    );
                }
                let new_input = if push.is_empty() {
                    inner
                } else {
                    Box::new(inner.select(ScalarExpr::conjunction(push)))
                };
                let mut rebuilt = LogicalPlan::Aggregate {
                    input: new_input,
                    group_by,
                    aggs,
                };
                if !keep.is_empty() {
                    rebuilt = rebuilt.select(ScalarExpr::conjunction(keep));
                }
                rebuilt
            }
            other => LogicalPlan::Select {
                input: Box::new(other),
                predicate,
            },
        }
    })
}

/// Replace `Col(i)` with `exprs[i]` throughout.
fn substitute(pred: &ScalarExpr, exprs: &[ScalarExpr]) -> ScalarExpr {
    match pred {
        ScalarExpr::Col(i) => exprs
            .get(*i)
            .cloned()
            .unwrap_or(ScalarExpr::Col(*i)),
        ScalarExpr::Lit(v) => ScalarExpr::Lit(v.clone()),
        ScalarExpr::Cmp(op, l, r) => {
            ScalarExpr::cmp(*op, substitute(l, exprs), substitute(r, exprs))
        }
        ScalarExpr::Arith(op, l, r) => {
            ScalarExpr::arith(*op, substitute(l, exprs), substitute(r, exprs))
        }
        ScalarExpr::And(l, r) => ScalarExpr::and(substitute(l, exprs), substitute(r, exprs)),
        ScalarExpr::Or(l, r) => ScalarExpr::or(substitute(l, exprs), substitute(r, exprs)),
        ScalarExpr::Not(x) => ScalarExpr::Not(Box::new(substitute(x, exprs))),
        ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Box::new(substitute(x, exprs))),
        ScalarExpr::Neg(x) => ScalarExpr::Neg(Box::new(substitute(x, exprs))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_relalg::{eval, Relation};
    use prisma_types::{tuple, Column, DataType, Schema};
    use std::collections::HashMap;

    fn db() -> HashMap<String, Relation> {
        let t = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let u = Schema::new(vec![
            Column::new("c", DataType::Int),
            Column::new("d", DataType::Int),
        ]);
        let mut db = HashMap::new();
        db.insert(
            "t".to_owned(),
            Relation::new(t, (0..20).map(|i| tuple![i, i % 4]).collect()),
        );
        db.insert(
            "u".to_owned(),
            Relation::new(u, (0..4).map(|i| tuple![i, i * 100]).collect()),
        );
        db
    }

    fn naive_join_plan(db: &HashMap<String, Relation>) -> LogicalPlan {
        LogicalPlan::scan("t", db["t"].schema().clone())
            .join(LogicalPlan::scan("u", db["u"].schema().clone()), vec![])
            .select(ScalarExpr::and(
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2)),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(10)),
            ))
    }

    #[test]
    fn keys_extracted_and_filter_pushed() {
        let db = db();
        let plan = naive_join_plan(&db);
        let mut trace = Trace::default();
        let keyed = extract_join_keys(plan.clone(), &mut trace);
        let pushed = push_selections(keyed, &mut trace);
        // Join now carries the key and the filter sits on the left scan.
        fn find_join_keys(p: &LogicalPlan) -> usize {
            match p {
                LogicalPlan::Join { on, left, right, .. } => {
                    on.len() + find_join_keys(left) + find_join_keys(right)
                }
                _ => p.children().iter().map(|c| find_join_keys(c)).sum(),
            }
        }
        assert_eq!(find_join_keys(&pushed), 1);
        let before = eval(&plan, &db).unwrap().canonicalized();
        let after = eval(&pushed, &db).unwrap().canonicalized();
        assert_eq!(before, after);
        assert!(trace.count_of("push-selection") > 0);
    }

    #[test]
    fn pushdown_through_projection_substitutes() {
        let db = db();
        let scan = LogicalPlan::scan("t", db["t"].schema().clone());
        let proj = LogicalPlan::Project {
            input: Box::new(scan),
            exprs: vec![ScalarExpr::arith(
                prisma_storage::expr::ArithOp::Mul,
                ScalarExpr::col(0),
                ScalarExpr::lit(2),
            )],
            schema: Schema::new(vec![Column::new("a2", DataType::Int)]),
        };
        let plan = proj.select(ScalarExpr::cmp(
            CmpOp::Ge,
            ScalarExpr::col(0),
            ScalarExpr::lit(20),
        ));
        let mut trace = Trace::default();
        let pushed = push_selections(plan.clone(), &mut trace);
        // Select sits below the projection now.
        assert!(matches!(pushed, LogicalPlan::Project { .. }));
        assert_eq!(
            eval(&plan, &db).unwrap().canonicalized(),
            eval(&pushed, &db).unwrap().canonicalized()
        );
    }

    #[test]
    fn difference_pushes_left_only() {
        let db = db();
        let l = LogicalPlan::scan("t", db["t"].schema().clone());
        let r = LogicalPlan::scan("t", db["t"].schema().clone())
            .select(ScalarExpr::cmp(
                CmpOp::Ge,
                ScalarExpr::col(0),
                ScalarExpr::lit(10),
            ));
        let plan = LogicalPlan::Difference {
            left: Box::new(l),
            right: Box::new(r),
        }
        .select(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(1),
            ScalarExpr::lit(2),
        ));
        let mut trace = Trace::default();
        let pushed = push_selections(plan.clone(), &mut trace);
        assert!(matches!(pushed, LogicalPlan::Difference { .. }));
        assert_eq!(
            eval(&plan, &db).unwrap().canonicalized(),
            eval(&pushed, &db).unwrap().canonicalized()
        );
    }

    #[test]
    fn aggregate_group_filter_pushed_below() {
        use prisma_relalg::{AggExpr, AggFunc};
        let db = db();
        let agg = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("t", db["t"].schema().clone())),
            group_by: vec![1],
            aggs: vec![AggExpr::new(AggFunc::CountStar, 0, "n")],
        };
        let plan = agg.select(ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(2)));
        let mut trace = Trace::default();
        let pushed = push_selections(plan.clone(), &mut trace);
        assert!(
            matches!(pushed, LogicalPlan::Aggregate { .. }),
            "select over group col should vanish below: {pushed}"
        );
        assert_eq!(
            eval(&plan, &db).unwrap().canonicalized(),
            eval(&pushed, &db).unwrap().canonicalized()
        );
        // A filter over the aggregate output column must NOT push.
        let agg2 = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("t", db["t"].schema().clone())),
            group_by: vec![1],
            aggs: vec![AggExpr::new(AggFunc::CountStar, 0, "n")],
        };
        let plan2 = agg2.select(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(1),
            ScalarExpr::lit(3),
        ));
        let pushed2 = push_selections(plan2.clone(), &mut trace);
        assert_eq!(
            eval(&plan2, &db).unwrap().canonicalized(),
            eval(&pushed2, &db).unwrap().canonicalized()
        );
    }
}
