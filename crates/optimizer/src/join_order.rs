//! Cardinality-driven join ordering.
//!
//! The SQL planner emits FROM-order joins; this rule flattens each
//! contiguous inner-join region into sources + predicates, greedily
//! re-orders the sources (smallest filtered source first, then always the
//! cheapest estimated next join, preferring connected sources to avoid
//! cross products), and rebuilds a left-deep tree with a final projection
//! restoring the original column order.

use prisma_relalg::{JoinKind, LogicalPlan};
use prisma_storage::expr::{CmpOp, ScalarExpr};
use prisma_types::{Result, Schema};

use crate::cardinality::estimate_rows;
use crate::stats::StatsSource;
use crate::Trace;

/// Reorder all join regions in `plan`.
pub fn reorder_joins(
    plan: LogicalPlan,
    stats: &dyn StatsSource,
    trace: &mut Trace,
) -> Result<LogicalPlan> {
    rewrite(plan, stats, trace)
}

fn rewrite(plan: LogicalPlan, stats: &dyn StatsSource, trace: &mut Trace) -> Result<LogicalPlan> {
    // Region root: Select over a join, or a bare join.
    let is_region_root = matches!(
        &plan,
        LogicalPlan::Select { input, .. }
            if matches!(**input, LogicalPlan::Join { kind: JoinKind::Inner, .. })
    ) || matches!(&plan, LogicalPlan::Join { kind: JoinKind::Inner, .. });

    if is_region_root {
        let (top_pred, join) = match plan {
            LogicalPlan::Select { input, predicate } => (Some(predicate), *input),
            other => (None, other),
        };
        let mut leaves = Vec::new();
        let mut preds = Vec::new();
        flatten(join, &mut leaves, &mut preds)?;
        if let Some(p) = top_pred {
            preds.extend(p.split_conjunction());
        }
        // Recurse into the leaves first (they may contain nested regions).
        let leaves: Vec<LogicalPlan> = leaves
            .into_iter()
            .map(|l| rewrite(l, stats, trace))
            .collect::<Result<_>>()?;
        if leaves.len() <= 2 {
            // Nothing to reorder; rebuild as-was.
            return rebuild_in_order(leaves, preds, None, stats, trace);
        }
        return greedy_rebuild(leaves, preds, stats, trace);
    }

    // Not a region root: rebuild children recursively via transform of
    // direct structure (manual match to keep Result-returning recursion).
    Ok(match plan {
        LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
            input: Box::new(rewrite(*input, stats, trace)?),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, stats, trace)?),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => LogicalPlan::Join {
            left: Box::new(rewrite(*left, stats, trace)?),
            right: Box::new(rewrite(*right, stats, trace)?),
            kind,
            on,
            residual,
        },
        LogicalPlan::Union { left, right, all } => LogicalPlan::Union {
            left: Box::new(rewrite(*left, stats, trace)?),
            right: Box::new(rewrite(*right, stats, trace)?),
            all,
        },
        LogicalPlan::Difference { left, right } => LogicalPlan::Difference {
            left: Box::new(rewrite(*left, stats, trace)?),
            right: Box::new(rewrite(*right, stats, trace)?),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite(*input, stats, trace)?),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite(*input, stats, trace)?),
            group_by,
            aggs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(*input, stats, trace)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(rewrite(*input, stats, trace)?),
            n,
        },
        LogicalPlan::Closure { input } => LogicalPlan::Closure {
            input: Box::new(rewrite(*input, stats, trace)?),
        },
        LogicalPlan::Fixpoint { name, base, step } => LogicalPlan::Fixpoint {
            name,
            base: Box::new(rewrite(*base, stats, trace)?),
            step: Box::new(rewrite(*step, stats, trace)?),
        },
        leaf => leaf,
    })
}

/// Flatten a tree of inner joins into leaves + conjuncts in the frame of
/// the concatenated leaves.
fn flatten(
    plan: LogicalPlan,
    leaves: &mut Vec<LogicalPlan>,
    preds: &mut Vec<ScalarExpr>,
) -> Result<()> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            kind: JoinKind::Inner,
            on,
            residual,
        } => {
            let before = leaves
                .iter()
                .map(|l| l.output_schema().map(|s| s.arity()))
                .sum::<Result<usize>>()?;
            flatten(*left, leaves, preds)?;
            let larity = leaves
                .iter()
                .map(|l| l.output_schema().map(|s| s.arity()))
                .sum::<Result<usize>>()?
                - before;
            let mut right_preds = Vec::new();
            flatten(*right, leaves, &mut right_preds)?;
            // right-side predicate frames shift by the left arity (they
            // were collected relative to the right subtree, whose leaves
            // now start at before + larity... they were already absolute
            // within the recursion because we push into the same vec.)
            preds.extend(right_preds);
            let offset = before;
            for (l, r) in on {
                preds.push(ScalarExpr::eq(
                    ScalarExpr::Col(offset + l),
                    ScalarExpr::Col(offset + larity + r),
                ));
            }
            if let Some(res) = residual {
                preds.push(res.remap_columns(&|c| offset + c));
            }
            Ok(())
        }
        other => {
            leaves.push(other);
            Ok(())
        }
    }
}

/// Offsets of each leaf in the concatenation.
fn offsets(leaves: &[LogicalPlan]) -> Result<Vec<usize>> {
    let mut out = Vec::with_capacity(leaves.len());
    let mut acc = 0;
    for l in leaves {
        out.push(acc);
        acc += l.output_schema()?.arity();
    }
    Ok(out)
}

/// Which leaves a predicate (in the original concatenated frame) touches.
fn leaves_of_pred(pred: &ScalarExpr, offs: &[usize], arities: &[usize]) -> Vec<usize> {
    let mut touched = Vec::new();
    for c in pred.columns() {
        for (i, (&o, &a)) in offs.iter().zip(arities).enumerate() {
            if c >= o && c < o + a && !touched.contains(&i) {
                touched.push(i);
            }
        }
    }
    touched.sort_unstable();
    touched
}

fn greedy_rebuild(
    leaves: Vec<LogicalPlan>,
    preds: Vec<ScalarExpr>,
    stats: &dyn StatsSource,
    trace: &mut Trace,
) -> Result<LogicalPlan> {
    let offs = offsets(&leaves)?;
    let arities: Vec<usize> = leaves
        .iter()
        .map(|l| l.output_schema().map(|s| s.arity()))
        .collect::<Result<_>>()?;
    let n = leaves.len();

    // Classify predicates by the leaf set they touch.
    let mut leaf_preds: Vec<Vec<ScalarExpr>> = vec![Vec::new(); n];
    let mut multi: Vec<(Vec<usize>, ScalarExpr)> = Vec::new();
    for p in preds {
        let touched = leaves_of_pred(&p, &offs, &arities);
        match touched.len() {
            0 | 1 => {
                let i = touched.first().copied().unwrap_or(0);
                leaf_preds[i].push(p);
            }
            _ => multi.push((touched, p)),
        }
    }

    // Filtered leaves + their estimates.
    let filtered: Vec<LogicalPlan> = leaves
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut p = l.clone();
            if !leaf_preds[i].is_empty() {
                let local = ScalarExpr::conjunction(
                    leaf_preds[i]
                        .iter()
                        .map(|e| e.remap_columns(&|c| c - offs[i]))
                        .collect(),
                );
                p = p.select(local);
            }
            p
        })
        .collect();
    let est: Vec<f64> = filtered.iter().map(|p| estimate_rows(p, stats)).collect();

    // Greedy: smallest first, then cheapest estimated join, preferring
    // connected leaves.
    let connected = |placed: &[usize], cand: usize| {
        multi.iter().any(|(touched, p)| {
            matches!(p, ScalarExpr::Cmp(CmpOp::Eq, _, _))
                && touched.contains(&cand)
                && touched.iter().all(|t| *t == cand || placed.contains(t))
        })
    };
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining: Vec<usize> = (0..n).collect();
    let start = remaining
        .iter()
        .copied()
        .min_by(|&a, &b| est[a].total_cmp(&est[b]))
        .expect("non-empty");
    order.push(start);
    remaining.retain(|&x| x != start);
    let mut cur_est = est[start];
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ca = connected(&order, a);
                let cb = connected(&order, b);
                // Connected beats disconnected; then smaller estimate.
                cb.cmp(&ca).then(est[a].total_cmp(&est[b]))
            })
            .expect("non-empty");
        // Joining a connected leaf divides by its key cardinality; a
        // disconnected one multiplies. Either way track a rough estimate.
        cur_est = if connected(&order, pick) {
            (cur_est * est[pick]).sqrt().max(1.0)
        } else {
            cur_est * est[pick]
        };
        order.push(pick);
        remaining.retain(|&x| x != pick);
    }

    if order.windows(2).all(|w| w[0] < w[1]) {
        // Already in source order: rebuild without the restoring project.
        trace.note("join-order", "kept FROM order (already optimal)");
        let plans: Vec<LogicalPlan> = order.iter().map(|&i| filtered[i].clone()).collect();
        return rebuild_in_order(
            plans,
            multi.into_iter().map(|(_, p)| p).collect(),
            None,
            stats,
            trace,
        );
    }
    trace.note(
        "join-order",
        format!("reordered {n} sources to {order:?} (estimates {est:?})"),
    );

    // New frame: mapping old global ordinal -> new global ordinal.
    let mut new_off = vec![0usize; n];
    let mut acc = 0;
    for &leaf in &order {
        new_off[leaf] = acc;
        acc += arities[leaf];
    }
    let total = acc;
    let old_to_new = |old: usize| -> usize {
        for (i, (&o, &a)) in offs.iter().zip(&arities).enumerate() {
            if old >= o && old < o + a {
                return new_off[i] + (old - o);
            }
        }
        old
    };

    // Build the left-deep tree in the greedy order, attaching each multi-
    // leaf predicate at the earliest point all its leaves are present.
    let mut plan = filtered[order[0]].clone();
    let mut placed = vec![order[0]];
    let mut pending = multi;
    for &leaf in &order[1..] {
        let right = filtered[leaf].clone();
        placed.push(leaf);
        // Predicates now fully placed.
        let (ready, rest): (Vec<_>, Vec<_>) = pending
            .into_iter()
            .partition(|(touched, _)| touched.iter().all(|t| placed.contains(t)));
        pending = rest;
        let mut on = Vec::new();
        let mut residual_parts = Vec::new();
        let left_arity: usize = placed[..placed.len() - 1]
            .iter()
            .map(|&i| arities[i])
            .sum();
        for (_, p) in ready {
            let remapped = p.remap_columns(&old_to_new);
            // Equality across the boundary becomes a join key.
            if let ScalarExpr::Cmp(CmpOp::Eq, l, r) = &remapped {
                if let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (l.as_ref(), r.as_ref()) {
                    let (a, b) = (*a, *b);
                    if a < left_arity && b >= left_arity {
                        on.push((a, b - left_arity));
                        continue;
                    }
                    if b < left_arity && a >= left_arity {
                        on.push((b, a - left_arity));
                        continue;
                    }
                }
            }
            residual_parts.push(remapped);
        }
        let residual = if residual_parts.is_empty() {
            None
        } else {
            Some(ScalarExpr::conjunction(residual_parts))
        };
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on,
            residual,
        };
    }
    debug_assert!(pending.is_empty());

    // Restore the original column order with a projection.
    let new_schema = plan.output_schema()?;
    let mut exprs = Vec::with_capacity(total);
    let mut cols = Vec::with_capacity(total);
    for old in 0..total {
        let new = old_to_new(old);
        exprs.push(ScalarExpr::Col(new));
        cols.push(new_schema.column(new).expect("in range").clone());
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(cols),
    })
}

/// Rebuild leaves in their given order with all predicates attached as a
/// top select (used when no reordering is wanted/possible).
fn rebuild_in_order(
    leaves: Vec<LogicalPlan>,
    preds: Vec<ScalarExpr>,
    _hint: Option<()>,
    _stats: &dyn StatsSource,
    _trace: &mut Trace,
) -> Result<LogicalPlan> {
    let mut it = leaves.into_iter();
    let mut plan = it
        .next()
        .ok_or_else(|| prisma_types::PrismaError::Execution("empty join region".into()))?;
    for right in it {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on: vec![],
            residual: None,
        };
    }
    if !preds.is_empty() {
        plan = plan.select(ScalarExpr::conjunction(preds));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TableStats;
    use prisma_relalg::{eval, Relation};
    use prisma_types::{tuple, Column, DataType};
    use std::collections::HashMap;

    /// big (1000 rows) × mid (100) × small (10), star-joined on small's key.
    fn db() -> HashMap<String, Relation> {
        let mk = |n: i64, fanout: i64| -> Vec<prisma_types::Tuple> {
            (0..n).map(|i| tuple![i, i % fanout]).collect()
        };
        let schema = |a: &str, b: &str| {
            Schema::new(vec![
                Column::new(a, DataType::Int),
                Column::new(b, DataType::Int),
            ])
        };
        let mut db = HashMap::new();
        db.insert(
            "big".to_owned(),
            Relation::new(schema("b_id", "b_k"), mk(1000, 10)),
        );
        db.insert(
            "mid".to_owned(),
            Relation::new(schema("m_id", "m_k"), mk(100, 10)),
        );
        db.insert(
            "small".to_owned(),
            Relation::new(schema("s_id", "s_k"), mk(10, 10)),
        );
        db
    }

    fn stats(db: &HashMap<String, Relation>) -> HashMap<String, TableStats> {
        db.iter()
            .map(|(k, v)| (k.clone(), TableStats::from_relation(v)))
            .collect()
    }

    #[test]
    fn reorder_preserves_semantics_and_column_order() {
        let db = db();
        let st = stats(&db);
        // FROM big, mid, small WHERE big.b_k = small.s_id AND mid.m_k = small.s_id
        let plan = LogicalPlan::scan("big", db["big"].schema().clone())
            .join(LogicalPlan::scan("mid", db["mid"].schema().clone()), vec![])
            .join(LogicalPlan::scan("small", db["small"].schema().clone()), vec![])
            .select(ScalarExpr::and(
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4)),
                ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(4)),
            ));
        let mut trace = Trace::default();
        let reordered = reorder_joins(plan.clone(), &st, &mut trace).unwrap();
        let before = eval(&plan, &db).unwrap();
        let after = eval(&reordered, &db).unwrap();
        assert_eq!(
            before.schema(),
            after.schema(),
            "column order must be restored"
        );
        assert_eq!(before.canonicalized(), after.canonicalized());
        assert!(trace.count_of("join-order") > 0);
    }

    #[test]
    fn smallest_source_becomes_the_leftmost() {
        let db = db();
        let st = stats(&db);
        let plan = LogicalPlan::scan("big", db["big"].schema().clone())
            .join(LogicalPlan::scan("small", db["small"].schema().clone()), vec![])
            .join(LogicalPlan::scan("mid", db["mid"].schema().clone()), vec![])
            .select(ScalarExpr::and(
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2)),
                ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(5)),
            ));
        let mut trace = Trace::default();
        let reordered = reorder_joins(plan, &st, &mut trace).unwrap();
        // Walk to the leftmost leaf.
        fn leftmost(p: &LogicalPlan) -> &LogicalPlan {
            match p {
                LogicalPlan::Join { left, .. } => leftmost(left),
                LogicalPlan::Project { input, .. } | LogicalPlan::Select { input, .. } => {
                    leftmost(input)
                }
                other => other,
            }
        }
        let lm = leftmost(&reordered);
        assert!(
            matches!(lm, LogicalPlan::Scan { relation, .. } if relation == "small"),
            "expected small leftmost, got {lm}"
        );
    }

    #[test]
    fn two_way_join_untouched() {
        let db = db();
        let st = stats(&db);
        let plan = LogicalPlan::scan("big", db["big"].schema().clone()).join(
            LogicalPlan::scan("small", db["small"].schema().clone()),
            vec![(1, 0)],
        );
        let mut trace = Trace::default();
        let out = reorder_joins(plan.clone(), &st, &mut trace).unwrap();
        assert_eq!(
            eval(&plan, &db).unwrap().canonicalized(),
            eval(&out, &db).unwrap().canonicalized()
        );
    }
}
