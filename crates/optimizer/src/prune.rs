//! Column pruning: ship only the columns a query actually uses.
//!
//! On a shared-nothing machine, narrower intermediate results mean fewer
//! 256-bit packets between PEs, so pruning is a *communication* rule as
//! much as a memory one. The pass inserts projections below joins and
//! keeps the root schema unchanged.

use prisma_relalg::{JoinKind, LogicalPlan};
use prisma_storage::expr::ScalarExpr;
use prisma_types::Result;

use crate::Trace;

/// Prune unused columns below joins. The plan's output schema is
/// preserved exactly.
pub fn prune_columns(plan: LogicalPlan, trace: &mut Trace) -> Result<LogicalPlan> {
    walk(plan, trace)
}

fn walk(plan: LogicalPlan, trace: &mut Trace) -> Result<LogicalPlan> {
    Ok(match plan {
        // The interesting site: Project over Join — compute which input
        // columns the projection + join machinery need, and narrow each
        // join side with a sub-projection.
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let input = walk(*input, trace)?;
            if let LogicalPlan::Join {
                left,
                right,
                kind: JoinKind::Inner,
                on,
                residual,
            } = input
            {
                let lschema = left.output_schema()?;
                let rschema = right.output_schema()?;
                let larity = lschema.arity();
                let total = larity + rschema.arity();
                // Required input columns.
                let mut needed = vec![false; total];
                for e in &exprs {
                    for c in e.columns() {
                        if c < total {
                            needed[c] = true;
                        }
                    }
                }
                for &(l, r) in &on {
                    needed[l] = true;
                    needed[larity + r] = true;
                }
                if let Some(res) = &residual {
                    for c in res.columns() {
                        if c < total {
                            needed[c] = true;
                        }
                    }
                }
                let lkeep: Vec<usize> = (0..larity).filter(|&i| needed[i]).collect();
                let rkeep: Vec<usize> =
                    (larity..total).filter(|&i| needed[i]).map(|i| i - larity).collect();
                if lkeep.len() == larity && rkeep.len() == rschema.arity() {
                    // Nothing to prune.
                    return Ok(LogicalPlan::Project {
                        input: Box::new(LogicalPlan::Join {
                            left,
                            right,
                            kind: JoinKind::Inner,
                            on,
                            residual,
                        }),
                        exprs,
                        schema,
                    });
                }
                trace.note(
                    "prune-columns",
                    format!(
                        "join inputs narrowed {}→{} and {}→{} columns",
                        larity,
                        lkeep.len(),
                        rschema.arity(),
                        rkeep.len()
                    ),
                );
                // Old ordinal → new ordinal maps.
                let lmap: Vec<usize> = (0..larity)
                    .map(|i| lkeep.iter().position(|&k| k == i).unwrap_or(usize::MAX))
                    .collect();
                let rmap: Vec<usize> = (0..rschema.arity())
                    .map(|i| rkeep.iter().position(|&k| k == i).unwrap_or(usize::MAX))
                    .collect();
                let new_larity = lkeep.len();
                let remap = |c: usize| -> usize {
                    if c < larity {
                        lmap[c]
                    } else {
                        new_larity + rmap[c - larity]
                    }
                };
                let new_left = left.project_cols(&lkeep)?;
                let new_right = right.project_cols(&rkeep)?;
                let new_on: Vec<(usize, usize)> =
                    on.iter().map(|&(l, r)| (lmap[l], rmap[r])).collect();
                let new_residual = residual.map(|res| res.remap_columns(&remap));
                let new_exprs: Vec<ScalarExpr> =
                    exprs.iter().map(|e| e.remap_columns(&remap)).collect();
                LogicalPlan::Project {
                    input: Box::new(LogicalPlan::Join {
                        left: Box::new(new_left),
                        right: Box::new(new_right),
                        kind: JoinKind::Inner,
                        on: new_on,
                        residual: new_residual,
                    }),
                    exprs: new_exprs,
                    schema,
                }
            } else {
                LogicalPlan::Project {
                    input: Box::new(input),
                    exprs,
                    schema,
                }
            }
        }
        // Everything else: recurse structurally.
        LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
            input: Box::new(walk(*input, trace)?),
            predicate,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => LogicalPlan::Join {
            left: Box::new(walk(*left, trace)?),
            right: Box::new(walk(*right, trace)?),
            kind,
            on,
            residual,
        },
        LogicalPlan::Union { left, right, all } => LogicalPlan::Union {
            left: Box::new(walk(*left, trace)?),
            right: Box::new(walk(*right, trace)?),
            all,
        },
        LogicalPlan::Difference { left, right } => LogicalPlan::Difference {
            left: Box::new(walk(*left, trace)?),
            right: Box::new(walk(*right, trace)?),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(walk(*input, trace)?),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(walk(*input, trace)?),
            group_by,
            aggs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(walk(*input, trace)?),
            keys,
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(walk(*input, trace)?),
            n,
        },
        LogicalPlan::Closure { input } => LogicalPlan::Closure {
            input: Box::new(walk(*input, trace)?),
        },
        LogicalPlan::Fixpoint { name, base, step } => LogicalPlan::Fixpoint {
            name,
            base: Box::new(walk(*base, trace)?),
            step: Box::new(walk(*step, trace)?),
        },
        leaf => leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_relalg::{eval, Relation};
    use prisma_types::{tuple, Column, DataType, Schema};
    use std::collections::HashMap;

    fn db() -> HashMap<String, Relation> {
        let wide = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("c", DataType::Str),
            Column::new("d", DataType::Str),
        ]);
        let narrow = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Str),
        ]);
        let mut db = HashMap::new();
        db.insert(
            "wide".to_owned(),
            Relation::new(
                wide,
                (0..50)
                    .map(|i| tuple![i, i % 5, format!("c{i}"), format!("d{i}")])
                    .collect(),
            ),
        );
        db.insert(
            "narrow".to_owned(),
            Relation::new(
                narrow,
                (0..5).map(|i| tuple![i, format!("v{i}")]).collect(),
            ),
        );
        db
    }

    #[test]
    fn join_inputs_are_narrowed() {
        let db = db();
        // SELECT wide.a, narrow.v FROM wide JOIN narrow ON wide.b = narrow.k
        let join = LogicalPlan::scan("wide", db["wide"].schema().clone()).join(
            LogicalPlan::scan("narrow", db["narrow"].schema().clone()),
            vec![(1, 0)],
        );
        let plan = LogicalPlan::Project {
            input: Box::new(join),
            exprs: vec![ScalarExpr::Col(0), ScalarExpr::Col(5)],
            schema: Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("v", DataType::Str),
            ]),
        };
        let mut trace = Trace::default();
        let pruned = prune_columns(plan.clone(), &mut trace).unwrap();
        assert_eq!(trace.count_of("prune-columns"), 1);
        let before = eval(&plan, &db).unwrap();
        let after = eval(&pruned, &db).unwrap();
        assert_eq!(before.schema(), after.schema());
        assert_eq!(before.canonicalized(), after.canonicalized());
        // The join inside now sees 2-column left input (a, b).
        fn join_arities(p: &LogicalPlan) -> Option<(usize, usize)> {
            match p {
                LogicalPlan::Join { left, right, .. } => Some((
                    left.output_schema().unwrap().arity(),
                    right.output_schema().unwrap().arity(),
                )),
                _ => p.children().iter().find_map(|c| join_arities(c)),
            }
        }
        let (l, r) = join_arities(&pruned).unwrap();
        assert_eq!(l, 2, "left should keep only a and the key b");
        assert_eq!(r, 2, "right keeps k (key) and v");
        pruned.validate().unwrap();
    }

    #[test]
    fn no_prune_when_all_columns_used() {
        let db = db();
        let join = LogicalPlan::scan("narrow", db["narrow"].schema().clone()).join(
            LogicalPlan::scan("narrow", db["narrow"].schema().clone()),
            vec![(0, 0)],
        );
        let plan = LogicalPlan::Project {
            input: Box::new(join),
            exprs: (0..4).map(ScalarExpr::Col).collect(),
            schema: db["narrow"].schema().join(db["narrow"].schema()),
        };
        let mut trace = Trace::default();
        let pruned = prune_columns(plan.clone(), &mut trace).unwrap();
        assert_eq!(pruned, plan);
        assert_eq!(trace.count_of("prune-columns"), 0);
    }
}
