//! Constant folding — the simplest logical-transformation rules.

use prisma_relalg::LogicalPlan;
use prisma_storage::expr::ScalarExpr;
use prisma_types::{Tuple, Value};

use crate::Trace;

/// Fold constant subexpressions in every predicate/projection, remove
/// `Select(TRUE)`, and collapse `Select(FALSE)` to an empty `Values`.
pub fn fold_constants(plan: LogicalPlan, trace: &mut Trace) -> LogicalPlan {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::Select { input, predicate } => {
            let folded = fold_expr(&predicate);
            match &folded {
                ScalarExpr::Lit(Value::Bool(true)) => {
                    trace.note("constant-fold", "removed Select(TRUE)");
                    *input
                }
                ScalarExpr::Lit(Value::Bool(false)) | ScalarExpr::Lit(Value::Null) => {
                    trace.note("constant-fold", "Select(FALSE) → empty");
                    let schema = input.output_schema().unwrap_or_default();
                    LogicalPlan::Values {
                        schema,
                        rows: vec![],
                    }
                }
                _ => {
                    if folded != predicate {
                        trace.note("constant-fold", format!("simplified {predicate}"));
                    }
                    LogicalPlan::Select {
                        input,
                        predicate: folded,
                    }
                }
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input,
            exprs: exprs.iter().map(fold_expr).collect(),
            schema,
        },
        other => other,
    })
}

/// Fold one scalar expression.
pub fn fold_expr(e: &ScalarExpr) -> ScalarExpr {
    match e {
        ScalarExpr::Col(_) | ScalarExpr::Lit(_) => e.clone(),
        ScalarExpr::Cmp(op, l, r) => {
            let (l, r) = (fold_expr(l), fold_expr(r));
            if let (ScalarExpr::Lit(a), ScalarExpr::Lit(b)) = (&l, &r) {
                return match a.sql_cmp(b) {
                    None => ScalarExpr::Lit(Value::Null),
                    Some(ord) => ScalarExpr::Lit(Value::Bool(op.test(ord))),
                };
            }
            ScalarExpr::cmp(*op, l, r)
        }
        ScalarExpr::Arith(op, l, r) => {
            let (l, r) = (fold_expr(l), fold_expr(r));
            if let (ScalarExpr::Lit(_), ScalarExpr::Lit(_)) = (&l, &r) {
                let probe = ScalarExpr::arith(*op, l.clone(), r.clone());
                if let Ok(v) = probe.eval(&Tuple::unit()) {
                    return ScalarExpr::Lit(v);
                }
            }
            ScalarExpr::arith(*op, l, r)
        }
        ScalarExpr::And(l, r) => {
            let (l, r) = (fold_expr(l), fold_expr(r));
            match (&l, &r) {
                (ScalarExpr::Lit(Value::Bool(true)), _) => r,
                (_, ScalarExpr::Lit(Value::Bool(true))) => l,
                (ScalarExpr::Lit(Value::Bool(false)), _)
                | (_, ScalarExpr::Lit(Value::Bool(false))) => {
                    ScalarExpr::Lit(Value::Bool(false))
                }
                _ => ScalarExpr::and(l, r),
            }
        }
        ScalarExpr::Or(l, r) => {
            let (l, r) = (fold_expr(l), fold_expr(r));
            match (&l, &r) {
                (ScalarExpr::Lit(Value::Bool(false)), _) => r,
                (_, ScalarExpr::Lit(Value::Bool(false))) => l,
                (ScalarExpr::Lit(Value::Bool(true)), _)
                | (_, ScalarExpr::Lit(Value::Bool(true))) => ScalarExpr::Lit(Value::Bool(true)),
                _ => ScalarExpr::or(l, r),
            }
        }
        ScalarExpr::Not(x) => {
            let x = fold_expr(x);
            match &x {
                ScalarExpr::Lit(Value::Bool(b)) => ScalarExpr::Lit(Value::Bool(!b)),
                ScalarExpr::Lit(Value::Null) => ScalarExpr::Lit(Value::Null),
                ScalarExpr::Not(inner) => (**inner).clone(),
                _ => ScalarExpr::Not(Box::new(x)),
            }
        }
        ScalarExpr::IsNull(x) => {
            let x = fold_expr(x);
            match &x {
                ScalarExpr::Lit(v) => ScalarExpr::Lit(Value::Bool(v.is_null())),
                _ => ScalarExpr::IsNull(Box::new(x)),
            }
        }
        ScalarExpr::Neg(x) => {
            let x = fold_expr(x);
            if let ScalarExpr::Lit(_) = &x {
                let probe = ScalarExpr::Neg(Box::new(x.clone()));
                if let Ok(v) = probe.eval(&Tuple::unit()) {
                    return ScalarExpr::Lit(v);
                }
            }
            ScalarExpr::Neg(Box::new(x))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_storage::expr::{ArithOp, CmpOp};
    use prisma_types::{Column, DataType, Schema};

    fn scan() -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
        )
    }

    #[test]
    fn folds_literal_arithmetic_and_comparison() {
        let e = ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::arith(ArithOp::Add, ScalarExpr::lit(2), ScalarExpr::lit(3)),
            ScalarExpr::lit(4),
        );
        assert_eq!(fold_expr(&e), ScalarExpr::lit(true));
    }

    #[test]
    fn and_or_identities() {
        let e = ScalarExpr::and(
            ScalarExpr::lit(true),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(1)),
        );
        assert!(matches!(fold_expr(&e), ScalarExpr::Cmp(..)));
        let e = ScalarExpr::or(
            ScalarExpr::lit(true),
            ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(1)),
        );
        assert_eq!(fold_expr(&e), ScalarExpr::lit(true));
        let e = ScalarExpr::Not(Box::new(ScalarExpr::Not(Box::new(ScalarExpr::col(0)))));
        assert_eq!(fold_expr(&e), ScalarExpr::col(0));
    }

    #[test]
    fn select_true_removed_select_false_emptied() {
        let mut trace = Trace::default();
        let p = scan().select(ScalarExpr::lit(true));
        let out = fold_constants(p, &mut trace);
        assert!(matches!(out, LogicalPlan::Scan { .. }));
        let mut trace = Trace::default();
        let p = scan().select(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::lit(5),
            ScalarExpr::lit(1),
        ));
        let out = fold_constants(p, &mut trace);
        assert!(matches!(out, LogicalPlan::Values { ref rows, .. } if rows.is_empty()));
    }

    #[test]
    fn division_by_zero_not_folded_to_panic() {
        let e = ScalarExpr::arith(ArithOp::Div, ScalarExpr::lit(1), ScalarExpr::lit(0));
        // Stays unfolded (runtime will error); folding must not panic.
        assert!(matches!(fold_expr(&e), ScalarExpr::Arith(..)));
    }
}
