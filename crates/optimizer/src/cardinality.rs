//! Intermediate-result size estimation (paper §2.4's second rule family).

use prisma_relalg::{JoinKind, LogicalPlan};
use prisma_storage::expr::{CmpOp, ScalarExpr};

use crate::stats::{StatsSource, TableStats};

/// Default row count assumed for relations without statistics.
const DEFAULT_ROWS: f64 = 1_000.0;
/// Default selectivity of an opaque predicate.
const DEFAULT_SEL: f64 = 0.25;
/// Selectivity of a range comparison.
const RANGE_SEL: f64 = 1.0 / 3.0;

/// Estimate the output cardinality of a plan.
pub fn estimate_rows(plan: &LogicalPlan, stats: &dyn StatsSource) -> f64 {
    match plan {
        LogicalPlan::Scan { relation, .. } => stats
            .table_stats(relation)
            .map(|s| s.rows as f64)
            .unwrap_or(DEFAULT_ROWS),
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Select { input, predicate } => {
            let base = estimate_rows(input, stats);
            base * predicate_selectivity(predicate, input, stats)
        }
        LogicalPlan::Project { input, .. } => estimate_rows(input, stats),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let l = estimate_rows(left, stats);
            let r = estimate_rows(right, stats);
            let mut est = match kind {
                JoinKind::Inner | JoinKind::Semi => {
                    if on.is_empty() {
                        l * r // cross join
                    } else {
                        // |L ⋈ R| ≈ |L||R| / max(d_L, d_R) per key pair.
                        let mut denom = 1.0f64;
                        for &(lc, rc) in on {
                            let dl = column_distinct(left, lc, stats);
                            let dr = column_distinct(right, rc, stats);
                            denom *= dl.max(dr).max(1.0);
                        }
                        (l * r / denom).min(l * r)
                    }
                }
                JoinKind::Anti => l * 0.5,
            };
            if *kind == JoinKind::Semi {
                est = est.min(l);
            }
            if residual.is_some() {
                est *= DEFAULT_SEL;
            }
            est.max(0.0)
        }
        LogicalPlan::Union { left, right, all } => {
            let sum = estimate_rows(left, stats) + estimate_rows(right, stats);
            if *all {
                sum
            } else {
                sum * 0.8
            }
        }
        LogicalPlan::Difference { left, .. } => estimate_rows(left, stats) * 0.5,
        LogicalPlan::Distinct { input } => estimate_rows(input, stats) * 0.8,
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                let mut groups = 1.0f64;
                for &c in group_by {
                    groups *= column_distinct(input, c, stats);
                }
                groups.min(estimate_rows(input, stats))
            }
        }
        LogicalPlan::Sort { input, .. } => estimate_rows(input, stats),
        LogicalPlan::Limit { input, n } => estimate_rows(input, stats).min(*n as f64),
        // Closure of a graph with E edges and d distinct sources: the
        // classic heuristic |TC| ≈ E · avg-path-length; we use E · log2(E).
        LogicalPlan::Closure { input } => {
            let e = estimate_rows(input, stats).max(1.0);
            e * e.log2().max(1.0)
        }
        LogicalPlan::Fixpoint { base, step, .. } => {
            let b = estimate_rows(base, stats).max(1.0);
            let s = estimate_rows(step, stats).max(1.0);
            (b + s) * b.log2().max(1.0)
        }
    }
}

/// Distinct values flowing out of `plan`'s column `col` (best effort:
/// precise for scans with stats, damped defaults elsewhere).
fn column_distinct(plan: &LogicalPlan, col: usize, stats: &dyn StatsSource) -> f64 {
    match plan {
        LogicalPlan::Scan { relation, .. } => stats
            .table_stats(relation)
            .map(|s| s.distinct_of(col))
            .unwrap_or(DEFAULT_ROWS / 10.0),
        LogicalPlan::Select { input, .. } => column_distinct(input, col, stats) * 0.5,
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col) {
            Some(ScalarExpr::Col(i)) => column_distinct(input, *i, stats),
            _ => estimate_rows(plan, stats) / 10.0,
        },
        LogicalPlan::Join { left, right, .. } => {
            let larity = left
                .output_schema()
                .map(|s| s.arity())
                .unwrap_or(usize::MAX);
            if col < larity {
                column_distinct(left, col, stats)
            } else {
                column_distinct(right, col - larity, stats)
            }
        }
        _ => (estimate_rows(plan, stats) / 10.0).max(1.0),
    }
}

/// Selectivity of a predicate over `input`'s output.
pub fn predicate_selectivity(
    pred: &ScalarExpr,
    input: &LogicalPlan,
    stats: &dyn StatsSource,
) -> f64 {
    match pred {
        ScalarExpr::Lit(v) => {
            if v.as_bool() == Some(true) {
                1.0
            } else {
                0.0
            }
        }
        ScalarExpr::And(l, r) => {
            predicate_selectivity(l, input, stats) * predicate_selectivity(r, input, stats)
        }
        ScalarExpr::Or(l, r) => {
            let a = predicate_selectivity(l, input, stats);
            let b = predicate_selectivity(r, input, stats);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        ScalarExpr::Not(e) => 1.0 - predicate_selectivity(e, input, stats),
        ScalarExpr::Cmp(op, l, r) => {
            let col = match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(i), ScalarExpr::Lit(_))
                | (ScalarExpr::Lit(_), ScalarExpr::Col(i)) => Some(*i),
                _ => None,
            };
            match (op, col) {
                (CmpOp::Eq, Some(i)) => 1.0 / column_distinct(input, i, stats).max(1.0),
                (CmpOp::Ne, Some(i)) => 1.0 - 1.0 / column_distinct(input, i, stats).max(1.0),
                (CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge, _) => RANGE_SEL,
                _ => DEFAULT_SEL,
            }
        }
        ScalarExpr::IsNull(_) => 0.1,
        _ => DEFAULT_SEL,
    }
}

/// Convenience: full stats for a scan, if available.
pub fn scan_stats(plan: &LogicalPlan, stats: &dyn StatsSource) -> Option<TableStats> {
    if let LogicalPlan::Scan { relation, .. } = plan {
        stats.table_stats(relation)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{NoStats, TableStats};
    use prisma_types::{Column, DataType, Schema};
    use std::collections::HashMap;

    fn schema2() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn stats() -> HashMap<String, TableStats> {
        let mut m = HashMap::new();
        m.insert(
            "t".to_owned(),
            TableStats {
                rows: 1000,
                distinct: vec![1000, 10],
                min: vec![None, None],
                max: vec![None, None],
            },
        );
        m.insert(
            "u".to_owned(),
            TableStats {
                rows: 100,
                distinct: vec![100, 100],
                min: vec![None, None],
                max: vec![None, None],
            },
        );
        m
    }

    #[test]
    fn equality_selectivity_uses_distinct() {
        let s = stats();
        let scan = LogicalPlan::scan("t", schema2());
        let eq_pk = scan
            .clone()
            .select(ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(5)));
        let eq_lowcard = scan
            .clone()
            .select(ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(5)));
        assert!((estimate_rows(&eq_pk, &s) - 1.0).abs() < 1e-9);
        assert!((estimate_rows(&eq_lowcard, &s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn join_estimate_divides_by_max_distinct() {
        let s = stats();
        let j = LogicalPlan::scan("t", schema2())
            .join(LogicalPlan::scan("u", schema2()), vec![(0, 0)]);
        // 1000*100/max(1000,100) = 100
        assert!((estimate_rows(&j, &s) - 100.0).abs() < 1e-9);
        // Cross join multiplies.
        let x = LogicalPlan::scan("t", schema2()).join(LogicalPlan::scan("u", schema2()), vec![]);
        assert!((estimate_rows(&x, &s) - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn fallbacks_without_stats() {
        let scan = LogicalPlan::scan("mystery", schema2());
        assert!(estimate_rows(&scan, &NoStats) > 0.0);
        let sel = scan.select(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(0),
            ScalarExpr::lit(3),
        ));
        let est = estimate_rows(&sel, &NoStats);
        assert!(est > 0.0 && est < DEFAULT_ROWS);
    }

    #[test]
    fn limit_caps_estimate() {
        let s = stats();
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::scan("t", schema2())),
            n: 7,
        };
        assert_eq!(estimate_rows(&p, &s), 7.0);
    }

    #[test]
    fn aggregate_group_estimate() {
        let s = stats();
        let p = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("t", schema2())),
            group_by: vec![1],
            aggs: vec![],
        };
        assert!((estimate_rows(&p, &s) - 10.0).abs() < 1e-9);
        let global = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("t", schema2())),
            group_by: vec![],
            aggs: vec![],
        };
        assert_eq!(estimate_rows(&global, &s), 1.0);
    }
}
