//! Intermediate-result size estimation (paper §2.4's second rule family).
//!
//! Comparison selectivities are **histogram-backed** when the scanned
//! relation was profiled through the per-fragment statistics pipeline:
//! equality consults the most-common values first (exact for heavy
//! hitters) and falls back to the containing histogram bucket; range
//! predicates integrate the histogram mass below/above the literal
//! instead of assuming the uniform 1/3 default. Relations without
//! histograms keep the classic uniform heuristics.

use prisma_relalg::{JoinKind, LogicalPlan};
use prisma_storage::expr::{CmpOp, ScalarExpr};
use prisma_types::Value;

use crate::stats::{StatsSource, TableStats};

/// Default row count assumed for relations without statistics.
const DEFAULT_ROWS: f64 = 1_000.0;
/// Default selectivity of an opaque predicate.
const DEFAULT_SEL: f64 = 0.25;
/// Selectivity of a range comparison.
const RANGE_SEL: f64 = 1.0 / 3.0;

/// Estimate the output cardinality of a plan.
pub fn estimate_rows(plan: &LogicalPlan, stats: &dyn StatsSource) -> f64 {
    match plan {
        LogicalPlan::Scan { relation, .. } => stats
            .table_stats(relation)
            .map(|s| s.rows as f64)
            .unwrap_or(DEFAULT_ROWS),
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Select { input, predicate } => {
            let base = estimate_rows(input, stats);
            base * predicate_selectivity(predicate, input, stats)
        }
        LogicalPlan::Project { input, .. } => estimate_rows(input, stats),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let l = estimate_rows(left, stats);
            let r = estimate_rows(right, stats);
            let mut est = match kind {
                JoinKind::Inner | JoinKind::Semi => {
                    if on.is_empty() {
                        l * r // cross join
                    } else {
                        // |L ⋈ R| ≈ |L||R| / max(d_L, d_R) per key pair.
                        let mut denom = 1.0f64;
                        for &(lc, rc) in on {
                            let dl = column_distinct(left, lc, stats);
                            let dr = column_distinct(right, rc, stats);
                            denom *= dl.max(dr).max(1.0);
                        }
                        (l * r / denom).min(l * r)
                    }
                }
                JoinKind::Anti => l * 0.5,
            };
            if *kind == JoinKind::Semi {
                est = est.min(l);
            }
            if residual.is_some() {
                est *= DEFAULT_SEL;
            }
            est.max(0.0)
        }
        LogicalPlan::Union { left, right, all } => {
            let sum = estimate_rows(left, stats) + estimate_rows(right, stats);
            if *all {
                sum
            } else {
                sum * 0.8
            }
        }
        LogicalPlan::Difference { left, .. } => estimate_rows(left, stats) * 0.5,
        LogicalPlan::Distinct { input } => estimate_rows(input, stats) * 0.8,
        LogicalPlan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.is_empty() {
                1.0
            } else {
                let mut groups = 1.0f64;
                for &c in group_by {
                    groups *= column_distinct(input, c, stats);
                }
                groups.min(estimate_rows(input, stats))
            }
        }
        LogicalPlan::Sort { input, .. } => estimate_rows(input, stats),
        LogicalPlan::Limit { input, n } => estimate_rows(input, stats).min(*n as f64),
        // Closure of a graph with E edges and d distinct sources: the
        // classic heuristic |TC| ≈ E · avg-path-length; we use E · log2(E).
        LogicalPlan::Closure { input } => {
            let e = estimate_rows(input, stats).max(1.0);
            e * e.log2().max(1.0)
        }
        LogicalPlan::Fixpoint { base, step, .. } => {
            let b = estimate_rows(base, stats).max(1.0);
            let s = estimate_rows(step, stats).max(1.0);
            (b + s) * b.log2().max(1.0)
        }
    }
}

/// Distinct values flowing out of `plan`'s column `col` (best effort:
/// precise for scans with stats, damped defaults elsewhere).
fn column_distinct(plan: &LogicalPlan, col: usize, stats: &dyn StatsSource) -> f64 {
    match plan {
        LogicalPlan::Scan { relation, .. } => stats
            .table_stats(relation)
            .map(|s| s.distinct_of(col))
            .unwrap_or(DEFAULT_ROWS / 10.0),
        LogicalPlan::Select { input, .. } => column_distinct(input, col, stats) * 0.5,
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col) {
            Some(ScalarExpr::Col(i)) => column_distinct(input, *i, stats),
            _ => estimate_rows(plan, stats) / 10.0,
        },
        LogicalPlan::Join { left, right, .. } => {
            let larity = left
                .output_schema()
                .map(|s| s.arity())
                .unwrap_or(usize::MAX);
            if col < larity {
                column_distinct(left, col, stats)
            } else {
                column_distinct(right, col - larity, stats)
            }
        }
        _ => (estimate_rows(plan, stats) / 10.0).max(1.0),
    }
}

/// Selectivity of a predicate over `input`'s output.
pub fn predicate_selectivity(
    pred: &ScalarExpr,
    input: &LogicalPlan,
    stats: &dyn StatsSource,
) -> f64 {
    match pred {
        ScalarExpr::Lit(v) => {
            if v.as_bool() == Some(true) {
                1.0
            } else {
                0.0
            }
        }
        ScalarExpr::And(l, r) => {
            predicate_selectivity(l, input, stats) * predicate_selectivity(r, input, stats)
        }
        ScalarExpr::Or(l, r) => {
            let a = predicate_selectivity(l, input, stats);
            let b = predicate_selectivity(r, input, stats);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        ScalarExpr::Not(e) => 1.0 - predicate_selectivity(e, input, stats),
        ScalarExpr::Cmp(op, l, r) => {
            // `col <op> literal` in either orientation; the operator
            // flips with the operands.
            let col_lit = match (l.as_ref(), r.as_ref()) {
                (ScalarExpr::Col(i), ScalarExpr::Lit(v)) => Some((*i, v, *op)),
                (ScalarExpr::Lit(v), ScalarExpr::Col(i)) => Some((*i, v, op.flip())),
                _ => None,
            };
            match col_lit {
                Some((i, v, CmpOp::Eq)) => eq_selectivity(input, i, v, stats),
                Some((i, v, CmpOp::Ne)) => 1.0 - eq_selectivity(input, i, v, stats),
                Some((i, v, op @ (CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge))) => {
                    range_selectivity(input, i, v, op, stats).unwrap_or(RANGE_SEL)
                }
                None if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) => {
                    RANGE_SEL
                }
                _ => DEFAULT_SEL,
            }
        }
        ScalarExpr::IsNull(_) => 0.1,
        _ => DEFAULT_SEL,
    }
}

/// Trace `plan`'s output column `col` back to a base-relation column:
/// `Some((relation, column))` when the column flows unchanged through
/// Select/Project/Join operators from a scan — the shape under which
/// table-level histograms and most-common values describe the column's
/// distribution.
pub(crate) fn base_column(plan: &LogicalPlan, col: usize) -> Option<(&str, usize)> {
    match plan {
        LogicalPlan::Scan { relation, .. } => Some((relation, col)),
        LogicalPlan::Select { input, .. } => base_column(input, col),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col) {
            Some(ScalarExpr::Col(i)) => base_column(input, *i),
            _ => None,
        },
        LogicalPlan::Join { left, right, .. } => {
            let larity = left.output_schema().map(|s| s.arity()).ok()?;
            if col < larity {
                base_column(left, col)
            } else {
                base_column(right, col - larity)
            }
        }
        _ => None,
    }
}

/// Table-level stats of the base relation behind `plan`'s column `col`,
/// plus the base column ordinal.
fn base_column_stats(
    plan: &LogicalPlan,
    col: usize,
    stats: &dyn StatsSource,
) -> Option<(std::sync::Arc<TableStats>, usize)> {
    let (rel, base_col) = base_column(plan, col)?;
    Some((stats.table_stats(rel)?, base_col))
}

/// Selectivity of `col = v`: exact from the most-common values when `v`
/// is one of them, histogram-bucket estimate otherwise, uniform
/// 1/distinct fallback without a histogram. A literal **outside** every
/// histogram bucket also falls back to 1/distinct rather than 0 — the
/// histogram may simply predate the value (stale stats under an
/// append-heavy workload), and a zero estimate would poison every
/// upstream join estimate.
fn eq_selectivity(input: &LogicalPlan, col: usize, v: &Value, stats: &dyn StatsSource) -> f64 {
    if let Some((ts, base_col)) = base_column_stats(input, col, stats) {
        if ts.rows > 0 {
            if let Some((_, count)) = ts.mcv_of(base_col).iter().find(|(mv, _)| mv == v) {
                return (*count as f64 / ts.rows as f64).clamp(0.0, 1.0);
            }
            if let Some(sel) = ts.hist_of(base_col).and_then(|h| h.selectivity_eq(v)) {
                // Not a known heavy hitter: the containing bucket's
                // average-value mass.
                return sel.clamp(0.0, 1.0);
            }
        }
    }
    1.0 / column_distinct(input, col, stats).max(1.0)
}

/// Histogram-integrated selectivity of a range comparison; `None` when
/// no histogram describes the column (caller falls back to the uniform
/// [`RANGE_SEL`]).
fn range_selectivity(
    input: &LogicalPlan,
    col: usize,
    v: &Value,
    op: CmpOp,
    stats: &dyn StatsSource,
) -> Option<f64> {
    let (ts, base_col) = base_column_stats(input, col, stats)?;
    let h = ts.hist_of(base_col)?;
    let sel = match op {
        CmpOp::Lt => h.fraction_below(v, false),
        CmpOp::Le => h.fraction_below(v, true),
        CmpOp::Gt => 1.0 - h.fraction_below(v, true),
        CmpOp::Ge => 1.0 - h.fraction_below(v, false),
        _ => return None,
    };
    Some(sel.clamp(0.0, 1.0))
}

/// Convenience: full stats for a scan, if available.
pub fn scan_stats(plan: &LogicalPlan, stats: &dyn StatsSource) -> Option<std::sync::Arc<TableStats>> {
    if let LogicalPlan::Scan { relation, .. } = plan {
        stats.table_stats(relation)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{NoStats, TableStats};
    use prisma_types::{Column, DataType, Schema};
    use std::collections::HashMap;

    fn schema2() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn stats() -> HashMap<String, TableStats> {
        let mut m = HashMap::new();
        m.insert(
            "t".to_owned(),
            TableStats {
                rows: 1000,
                distinct: vec![1000, 10],
                min: vec![None, None],
                max: vec![None, None],
                ..TableStats::default()
            },
        );
        m.insert(
            "u".to_owned(),
            TableStats {
                rows: 100,
                distinct: vec![100, 100],
                min: vec![None, None],
                max: vec![None, None],
                ..TableStats::default()
            },
        );
        m
    }

    #[test]
    fn equality_selectivity_uses_distinct() {
        let s = stats();
        let scan = LogicalPlan::scan("t", schema2());
        let eq_pk = scan
            .clone()
            .select(ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(5)));
        let eq_lowcard = scan
            .clone()
            .select(ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(5)));
        assert!((estimate_rows(&eq_pk, &s) - 1.0).abs() < 1e-9);
        assert!((estimate_rows(&eq_lowcard, &s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn join_estimate_divides_by_max_distinct() {
        let s = stats();
        let j = LogicalPlan::scan("t", schema2())
            .join(LogicalPlan::scan("u", schema2()), vec![(0, 0)]);
        // 1000*100/max(1000,100) = 100
        assert!((estimate_rows(&j, &s) - 100.0).abs() < 1e-9);
        // Cross join multiplies.
        let x = LogicalPlan::scan("t", schema2()).join(LogicalPlan::scan("u", schema2()), vec![]);
        assert!((estimate_rows(&x, &s) - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn fallbacks_without_stats() {
        let scan = LogicalPlan::scan("mystery", schema2());
        assert!(estimate_rows(&scan, &NoStats) > 0.0);
        let sel = scan.select(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(0),
            ScalarExpr::lit(3),
        ));
        let est = estimate_rows(&sel, &NoStats);
        assert!(est > 0.0 && est < DEFAULT_ROWS);
    }

    #[test]
    fn eq_outside_histogram_falls_back_to_distinct_not_zero() {
        use prisma_types::Histogram;
        // Histogram covers 0..=99; the probe literal 500 postdates it
        // (e.g. appended after the last refresh). The estimate must fall
        // back to 1/distinct, never to 0 (which would poison joins).
        let counts: std::collections::BTreeMap<prisma_types::Value, u64> =
            (0..100).map(|i| (prisma_types::Value::Int(i), 1)).collect();
        let mut ts = TableStats {
            rows: 100,
            distinct: vec![100, 10],
            min: vec![None, None],
            max: vec![None, None],
            ..TableStats::default()
        };
        ts.hist = vec![Histogram::equi_depth(counts.iter(), 8), None];
        let mut s = HashMap::new();
        s.insert("t".to_owned(), ts);
        let probe = LogicalPlan::scan("t", schema2())
            .select(ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(500)));
        let est = estimate_rows(&probe, &s);
        assert!((est - 1.0).abs() < 1e-9, "1/distinct fallback: {est}");
        // An in-range literal still uses the histogram.
        let probe = LogicalPlan::scan("t", schema2())
            .select(ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(50)));
        assert!(estimate_rows(&probe, &s) > 0.0);
    }

    #[test]
    fn limit_caps_estimate() {
        let s = stats();
        let p = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::scan("t", schema2())),
            n: 7,
        };
        assert_eq!(estimate_rows(&p, &s), 7.0);
    }

    #[test]
    fn aggregate_group_estimate() {
        let s = stats();
        let p = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("t", schema2())),
            group_by: vec![1],
            aggs: vec![],
        };
        assert!((estimate_rows(&p, &s) - 10.0).abs() < 1e-9);
        let global = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::scan("t", schema2())),
            group_by: vec![],
            aggs: vec![],
        };
        assert_eq!(estimate_rows(&global, &s), 1.0);
    }
}
