//! Common-subexpression detection (paper §2.4's third rule family).
//!
//! The optimizer reports structurally identical non-trivial subplans; the
//! distributed executor memoizes them so a shared subquery (e.g. the same
//! filtered scan appearing in both branches of a UNION or a self-join)
//! executes once and its result is reused. Detection is by structural
//! equality on the canonical `Display` form of the subtree.

use std::collections::HashMap;

use prisma_relalg::LogicalPlan;

/// A detected common subexpression.
#[derive(Debug, Clone)]
pub struct CommonSubexpr {
    /// Canonical key (also used by the executor's memo table).
    pub key: String,
    /// The shared subplan.
    pub plan: LogicalPlan,
    /// Number of occurrences in the query.
    pub count: usize,
}

/// Canonical memo key of a plan (stable across clones).
pub fn plan_key(plan: &LogicalPlan) -> String {
    // Display includes operator parameters and the full subtree, which is
    // exactly the equality we need; Scan embeds the relation name.
    format!("{plan}")
}

/// Find all non-trivial subplans occurring at least twice.
///
/// "Non-trivial" excludes bare scans and values (re-scanning a base
/// fragment is free — it is already materialized in the OFM's memory) but
/// includes filtered scans, joins, aggregates and closures.
pub fn detect_common_subexpressions(plan: &LogicalPlan) -> Vec<CommonSubexpr> {
    let mut counts: HashMap<String, (LogicalPlan, usize)> = HashMap::new();
    collect(plan, &mut counts);
    let mut out: Vec<CommonSubexpr> = counts
        .into_iter()
        .filter(|(_, (_, c))| *c >= 2)
        .map(|(key, (plan, count))| CommonSubexpr { key, plan, count })
        .collect();
    // Deterministic order: biggest (deepest) first, then key.
    out.sort_by(|a, b| b.key.len().cmp(&a.key.len()).then(a.key.cmp(&b.key)));
    // Drop subexpressions fully contained in a bigger reported one (the
    // executor memoizes the outermost shared node; its insides come free).
    let mut kept: Vec<CommonSubexpr> = Vec::new();
    for c in out {
        if !kept.iter().any(|k| contains_subtree(&k.plan, &c.plan)) {
            kept.push(c);
        }
    }
    kept
}

/// True when `needle` occurs as a (strict or equal) subtree of `hay`.
fn contains_subtree(hay: &LogicalPlan, needle: &LogicalPlan) -> bool {
    hay == needle || hay.children().iter().any(|c| contains_subtree(c, needle))
}

fn collect(plan: &LogicalPlan, counts: &mut HashMap<String, (LogicalPlan, usize)>) {
    if !matches!(plan, LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) {
        let key = plan_key(plan);
        counts
            .entry(key)
            .and_modify(|(_, c)| *c += 1)
            .or_insert_with(|| (plan.clone(), 1));
    }
    for c in plan.children() {
        collect(c, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_storage::expr::{CmpOp, ScalarExpr};
    use prisma_types::{Column, DataType, Schema};

    fn filtered_scan() -> LogicalPlan {
        LogicalPlan::scan(
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
        )
        .select(ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(0),
            ScalarExpr::lit(5),
        ))
    }

    #[test]
    fn detects_shared_branch_of_union() {
        let shared = filtered_scan();
        let plan = LogicalPlan::Union {
            left: Box::new(shared.clone()),
            right: Box::new(shared.clone()),
            all: true,
        };
        let cse = detect_common_subexpressions(&plan);
        assert_eq!(cse.len(), 1);
        assert_eq!(cse[0].count, 2);
        assert_eq!(cse[0].plan, shared);
    }

    #[test]
    fn nested_duplicates_report_outermost_only() {
        let inner = filtered_scan();
        let outer = LogicalPlan::Distinct {
            input: Box::new(inner.clone()),
        };
        let plan = LogicalPlan::Union {
            left: Box::new(outer.clone()),
            right: Box::new(outer.clone()),
            all: true,
        };
        let cse = detect_common_subexpressions(&plan);
        assert_eq!(cse.len(), 1, "{cse:?}");
        assert_eq!(cse[0].plan, outer);
    }

    #[test]
    fn bare_scans_not_reported() {
        let scan = LogicalPlan::scan(
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
        );
        let plan = scan.clone().join(scan, vec![(0, 0)]);
        assert!(detect_common_subexpressions(&plan).is_empty());
    }

    #[test]
    fn distinct_subplans_not_confused() {
        let a = filtered_scan();
        let b = LogicalPlan::scan(
            "t",
            Schema::new(vec![Column::new("a", DataType::Int)]),
        )
        .select(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(0),
            ScalarExpr::lit(5),
        ));
        let plan = LogicalPlan::Union {
            left: Box::new(a),
            right: Box::new(b),
            all: true,
        };
        assert!(detect_common_subexpressions(&plan).is_empty());
    }
}
