//! Relation statistics for size estimation.

use std::collections::HashMap;

use prisma_relalg::Relation;
use prisma_storage::FastSet;
use prisma_types::Value;

/// Per-relation statistics kept by the data dictionary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Total tuples across all fragments.
    pub rows: u64,
    /// Distinct values per column.
    pub distinct: Vec<u64>,
    /// Min value per column (None for empty/NULL-only columns).
    pub min: Vec<Option<Value>>,
    /// Max value per column.
    pub max: Vec<Option<Value>>,
}

impl TableStats {
    /// Exact statistics computed from a materialized relation (fragments
    /// are small enough in main memory that exact stats are affordable —
    /// one of the luxuries of the PRISMA design).
    pub fn from_relation(rel: &Relation) -> TableStats {
        let arity = rel.schema().arity();
        let mut distinct_sets: Vec<FastSet<&Value>> = vec![FastSet::default(); arity];
        let mut min: Vec<Option<Value>> = vec![None; arity];
        let mut max: Vec<Option<Value>> = vec![None; arity];
        for t in rel.tuples() {
            for i in 0..arity {
                let v = t.get(i);
                if v.is_null() {
                    continue;
                }
                distinct_sets[i].insert(v);
                if min[i].as_ref().is_none_or(|m| v < m) {
                    min[i] = Some(v.clone());
                }
                if max[i].as_ref().is_none_or(|m| v > m) {
                    max[i] = Some(v.clone());
                }
            }
        }
        TableStats {
            rows: rel.len() as u64,
            distinct: distinct_sets.iter().map(|s| s.len() as u64).collect(),
            min,
            max,
        }
    }

    /// Distinct count for a column (1 at minimum, so selectivity math
    /// never divides by zero).
    pub fn distinct_of(&self, col: usize) -> f64 {
        self.distinct.get(col).copied().unwrap_or(1).max(1) as f64
    }
}

/// Source of statistics, keyed by relation name.
pub trait StatsSource {
    /// Stats for a base relation, if known.
    fn table_stats(&self, name: &str) -> Option<TableStats>;

    /// Fragment ids of a base relation in partition order — the
    /// placement input the physical pass uses to emit shuffle placement
    /// maps for partitioned joins. `None` (the default) means the
    /// fragmentation is unknown and the executor derives a placement at
    /// run time.
    fn fragmentation(&self, _name: &str) -> Option<Vec<prisma_types::FragmentId>> {
        None
    }
}

impl StatsSource for HashMap<String, TableStats> {
    fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.get(name).cloned()
    }
}

/// A stats source that knows nothing (every estimate falls back to
/// defaults) — used to test estimator robustness.
pub struct NoStats;

impl StatsSource for NoStats {
    fn table_stats(&self, _name: &str) -> Option<TableStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, DataType, Schema};

    #[test]
    fn exact_stats() {
        let rel = Relation::new(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::nullable("b", DataType::Str),
            ]),
            vec![
                tuple![1, "x"],
                tuple![2, "x"],
                prisma_types::Tuple::new(vec![Value::Int(2), Value::Null]),
            ],
        );
        let s = TableStats::from_relation(&rel);
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct, vec![2, 1]);
        assert_eq!(s.min[0], Some(Value::Int(1)));
        assert_eq!(s.max[0], Some(Value::Int(2)));
        assert_eq!(s.min[1], Some(Value::from("x")));
        assert_eq!(s.distinct_of(9), 1.0);
    }
}
