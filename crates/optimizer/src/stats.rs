//! Relation statistics for size estimation.
//!
//! [`TableStats`] is the table-level summary the estimator consumes. It
//! is **derived**: the source of truth is the per-fragment
//! [`FragmentStatistics`] each One-Fragment Manager maintains where the
//! data lives (shipped to the dictionary via the GDH's `StatsReport`
//! message). [`TableStats::from_fragments`] performs the merge —
//! histograms, most-common values, distinct counts — so existing
//! cardinality code keeps a single table-level view while skew-aware
//! passes read the raw per-fragment reports through
//! [`StatsSource::fragment_stats`].

use std::collections::HashMap;
use std::sync::Arc;

use prisma_relalg::Relation;
use prisma_storage::FastSet;
use prisma_types::stats::{HISTOGRAM_BUCKETS, MOST_COMMON_VALUES};
use prisma_types::{FragmentId, FragmentStatistics, Histogram, StatsFreshness, Value};

/// Per-relation statistics kept by the data dictionary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Total tuples across all fragments.
    pub rows: u64,
    /// Distinct values per column.
    pub distinct: Vec<u64>,
    /// Min value per column (None for empty/NULL-only columns).
    pub min: Vec<Option<Value>>,
    /// Max value per column.
    pub max: Vec<Option<Value>>,
    /// Merged equi-depth histogram per column (empty/None when the
    /// relation was never profiled through the fragment-stats pipeline).
    pub hist: Vec<Option<Histogram>>,
    /// Most-common values per column, heaviest first — the skew signal
    /// the physical lowering consumes.
    pub mcv: Vec<Vec<(Value, u64)>>,
}

impl TableStats {
    /// Exact statistics computed from a materialized relation (fragments
    /// are small enough in main memory that exact stats are affordable —
    /// one of the luxuries of the PRISMA design). No histograms: those
    /// come from the per-fragment pipeline.
    pub fn from_relation(rel: &Relation) -> TableStats {
        let arity = rel.schema().arity();
        let mut distinct_sets: Vec<FastSet<&Value>> = vec![FastSet::default(); arity];
        let mut min: Vec<Option<&Value>> = vec![None; arity];
        let mut max: Vec<Option<&Value>> = vec![None; arity];
        for t in rel.tuples() {
            for i in 0..arity {
                let v = t.get(i);
                if v.is_null() {
                    continue;
                }
                distinct_sets[i].insert(v);
                // Track candidates by reference; the clone happens once,
                // at the end — not on every replacement in the hot loop.
                if min[i].is_none_or(|m| v < m) {
                    min[i] = Some(v);
                }
                if max[i].is_none_or(|m| v > m) {
                    max[i] = Some(v);
                }
            }
        }
        TableStats {
            rows: rel.len() as u64,
            distinct: distinct_sets.iter().map(|s| s.len() as u64).collect(),
            min: min.into_iter().map(|v| v.cloned()).collect(),
            max: max.into_iter().map(|v| v.cloned()).collect(),
            hist: vec![None; arity],
            mcv: vec![Vec::new(); arity],
        }
    }

    /// Merge per-fragment statistics into the table-level summary.
    ///
    /// * rows/NULLs sum; min/max take the extremes;
    /// * distinct counts **sum** for the hash-fragmentation column (its
    ///   values are disjoint across fragments by construction) and take
    ///   the per-fragment **maximum** elsewhere, capped by the merged
    ///   row count;
    /// * histograms merge via [`Histogram::merge`]; most-common values
    ///   sum per value and keep the heaviest.
    pub fn from_fragments(parts: &[FragmentStatistics], frag_column: Option<usize>) -> TableStats {
        let arity = parts.iter().map(|p| p.columns.len()).max().unwrap_or(0);
        let rows: u64 = parts.iter().map(|p| p.rows).sum();
        let mut stats = TableStats {
            rows,
            distinct: vec![0; arity],
            min: vec![None; arity],
            max: vec![None; arity],
            hist: vec![None; arity],
            mcv: vec![Vec::new(); arity],
        };
        for col in 0..arity {
            let cols: Vec<_> = parts.iter().filter_map(|p| p.columns.get(col)).collect();
            let distinct = if frag_column == Some(col) {
                cols.iter().map(|c| c.distinct).sum::<u64>()
            } else {
                cols.iter().map(|c| c.distinct).max().unwrap_or(0)
            };
            stats.distinct[col] = distinct.min(rows.max(1));
            stats.min[col] = cols.iter().filter_map(|c| c.min.clone()).min();
            stats.max[col] = cols.iter().filter_map(|c| c.max.clone()).max();
            stats.hist[col] = Histogram::merge(
                cols.iter().filter_map(|c| c.histogram.as_ref()),
                HISTOGRAM_BUCKETS,
            );
            let mut merged: HashMap<Value, u64> = HashMap::new();
            for c in &cols {
                for (v, n) in &c.most_common {
                    *merged.entry(v.clone()).or_default() += n;
                }
            }
            let mut mcv: Vec<(Value, u64)> = merged.into_iter().collect();
            mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            mcv.truncate(MOST_COMMON_VALUES);
            stats.mcv[col] = mcv;
        }
        stats
    }

    /// Distinct count for a column (1 at minimum, so selectivity math
    /// never divides by zero). An out-of-range column is planner/schema
    /// drift — caught loudly in debug builds instead of silently
    /// producing nonsense selectivities.
    pub fn distinct_of(&self, col: usize) -> f64 {
        debug_assert!(
            col < self.distinct.len(),
            "distinct_of({col}) out of range for arity {} — planner/schema drift",
            self.distinct.len()
        );
        self.distinct.get(col).copied().unwrap_or(1).max(1) as f64
    }

    /// Merged histogram for a column, if one was ever collected.
    pub fn hist_of(&self, col: usize) -> Option<&Histogram> {
        self.hist.get(col).and_then(|h| h.as_ref())
    }

    /// Most-common values for a column (empty when never profiled).
    pub fn mcv_of(&self, col: usize) -> &[(Value, u64)] {
        self.mcv.get(col).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Source of statistics, keyed by relation name.
pub trait StatsSource {
    /// Stats for a base relation, if known. Returned behind an `Arc` so
    /// sources with a cache (the GDH data dictionary) hand out a shared
    /// reference instead of deep-cloning histograms and MCV lists on
    /// every estimator call — planning one query consults this many
    /// times (per-operator estimates, skew checks, placement weights).
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>>;

    /// Per-fragment statistics in partition order, when the source keeps
    /// them (the GDH data dictionary does). `None` (the default) means
    /// only the merged table-level view exists.
    fn fragment_stats(&self, _name: &str) -> Option<Vec<(FragmentId, FragmentStatistics)>> {
        None
    }

    /// Per-fragment row counts in partition order — the only field the
    /// placement pass needs per query. The default derives it from
    /// [`StatsSource::fragment_stats`]; sources holding full reports
    /// (the dictionary) override it to skip cloning histograms and MCVs
    /// on the planning hot path.
    fn fragment_rows(&self, name: &str) -> Option<Vec<(FragmentId, u64)>> {
        Some(
            self.fragment_stats(name)?
                .into_iter()
                .map(|(id, s)| (id, s.rows))
                .collect(),
        )
    }

    /// How trustworthy the stats behind [`StatsSource::table_stats`] are
    /// — surfaced in EXPLAIN so every decision names the stats that fed
    /// it.
    fn stats_freshness(&self, _name: &str) -> StatsFreshness {
        StatsFreshness::Absent
    }

    /// Fragment ids of a base relation in partition order — the
    /// placement input the physical pass uses to emit shuffle placement
    /// maps for partitioned joins. `None` (the default) means the
    /// fragmentation is unknown and the executor derives a placement at
    /// run time.
    fn fragmentation(&self, _name: &str) -> Option<Vec<prisma_types::FragmentId>> {
        None
    }
}

impl StatsSource for HashMap<String, TableStats> {
    // Convenience impl for tests and ad-hoc sources: the per-call
    // `Arc::new(clone)` is fine off the planning hot path. Wrap the
    // values in `Arc` up front (the impl below) to avoid it.
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.get(name).map(|s| Arc::new(s.clone()))
    }

    fn stats_freshness(&self, name: &str) -> StatsFreshness {
        if self.contains_key(name) {
            StatsFreshness::Fresh
        } else {
            StatsFreshness::Absent
        }
    }
}

impl StatsSource for HashMap<String, Arc<TableStats>> {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.get(name).cloned()
    }

    fn stats_freshness(&self, name: &str) -> StatsFreshness {
        if self.contains_key(name) {
            StatsFreshness::Fresh
        } else {
            StatsFreshness::Absent
        }
    }
}

/// A stats source that knows nothing (every estimate falls back to
/// defaults) — used to test estimator robustness.
pub struct NoStats;

impl StatsSource for NoStats {
    fn table_stats(&self, _name: &str) -> Option<Arc<TableStats>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, ColumnStats, DataType, Schema};

    #[test]
    fn exact_stats() {
        let rel = Relation::new(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::nullable("b", DataType::Str),
            ]),
            vec![
                tuple![1, "x"],
                tuple![2, "x"],
                prisma_types::Tuple::new(vec![Value::Int(2), Value::Null]),
            ],
        );
        let s = TableStats::from_relation(&rel);
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct, vec![2, 1]);
        assert_eq!(s.min[0], Some(Value::Int(1)));
        assert_eq!(s.max[0], Some(Value::Int(2)));
        assert_eq!(s.min[1], Some(Value::from("x")));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "planner/schema drift")]
    fn distinct_of_out_of_range_asserts_in_debug() {
        let s = TableStats {
            rows: 1,
            distinct: vec![1],
            ..TableStats::default()
        };
        let _ = s.distinct_of(9);
    }

    fn frag_stats(values: &[i64]) -> FragmentStatistics {
        let mut counts: std::collections::BTreeMap<Value, u64> =
            std::collections::BTreeMap::new();
        for &v in values {
            *counts.entry(Value::Int(v)).or_default() += 1;
        }
        let mut most_common: Vec<(Value, u64)> =
            counts.iter().map(|(v, &c)| (v.clone(), c)).collect();
        most_common.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        most_common.truncate(MOST_COMMON_VALUES);
        FragmentStatistics {
            rows: values.len() as u64,
            bytes: values.len() as u64 * 8,
            columns: vec![ColumnStats {
                distinct: counts.len() as u64,
                nulls: 0,
                min: counts.keys().next().cloned(),
                max: counts.keys().next_back().cloned(),
                histogram: Histogram::equi_depth(counts.iter(), HISTOGRAM_BUCKETS),
                most_common,
            }],
        }
    }

    #[test]
    fn fragment_merge_sums_rows_and_merges_columns() {
        let a = frag_stats(&[1, 2, 3, 3]);
        let b = frag_stats(&[3, 4, 5]);
        let merged = TableStats::from_fragments(&[a, b], None);
        assert_eq!(merged.rows, 7);
        assert_eq!(merged.min[0], Some(Value::Int(1)));
        assert_eq!(merged.max[0], Some(Value::Int(5)));
        // Non-fragmentation column: distinct is the per-fragment max.
        assert_eq!(merged.distinct[0], 3);
        assert_eq!(merged.hist_of(0).unwrap().rows(), 7);
        // Value 3 appears 3× across fragments; the merged MCVs sum it.
        assert_eq!(merged.mcv_of(0)[0], (Value::Int(3), 3));

        // Hash-fragmentation column: values are disjoint, distinct sums
        // (capped by rows).
        let merged = TableStats::from_fragments(&[frag_stats(&[1, 2]), frag_stats(&[3, 4])], Some(0));
        assert_eq!(merged.distinct[0], 4);
    }
}
