//! A relation fragment: heap, secondary indexes, markings, the
//! incrementally-maintained per-column statistics sketches behind
//! [`Fragment::statistics`] — and the two-tier delta/sealed storage layout.
//!
//! # Two-tier layout
//!
//! The heap stays the single authority for every live row: Rids, indexes,
//! markings, undo and recovery are untouched by sealing. On top of it the
//! fragment maintains a list of [`SealedChunk`]s — immutable columnar runs
//! of [`seal_every`] heap rows each, sealed in slot order whenever enough
//! *uncovered* rows accumulate (and again on first scan, via the OFM's
//! scan hook). Rows not covered by a chunk form the *delta* and flow
//! through the row path exactly as before.
//!
//! A mutation of a covered row **dissolves** its chunk: the chunk (and its
//! zone maps and cached wire block) is dropped and the rows fall back into
//! the delta, to be resealed later. Insert/delete/update of delta rows
//! never touch sealed state, so OLTP churn on fresh rows is as cheap as it
//! was before chunks existed. Sealing is invisible to the GDH's
//! mutation-epoch staleness model: it changes the physical layout, never
//! the logical contents, and bumps no epoch.

use prisma_storage::{BTreeIndex, Cursor, HashIndex, Marking, Rid, TupleHeap};
use prisma_types::stats::{HISTOGRAM_BUCKETS, MOST_COMMON_VALUES};
use prisma_types::{
    chunk::seal_every, ColumnStats, FragmentId, FragmentStatistics, Histogram, PrismaError,
    Result, Schema, SealedChunk, Tuple, Value,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// One sealed run: the heap Rids it covers (in seal order) plus the shared
/// immutable chunk built from their tuples.
#[derive(Debug)]
struct SealedSpan {
    rids: Vec<Rid>,
    chunk: Arc<SealedChunk>,
}

/// Summary statistics the Global Data Handler's optimizer pulls from each
/// fragment (cardinality and footprint feed the size-estimation rules of
/// paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FragmentStats {
    /// Live tuples.
    pub tuples: usize,
    /// Payload bytes.
    pub bytes: usize,
}

/// The storage state of one fragment, with index, marking and statistics
/// maintenance on every mutation.
#[derive(Debug, Default)]
pub struct Fragment {
    id: FragmentId,
    schema: Schema,
    heap: TupleHeap,
    hash_indexes: Vec<HashIndex>,
    btree_indexes: Vec<BTreeIndex>,
    markings: HashMap<String, Marking>,
    /// Per-column ordered value→count multiset, maintained on every
    /// insert/delete/update. Exact and cheap for a main-memory fragment;
    /// [`Fragment::statistics`] snapshots it into histograms without
    /// rescanning the heap.
    sketches: Vec<BTreeMap<Value, u64>>,
    /// NULL rows per column (NULLs never enter the sketches).
    null_counts: Vec<u64>,
    /// Sealed columnar runs, oldest first. Scan order is sealed runs in
    /// this order followed by the delta in heap-slot order.
    sealed: Vec<SealedSpan>,
    /// Rid → position in `sealed` for every covered row (the dissolution
    /// lookup). Rows absent here form the delta.
    covered: HashMap<Rid, usize>,
    /// Uncovered live rids in slot order (`Rid` orders by slot, so the
    /// set iterates exactly like a covered-filtered heap walk). Kept
    /// incrementally on every mutation/seal/dissolve so per-scan delta
    /// snapshots and sealing cost O(delta), never O(heap).
    delta: BTreeSet<Rid>,
    /// Rows per sealed chunk (and the delta size that triggers sealing).
    /// Initialized from [`seal_every`]; tests and benches override it per
    /// fragment via [`Fragment::set_seal_rows`].
    seal_rows: usize,
}

impl Fragment {
    /// Empty fragment.
    pub fn new(id: FragmentId, schema: Schema) -> Self {
        let arity = schema.arity();
        Fragment {
            id,
            schema,
            sketches: vec![BTreeMap::new(); arity],
            null_counts: vec![0; arity],
            seal_rows: seal_every(),
            ..Fragment::default()
        }
    }

    /// Override the rows-per-chunk seal threshold for this fragment
    /// (tests and benches; production fragments use the `SEAL_EVERY`
    /// environment override handled by [`seal_every`]).
    pub fn set_seal_rows(&mut self, rows: usize) {
        self.seal_rows = rows.max(1);
    }

    /// Record a tuple's values in the statistics sketches. Values are
    /// cloned only on first occurrence — repeat values (the common case
    /// on low-cardinality columns) just bump the existing counter.
    fn sketch_add(&mut self, tuple: &Tuple) {
        for (i, v) in tuple.values().iter().enumerate() {
            if v.is_null() {
                self.null_counts[i] += 1;
            } else if let Some(c) = self.sketches[i].get_mut(v) {
                *c += 1;
            } else {
                self.sketches[i].insert(v.clone(), 1);
            }
        }
    }

    /// Remove a tuple's values from the statistics sketches.
    fn sketch_remove(&mut self, tuple: &Tuple) {
        for (i, v) in tuple.values().iter().enumerate() {
            if v.is_null() {
                self.null_counts[i] = self.null_counts[i].saturating_sub(1);
            } else if let Some(c) = self.sketches[i].get_mut(v) {
                *c -= 1;
                if *c == 0 {
                    self.sketches[i].remove(v);
                }
            }
        }
    }

    /// Fragment id.
    pub fn id(&self) -> FragmentId {
        self.id
    }

    /// Schema shared by all fragments of the relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live tuples.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Heap accessor (read-only).
    pub fn heap(&self) -> &TupleHeap {
        &self.heap
    }

    /// Stats snapshot.
    pub fn stats(&self) -> FragmentStats {
        FragmentStats {
            tuples: self.heap.len(),
            bytes: self.heap.byte_size(),
        }
    }

    // ---- the sealed columnar tier ----

    /// Sealed chunks in scan order (oldest seal first). A scan serves
    /// these as ready-made column batches and appends the delta after.
    pub fn sealed_chunks(&self) -> Vec<Arc<SealedChunk>> {
        self.sealed.iter().map(|s| Arc::clone(&s.chunk)).collect()
    }

    /// Number of sealed chunks.
    pub fn sealed_count(&self) -> usize {
        self.sealed.len()
    }

    /// Live rows covered by sealed chunks.
    pub fn sealed_rows(&self) -> usize {
        self.covered.len()
    }

    /// Live rows in the delta (not covered by any sealed chunk).
    pub fn delta_rows(&self) -> usize {
        debug_assert_eq!(self.delta.len() + self.covered.len(), self.heap.len());
        self.delta.len()
    }

    /// The delta's tuples in heap-slot order — the row-path tail of a
    /// two-tier scan.
    pub fn delta_tuples(&self) -> Vec<Tuple> {
        self.delta
            .iter()
            .map(|&rid| self.heap.get(rid).expect("delta rid is live").clone())
            .collect()
    }

    /// Seal every full run of [`seal_every`] uncovered rows (slot order)
    /// into immutable columnar chunks; a partial remainder stays in the
    /// delta. Idempotent, and a no-op when the delta is smaller than one
    /// chunk. Called on insert growth and by the OFM's scan hook — *not*
    /// on dissolution, so a hot row being updated repeatedly does not pay
    /// a reseal per mutation.
    pub fn seal(&mut self) {
        let every = self.seal_rows;
        if every == 0 || self.delta_rows() < every {
            return;
        }
        let pending: Vec<Rid> = self.delta.iter().copied().collect();
        for run in pending.chunks(every) {
            if run.len() < every {
                break; // remainder stays row-oriented
            }
            let rows: Vec<Tuple> = run
                .iter()
                .map(|&r| self.heap.get(r).expect("pending rid is live").clone())
                .collect();
            let pos = self.sealed.len();
            for &r in run {
                self.covered.insert(r, pos);
                self.delta.remove(&r);
            }
            self.sealed.push(SealedSpan {
                rids: run.to_vec(),
                chunk: Arc::new(SealedChunk::seal(rows)),
            });
        }
    }

    /// If `rid` is covered by a sealed chunk, dissolve that chunk back
    /// into the delta (dropping its zone maps and cached wire block) so
    /// the row can be mutated through the ordinary heap path.
    fn dissolve(&mut self, rid: Rid) {
        let Some(&pos) = self.covered.get(&rid) else {
            return;
        };
        let span = self.sealed.remove(pos);
        for r in &span.rids {
            self.covered.remove(r);
            self.delta.insert(*r);
        }
        for p in self.covered.values_mut() {
            if *p > pos {
                *p -= 1;
            }
        }
    }

    /// Full statistics snapshot: row/byte counts plus per-column
    /// distinct/min/max, NULL counts, equi-depth histograms and
    /// most-common values — built from the incrementally-maintained
    /// sketches in O(distinct values), never by rescanning the heap.
    /// Sealed-chunk zone maps are folded into each column's min/max, so
    /// the reported bounds always cover the columnar tier even if a
    /// sketch and the chunks ever disagreed. This is the payload of the
    /// GDH's `StatsReport` message.
    pub fn statistics(&self) -> FragmentStatistics {
        let mut columns: Vec<ColumnStats> = self
            .sketches
            .iter()
            .zip(&self.null_counts)
            .map(|(sketch, &nulls)| {
                // Select the top values over borrows — only the few
                // survivors are cloned (a unique-key Str column would
                // otherwise clone every distinct value per report).
                let mut by_count: Vec<(&Value, u64)> =
                    sketch.iter().map(|(v, &c)| (v, c)).collect();
                let cmp = |a: &(&Value, u64), b: &(&Value, u64)| {
                    b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0))
                };
                if by_count.len() > MOST_COMMON_VALUES {
                    by_count.select_nth_unstable_by(MOST_COMMON_VALUES, cmp);
                    by_count.truncate(MOST_COMMON_VALUES);
                }
                by_count.sort_by(cmp);
                let most_common: Vec<(Value, u64)> = by_count
                    .into_iter()
                    .map(|(v, c)| (v.clone(), c))
                    .collect();
                ColumnStats {
                    distinct: sketch.len() as u64,
                    nulls,
                    min: sketch.keys().next().cloned(),
                    max: sketch.keys().next_back().cloned(),
                    histogram: Histogram::equi_depth(sketch.iter(), HISTOGRAM_BUCKETS),
                    most_common,
                }
            })
            .collect();
        // Fold zone-map bounds from the sealed tier into the sketch-derived
        // min/max (widening only — both sources describe live rows, so the
        // extremes are the union's extremes).
        for span in &self.sealed {
            for (i, zone) in span.chunk.zones().iter().enumerate() {
                let Some(cs) = columns.get_mut(i) else {
                    continue;
                };
                if let Some(zmin) = &zone.min {
                    cs.min = Some(match cs.min.take() {
                        Some(m) if m.total_cmp(zmin).is_le() => m,
                        _ => zmin.clone(),
                    });
                }
                if let Some(zmax) = &zone.max {
                    cs.max = Some(match cs.max.take() {
                        Some(m) if m.total_cmp(zmax).is_ge() => m,
                        _ => zmax.clone(),
                    });
                }
            }
        }
        FragmentStatistics {
            rows: self.heap.len() as u64,
            bytes: self.heap.byte_size() as u64,
            columns,
        }
    }

    // ---- index management (the OFM's "various storage structures") ----

    /// Add a hash index on `cols`, backfilled from existing tuples.
    /// Returns its slot for [`Fragment::hash_index`].
    pub fn add_hash_index(&mut self, cols: Vec<usize>) -> Result<usize> {
        for &c in &cols {
            if c >= self.schema.arity() {
                return Err(PrismaError::ExprType(format!(
                    "index column {c} out of range"
                )));
            }
        }
        let mut idx = HashIndex::new(cols);
        for (rid, t) in self.heap.iter() {
            idx.insert(t, rid);
        }
        self.hash_indexes.push(idx);
        Ok(self.hash_indexes.len() - 1)
    }

    /// Add an ordered index on `cols`, backfilled.
    pub fn add_btree_index(&mut self, cols: Vec<usize>) -> Result<usize> {
        for &c in &cols {
            if c >= self.schema.arity() {
                return Err(PrismaError::ExprType(format!(
                    "index column {c} out of range"
                )));
            }
        }
        let mut idx = BTreeIndex::new(cols);
        for (rid, t) in self.heap.iter() {
            idx.insert(t, rid);
        }
        self.btree_indexes.push(idx);
        Ok(self.btree_indexes.len() - 1)
    }

    /// Hash indexes present.
    pub fn hash_indexes(&self) -> &[HashIndex] {
        &self.hash_indexes
    }

    /// Ordered indexes present.
    pub fn btree_indexes(&self) -> &[BTreeIndex] {
        &self.btree_indexes
    }

    /// Hash index by slot.
    pub fn hash_index(&self, slot: usize) -> Option<&HashIndex> {
        self.hash_indexes.get(slot)
    }

    /// Ordered index by slot.
    pub fn btree_index(&self, slot: usize) -> Option<&BTreeIndex> {
        self.btree_indexes.get(slot)
    }

    // ---- mutations (index + marking maintenance) ----

    /// Insert after schema validation.
    pub fn insert(&mut self, tuple: Tuple) -> Result<Rid> {
        self.schema.check_tuple(tuple.values())?;
        let rid = self.heap.insert(tuple);
        self.delta.insert(rid);
        let t = self.heap.get(rid).expect("just inserted").clone();
        for idx in &mut self.hash_indexes {
            idx.insert(&t, rid);
        }
        for idx in &mut self.btree_indexes {
            idx.insert(&t, rid);
        }
        self.sketch_add(&t);
        // Inserts only ever grow the delta (a fresh or reused slot is
        // never covered); seal when it crosses a chunk's worth of rows.
        self.seal();
        Ok(rid)
    }

    /// Delete by Rid; maintains indexes and strips the Rid from every
    /// marking (the paper's marking-maintenance duty).
    pub fn delete(&mut self, rid: Rid) -> Option<Tuple> {
        self.dissolve(rid);
        let t = self.heap.delete(rid)?;
        self.delta.remove(&rid);
        for idx in &mut self.hash_indexes {
            idx.remove(&t, rid);
        }
        for idx in &mut self.btree_indexes {
            idx.remove(&t, rid);
        }
        for m in self.markings.values_mut() {
            m.unmark(rid);
        }
        self.sketch_remove(&t);
        Some(t)
    }

    /// Replace the tuple at `rid` (validates, maintains indexes).
    pub fn update(&mut self, rid: Rid, tuple: Tuple) -> Result<Option<Tuple>> {
        self.schema.check_tuple(tuple.values())?;
        self.dissolve(rid);
        let Some(old) = self.heap.update(rid, tuple.clone()) else {
            return Ok(None);
        };
        for idx in &mut self.hash_indexes {
            idx.remove(&old, rid);
            idx.insert(&tuple, rid);
        }
        for idx in &mut self.btree_indexes {
            idx.remove(&old, rid);
            idx.insert(&tuple, rid);
        }
        self.sketch_remove(&old);
        self.sketch_add(&tuple);
        Ok(Some(old))
    }

    /// Delete one live tuple equal to `value` (recovery's redo-delete).
    pub fn delete_by_value(&mut self, value: &Tuple) -> Option<Rid> {
        let rid = self
            .heap
            .iter()
            .find(|(_, t)| *t == value)
            .map(|(r, _)| r)?;
        self.delete(rid);
        Some(rid)
    }

    // ---- markings & cursors ----

    /// Create or replace a named marking.
    pub fn set_marking(&mut self, name: impl Into<String>, marking: Marking) {
        self.markings.insert(name.into(), marking);
    }

    /// Fetch a marking.
    pub fn marking(&self, name: &str) -> Option<&Marking> {
        self.markings.get(name)
    }

    /// Drop a marking.
    pub fn drop_marking(&mut self, name: &str) -> bool {
        self.markings.remove(name).is_some()
    }

    /// Open a cursor over the whole fragment or over a marking.
    pub fn open_cursor(&self, marking: Option<&str>) -> Result<Cursor> {
        match marking {
            None => Ok(Cursor::over_heap(&self.heap)),
            Some(name) => self
                .markings
                .get(name)
                .map(Cursor::over_marking)
                .ok_or_else(|| PrismaError::Execution(format!("no marking named {name}"))),
        }
    }

    /// All live tuples as a vector (snapshot).
    pub fn all_tuples(&self) -> Vec<Tuple> {
        self.heap.iter().map(|(_, t)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, DataType, Value};

    fn frag() -> Fragment {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        Fragment::new(FragmentId(0), schema)
    }

    #[test]
    fn indexes_maintained_across_mutations() {
        let mut f = frag();
        f.add_hash_index(vec![0]).unwrap();
        f.add_btree_index(vec![0]).unwrap();
        let r1 = f.insert(tuple![1, "a"]).unwrap();
        let _r2 = f.insert(tuple![2, "b"]).unwrap();
        assert_eq!(f.hash_index(0).unwrap().lookup_one(&Value::Int(1)), &[r1]);
        f.update(r1, tuple![5, "a"]).unwrap();
        assert!(f.hash_index(0).unwrap().lookup_one(&Value::Int(1)).is_empty());
        assert_eq!(f.hash_index(0).unwrap().lookup_one(&Value::Int(5)), &[r1]);
        f.delete(r1);
        assert!(f.hash_index(0).unwrap().lookup_one(&Value::Int(5)).is_empty());
        assert_eq!(f.btree_index(0).unwrap().len(), 1);
    }

    #[test]
    fn backfill_on_index_creation() {
        let mut f = frag();
        f.insert(tuple![1, "a"]).unwrap();
        f.insert(tuple![2, "b"]).unwrap();
        let slot = f.add_hash_index(vec![1]).unwrap();
        assert_eq!(f.hash_index(slot).unwrap().len(), 2);
        assert!(f.add_hash_index(vec![7]).is_err());
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut f = frag();
        assert!(f.insert(tuple!["not an int", 1]).is_err());
        let r = f.insert(tuple![1, "a"]).unwrap();
        assert!(f.update(r, tuple![1, 2]).is_err());
    }

    #[test]
    fn markings_shrink_with_deletes() {
        let mut f = frag();
        let r1 = f.insert(tuple![1, "a"]).unwrap();
        let r2 = f.insert(tuple![2, "b"]).unwrap();
        f.set_marking("hot", Marking::from_rids([r1, r2]));
        f.delete(r1);
        assert_eq!(f.marking("hot").unwrap().len(), 1);
        let mut cur = f.open_cursor(Some("hot")).unwrap();
        assert_eq!(cur.next(f.heap()), Some(r2));
        assert!(f.open_cursor(Some("cold")).is_err());
        assert!(f.drop_marking("hot"));
    }

    #[test]
    fn statistics_track_mutations_incrementally() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("name", DataType::Str),
        ]);
        let mut f = Fragment::new(FragmentId(0), schema);
        let r1 = f.insert(tuple![1, "a"]).unwrap();
        f.insert(tuple![2, "b"]).unwrap();
        f.insert(tuple![2, "b"]).unwrap();
        f.insert(prisma_types::Tuple::new(vec![Value::Int(3), Value::Null]))
            .unwrap();
        let s = f.statistics();
        assert_eq!(s.rows, 4);
        assert_eq!(s.columns[0].distinct, 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[1].nulls, 1);
        assert_eq!(s.columns[1].distinct, 2);
        assert_eq!(s.columns[1].most_common[0], (Value::from("b"), 2));
        assert_eq!(s.columns[0].histogram.as_ref().unwrap().rows(), 4);

        // Deletes and updates keep the sketches exact.
        f.delete(r1);
        let r2 = f
            .heap()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(3))
            .map(|(r, _)| r)
            .unwrap();
        f.update(r2, tuple![9, "z"]).unwrap();
        let s = f.statistics();
        assert_eq!(s.rows, 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(2)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[1].nulls, 0);
        assert_eq!(s.columns[0].histogram.as_ref().unwrap().rows(), 3);
    }

    #[test]
    fn sealing_covers_full_runs_and_leaves_a_delta() {
        let mut f = frag();
        f.set_seal_rows(4);
        for i in 0..10 {
            f.insert(tuple![i, format!("s{i}")]).unwrap();
        }
        // 10 rows at 4 per chunk: two sealed chunks, delta of 2.
        assert_eq!(f.sealed_count(), 2);
        assert_eq!(f.sealed_rows(), 8);
        assert_eq!(f.delta_rows(), 2);
        let chunks = f.sealed_chunks();
        assert!(chunks.iter().all(|c| c.len() == 4 && c.arity() == 2));
        assert_eq!(chunks[0].rows()[0], tuple![0, "s0"]);
        assert_eq!(f.delta_tuples(), vec![tuple![8, "s8"], tuple![9, "s9"]]);
        // Sealed + delta together are exactly the live rows.
        let mut union: Vec<Tuple> = chunks
            .iter()
            .flat_map(|c| c.rows().iter().cloned())
            .chain(f.delta_tuples())
            .collect();
        union.sort_by(|a, b| a.values().cmp(b.values()));
        let mut all = f.all_tuples();
        all.sort_by(|a, b| a.values().cmp(b.values()));
        assert_eq!(union, all);
    }

    #[test]
    fn mutating_a_covered_row_dissolves_only_its_chunk() {
        let mut f = frag();
        f.set_seal_rows(4);
        for i in 0..8 {
            f.insert(tuple![i, "x"]).unwrap();
        }
        assert_eq!(f.sealed_count(), 2);
        // Row 1 lives in the first chunk; updating it dissolves chunk 0
        // only, and its 4 rows fall back into the delta.
        let rid = f
            .heap()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(1))
            .map(|(r, _)| r)
            .unwrap();
        f.update(rid, tuple![100, "x"]).unwrap();
        assert_eq!(f.sealed_count(), 1);
        assert_eq!(f.delta_rows(), 4);
        assert_eq!(f.sealed_chunks()[0].rows()[0], tuple![4, "x"]);
        // Deleting a row of the surviving chunk dissolves it too.
        let rid = f
            .heap()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(5))
            .map(|(r, _)| r)
            .unwrap();
        f.delete(rid);
        assert_eq!(f.sealed_count(), 0);
        assert_eq!(f.delta_rows(), 7);
        // Dissolution alone never reseals; an explicit seal (the scan
        // hook) re-covers the delta.
        f.seal();
        assert_eq!(f.sealed_count(), 1);
        assert_eq!(f.delta_rows(), 3);
    }

    #[test]
    fn delta_mutations_leave_sealed_chunks_alone() {
        let mut f = frag();
        f.set_seal_rows(4);
        for i in 0..6 {
            f.insert(tuple![i, "x"]).unwrap();
        }
        assert_eq!((f.sealed_count(), f.delta_rows()), (1, 2));
        let chunk_before = Arc::as_ptr(&f.sealed_chunks()[0]);
        let rid = f
            .heap()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(5))
            .map(|(r, _)| r)
            .unwrap();
        f.update(rid, tuple![50, "y"]).unwrap();
        f.delete_by_value(&tuple![4, "x"]).unwrap();
        assert_eq!(f.sealed_count(), 1);
        assert_eq!(Arc::as_ptr(&f.sealed_chunks()[0]), chunk_before);
    }

    #[test]
    fn statistics_fold_sealed_zone_bounds() {
        let mut f = frag();
        f.set_seal_rows(4);
        for i in 10..14 {
            f.insert(tuple![i, "x"]).unwrap();
        }
        f.insert(tuple![1, "a"]).unwrap();
        f.insert(tuple![99, "z"]).unwrap();
        assert_eq!(f.sealed_count(), 1);
        let s = f.statistics();
        // Bounds cover both tiers: sealed [10, 13] and delta {1, 99}.
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(99)));
        assert_eq!(s.rows, 6);
        // Sealing itself must not change any reported statistic: seal the
        // remaining delta and compare snapshots.
        let before = f.statistics();
        f.set_seal_rows(2);
        f.seal();
        assert_eq!(f.sealed_count(), 2);
        assert_eq!(f.statistics(), before);
    }

    #[test]
    fn delete_by_value_removes_exactly_one() {
        let mut f = frag();
        f.insert(tuple![1, "dup"]).unwrap();
        f.insert(tuple![1, "dup"]).unwrap();
        assert!(f.delete_by_value(&tuple![1, "dup"]).is_some());
        assert_eq!(f.len(), 1);
        assert!(f.delete_by_value(&tuple![9, "nope"]).is_none());
    }
}
