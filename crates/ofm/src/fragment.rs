//! A relation fragment: heap, secondary indexes, markings, and the
//! incrementally-maintained per-column statistics sketches behind
//! [`Fragment::statistics`].

use prisma_storage::{BTreeIndex, Cursor, HashIndex, Marking, Rid, TupleHeap};
use prisma_types::stats::{HISTOGRAM_BUCKETS, MOST_COMMON_VALUES};
use prisma_types::{
    ColumnStats, FragmentId, FragmentStatistics, Histogram, PrismaError, Result, Schema, Tuple,
    Value,
};
use std::collections::{BTreeMap, HashMap};

/// Summary statistics the Global Data Handler's optimizer pulls from each
/// fragment (cardinality and footprint feed the size-estimation rules of
/// paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FragmentStats {
    /// Live tuples.
    pub tuples: usize,
    /// Payload bytes.
    pub bytes: usize,
}

/// The storage state of one fragment, with index, marking and statistics
/// maintenance on every mutation.
#[derive(Debug, Default)]
pub struct Fragment {
    id: FragmentId,
    schema: Schema,
    heap: TupleHeap,
    hash_indexes: Vec<HashIndex>,
    btree_indexes: Vec<BTreeIndex>,
    markings: HashMap<String, Marking>,
    /// Per-column ordered value→count multiset, maintained on every
    /// insert/delete/update. Exact and cheap for a main-memory fragment;
    /// [`Fragment::statistics`] snapshots it into histograms without
    /// rescanning the heap.
    sketches: Vec<BTreeMap<Value, u64>>,
    /// NULL rows per column (NULLs never enter the sketches).
    null_counts: Vec<u64>,
}

impl Fragment {
    /// Empty fragment.
    pub fn new(id: FragmentId, schema: Schema) -> Self {
        let arity = schema.arity();
        Fragment {
            id,
            schema,
            sketches: vec![BTreeMap::new(); arity],
            null_counts: vec![0; arity],
            ..Fragment::default()
        }
    }

    /// Record a tuple's values in the statistics sketches. Values are
    /// cloned only on first occurrence — repeat values (the common case
    /// on low-cardinality columns) just bump the existing counter.
    fn sketch_add(&mut self, tuple: &Tuple) {
        for (i, v) in tuple.values().iter().enumerate() {
            if v.is_null() {
                self.null_counts[i] += 1;
            } else if let Some(c) = self.sketches[i].get_mut(v) {
                *c += 1;
            } else {
                self.sketches[i].insert(v.clone(), 1);
            }
        }
    }

    /// Remove a tuple's values from the statistics sketches.
    fn sketch_remove(&mut self, tuple: &Tuple) {
        for (i, v) in tuple.values().iter().enumerate() {
            if v.is_null() {
                self.null_counts[i] = self.null_counts[i].saturating_sub(1);
            } else if let Some(c) = self.sketches[i].get_mut(v) {
                *c -= 1;
                if *c == 0 {
                    self.sketches[i].remove(v);
                }
            }
        }
    }

    /// Fragment id.
    pub fn id(&self) -> FragmentId {
        self.id
    }

    /// Schema shared by all fragments of the relation.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live tuple count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no live tuples.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Heap accessor (read-only).
    pub fn heap(&self) -> &TupleHeap {
        &self.heap
    }

    /// Stats snapshot.
    pub fn stats(&self) -> FragmentStats {
        FragmentStats {
            tuples: self.heap.len(),
            bytes: self.heap.byte_size(),
        }
    }

    /// Full statistics snapshot: row/byte counts plus per-column
    /// distinct/min/max, NULL counts, equi-depth histograms and
    /// most-common values — built from the incrementally-maintained
    /// sketches in O(distinct values), never by rescanning the heap.
    /// This is the payload of the GDH's `StatsReport` message.
    pub fn statistics(&self) -> FragmentStatistics {
        let columns = self
            .sketches
            .iter()
            .zip(&self.null_counts)
            .map(|(sketch, &nulls)| {
                // Select the top values over borrows — only the few
                // survivors are cloned (a unique-key Str column would
                // otherwise clone every distinct value per report).
                let mut by_count: Vec<(&Value, u64)> =
                    sketch.iter().map(|(v, &c)| (v, c)).collect();
                let cmp = |a: &(&Value, u64), b: &(&Value, u64)| {
                    b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0))
                };
                if by_count.len() > MOST_COMMON_VALUES {
                    by_count.select_nth_unstable_by(MOST_COMMON_VALUES, cmp);
                    by_count.truncate(MOST_COMMON_VALUES);
                }
                by_count.sort_by(cmp);
                let most_common: Vec<(Value, u64)> = by_count
                    .into_iter()
                    .map(|(v, c)| (v.clone(), c))
                    .collect();
                ColumnStats {
                    distinct: sketch.len() as u64,
                    nulls,
                    min: sketch.keys().next().cloned(),
                    max: sketch.keys().next_back().cloned(),
                    histogram: Histogram::equi_depth(sketch.iter(), HISTOGRAM_BUCKETS),
                    most_common,
                }
            })
            .collect();
        FragmentStatistics {
            rows: self.heap.len() as u64,
            bytes: self.heap.byte_size() as u64,
            columns,
        }
    }

    // ---- index management (the OFM's "various storage structures") ----

    /// Add a hash index on `cols`, backfilled from existing tuples.
    /// Returns its slot for [`Fragment::hash_index`].
    pub fn add_hash_index(&mut self, cols: Vec<usize>) -> Result<usize> {
        for &c in &cols {
            if c >= self.schema.arity() {
                return Err(PrismaError::ExprType(format!(
                    "index column {c} out of range"
                )));
            }
        }
        let mut idx = HashIndex::new(cols);
        for (rid, t) in self.heap.iter() {
            idx.insert(t, rid);
        }
        self.hash_indexes.push(idx);
        Ok(self.hash_indexes.len() - 1)
    }

    /// Add an ordered index on `cols`, backfilled.
    pub fn add_btree_index(&mut self, cols: Vec<usize>) -> Result<usize> {
        for &c in &cols {
            if c >= self.schema.arity() {
                return Err(PrismaError::ExprType(format!(
                    "index column {c} out of range"
                )));
            }
        }
        let mut idx = BTreeIndex::new(cols);
        for (rid, t) in self.heap.iter() {
            idx.insert(t, rid);
        }
        self.btree_indexes.push(idx);
        Ok(self.btree_indexes.len() - 1)
    }

    /// Hash indexes present.
    pub fn hash_indexes(&self) -> &[HashIndex] {
        &self.hash_indexes
    }

    /// Ordered indexes present.
    pub fn btree_indexes(&self) -> &[BTreeIndex] {
        &self.btree_indexes
    }

    /// Hash index by slot.
    pub fn hash_index(&self, slot: usize) -> Option<&HashIndex> {
        self.hash_indexes.get(slot)
    }

    /// Ordered index by slot.
    pub fn btree_index(&self, slot: usize) -> Option<&BTreeIndex> {
        self.btree_indexes.get(slot)
    }

    // ---- mutations (index + marking maintenance) ----

    /// Insert after schema validation.
    pub fn insert(&mut self, tuple: Tuple) -> Result<Rid> {
        self.schema.check_tuple(tuple.values())?;
        let rid = self.heap.insert(tuple);
        let t = self.heap.get(rid).expect("just inserted").clone();
        for idx in &mut self.hash_indexes {
            idx.insert(&t, rid);
        }
        for idx in &mut self.btree_indexes {
            idx.insert(&t, rid);
        }
        self.sketch_add(&t);
        Ok(rid)
    }

    /// Delete by Rid; maintains indexes and strips the Rid from every
    /// marking (the paper's marking-maintenance duty).
    pub fn delete(&mut self, rid: Rid) -> Option<Tuple> {
        let t = self.heap.delete(rid)?;
        for idx in &mut self.hash_indexes {
            idx.remove(&t, rid);
        }
        for idx in &mut self.btree_indexes {
            idx.remove(&t, rid);
        }
        for m in self.markings.values_mut() {
            m.unmark(rid);
        }
        self.sketch_remove(&t);
        Some(t)
    }

    /// Replace the tuple at `rid` (validates, maintains indexes).
    pub fn update(&mut self, rid: Rid, tuple: Tuple) -> Result<Option<Tuple>> {
        self.schema.check_tuple(tuple.values())?;
        let Some(old) = self.heap.update(rid, tuple.clone()) else {
            return Ok(None);
        };
        for idx in &mut self.hash_indexes {
            idx.remove(&old, rid);
            idx.insert(&tuple, rid);
        }
        for idx in &mut self.btree_indexes {
            idx.remove(&old, rid);
            idx.insert(&tuple, rid);
        }
        self.sketch_remove(&old);
        self.sketch_add(&tuple);
        Ok(Some(old))
    }

    /// Delete one live tuple equal to `value` (recovery's redo-delete).
    pub fn delete_by_value(&mut self, value: &Tuple) -> Option<Rid> {
        let rid = self
            .heap
            .iter()
            .find(|(_, t)| *t == value)
            .map(|(r, _)| r)?;
        self.delete(rid);
        Some(rid)
    }

    // ---- markings & cursors ----

    /// Create or replace a named marking.
    pub fn set_marking(&mut self, name: impl Into<String>, marking: Marking) {
        self.markings.insert(name.into(), marking);
    }

    /// Fetch a marking.
    pub fn marking(&self, name: &str) -> Option<&Marking> {
        self.markings.get(name)
    }

    /// Drop a marking.
    pub fn drop_marking(&mut self, name: &str) -> bool {
        self.markings.remove(name).is_some()
    }

    /// Open a cursor over the whole fragment or over a marking.
    pub fn open_cursor(&self, marking: Option<&str>) -> Result<Cursor> {
        match marking {
            None => Ok(Cursor::over_heap(&self.heap)),
            Some(name) => self
                .markings
                .get(name)
                .map(Cursor::over_marking)
                .ok_or_else(|| PrismaError::Execution(format!("no marking named {name}"))),
        }
    }

    /// All live tuples as a vector (snapshot).
    pub fn all_tuples(&self) -> Vec<Tuple> {
        self.heap.iter().map(|(_, t)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::{tuple, Column, DataType, Value};

    fn frag() -> Fragment {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        Fragment::new(FragmentId(0), schema)
    }

    #[test]
    fn indexes_maintained_across_mutations() {
        let mut f = frag();
        f.add_hash_index(vec![0]).unwrap();
        f.add_btree_index(vec![0]).unwrap();
        let r1 = f.insert(tuple![1, "a"]).unwrap();
        let _r2 = f.insert(tuple![2, "b"]).unwrap();
        assert_eq!(f.hash_index(0).unwrap().lookup_one(&Value::Int(1)), &[r1]);
        f.update(r1, tuple![5, "a"]).unwrap();
        assert!(f.hash_index(0).unwrap().lookup_one(&Value::Int(1)).is_empty());
        assert_eq!(f.hash_index(0).unwrap().lookup_one(&Value::Int(5)), &[r1]);
        f.delete(r1);
        assert!(f.hash_index(0).unwrap().lookup_one(&Value::Int(5)).is_empty());
        assert_eq!(f.btree_index(0).unwrap().len(), 1);
    }

    #[test]
    fn backfill_on_index_creation() {
        let mut f = frag();
        f.insert(tuple![1, "a"]).unwrap();
        f.insert(tuple![2, "b"]).unwrap();
        let slot = f.add_hash_index(vec![1]).unwrap();
        assert_eq!(f.hash_index(slot).unwrap().len(), 2);
        assert!(f.add_hash_index(vec![7]).is_err());
    }

    #[test]
    fn schema_enforced_on_insert_and_update() {
        let mut f = frag();
        assert!(f.insert(tuple!["not an int", 1]).is_err());
        let r = f.insert(tuple![1, "a"]).unwrap();
        assert!(f.update(r, tuple![1, 2]).is_err());
    }

    #[test]
    fn markings_shrink_with_deletes() {
        let mut f = frag();
        let r1 = f.insert(tuple![1, "a"]).unwrap();
        let r2 = f.insert(tuple![2, "b"]).unwrap();
        f.set_marking("hot", Marking::from_rids([r1, r2]));
        f.delete(r1);
        assert_eq!(f.marking("hot").unwrap().len(), 1);
        let mut cur = f.open_cursor(Some("hot")).unwrap();
        assert_eq!(cur.next(f.heap()), Some(r2));
        assert!(f.open_cursor(Some("cold")).is_err());
        assert!(f.drop_marking("hot"));
    }

    #[test]
    fn statistics_track_mutations_incrementally() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::nullable("name", DataType::Str),
        ]);
        let mut f = Fragment::new(FragmentId(0), schema);
        let r1 = f.insert(tuple![1, "a"]).unwrap();
        f.insert(tuple![2, "b"]).unwrap();
        f.insert(tuple![2, "b"]).unwrap();
        f.insert(prisma_types::Tuple::new(vec![Value::Int(3), Value::Null]))
            .unwrap();
        let s = f.statistics();
        assert_eq!(s.rows, 4);
        assert_eq!(s.columns[0].distinct, 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[1].nulls, 1);
        assert_eq!(s.columns[1].distinct, 2);
        assert_eq!(s.columns[1].most_common[0], (Value::from("b"), 2));
        assert_eq!(s.columns[0].histogram.as_ref().unwrap().rows(), 4);

        // Deletes and updates keep the sketches exact.
        f.delete(r1);
        let r2 = f
            .heap()
            .iter()
            .find(|(_, t)| t.get(0) == &Value::Int(3))
            .map(|(r, _)| r)
            .unwrap();
        f.update(r2, tuple![9, "z"]).unwrap();
        let s = f.statistics();
        assert_eq!(s.rows, 3);
        assert_eq!(s.columns[0].min, Some(Value::Int(2)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert_eq!(s.columns[1].nulls, 0);
        assert_eq!(s.columns[0].histogram.as_ref().unwrap().rows(), 3);
    }

    #[test]
    fn delete_by_value_removes_exactly_one() {
        let mut f = frag();
        f.insert(tuple![1, "dup"]).unwrap();
        f.insert(tuple![1, "dup"]).unwrap();
        assert!(f.delete_by_value(&tuple![1, "dup"]).is_some());
        assert_eq!(f.len(), 1);
        assert!(f.delete_by_value(&tuple![9, "nope"]).is_none());
    }
}
