//! The One-Fragment Manager.

use std::collections::HashMap;
use std::sync::Arc;

use prisma_relalg::{Batch, LogicalPlan, PhysicalPlan, Relation, RelationProvider};
use prisma_stable::{CheckpointStore, LogPayload, WriteAheadLog};
use prisma_storage::expr::{CmpOp, ScalarExpr};
use prisma_storage::Rid;
use prisma_types::{FragmentId, PrismaError, Result, Schema, Tuple, TxnId, Value};

use crate::fragment::{Fragment, FragmentStats};

/// Scan name the phase-2 shuffle-join plan binds the collected left
/// (probe) buckets to.
pub const SHUFFLE_LEFT: &str = "__shuffle_l";

/// Scan name the phase-2 shuffle-join plan binds the collected right
/// (build) buckets to.
pub const SHUFFLE_RIGHT: &str = "__shuffle_r";

/// Provider bindings for a site-local shuffle join: the reassembled
/// bucket rows of both sides under the agreed scan names, ready for
/// [`Ofm::open_physical`]. One place owns the naming convention shared
/// by the coordinator (which builds the site plan) and the site actor
/// (which runs it).
pub fn shuffle_extras(left: Relation, right: Relation) -> HashMap<String, Arc<Relation>> {
    HashMap::from([
        (SHUFFLE_LEFT.to_owned(), Arc::new(left)),
        (SHUFFLE_RIGHT.to_owned(), Arc::new(right)),
    ])
}

/// The OFM type, per the paper's *generative approach*: "Several OFM types
/// are envisioned, each equipped with the right amount of tools. For
/// example, OFMs needed for query processing only, do not require
/// extensive crash recovery facilities."
pub enum OfmKind {
    /// Base-fragment OFM: WAL + checkpoints on a disk PE.
    Persistent {
        /// Shared write-ahead log (one per disk PE).
        wal: Arc<WriteAheadLog>,
        /// Shared checkpoint store.
        checkpoints: Arc<CheckpointStore>,
    },
    /// Intermediate-result OFM: no recovery machinery at all.
    Transient,
}

impl std::fmt::Debug for OfmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfmKind::Persistent { .. } => f.write_str("Persistent"),
            OfmKind::Transient => f.write_str("Transient"),
        }
    }
}

/// Which access path the local optimizer chose for a selection — exposed
/// so tests and EXPLAIN output can verify index use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Full heap scan with a compiled predicate.
    FullScan,
    /// Hash-index point lookup on the given index slot.
    HashLookup(usize),
    /// B-tree range scan on the given index slot.
    BTreeRange(usize),
}

#[derive(Debug)]
enum UndoOp {
    Inserted(Rid),
    Deleted(Tuple),
    Updated(Rid, Tuple),
}

/// A One-Fragment Manager: one fragment plus every local DBMS duty.
pub struct Ofm {
    name: String,
    fragment: Fragment,
    kind: OfmKind,
    /// Per-transaction undo logs for local abort.
    undo: HashMap<TxnId, Vec<UndoOp>>,
    /// Transactions that voted yes in 2PC and await the decision.
    prepared: HashMap<TxnId, ()>,
    /// Primary role: when true, every redo-relevant log record is also
    /// captured into `replica_out` for the owning actor to ship to the
    /// backup replica over the GDH stream protocol.
    replicating: bool,
    /// Outbox of captured records, drained by [`Ofm::drain_replica_records`].
    replica_out: Vec<LogPayload>,
    /// Backup role: records received from the primary, buffered per
    /// transaction until its commit/abort decision arrives.
    replica_buffer: HashMap<TxnId, Vec<LogPayload>>,
    /// The owning PE's compute worker pool for morsel-parallel plan
    /// execution; `None` runs the serial baseline. Attached by the GDH
    /// at spawn time ([`Ofm::attach_pool`]) — the pool lives beside the
    /// actor, never on the wire.
    pool: Option<Arc<prisma_poolx::WorkerPool>>,
}

impl Ofm {
    /// Build an empty OFM managing fragment `id` of relation `name`.
    pub fn new(id: FragmentId, name: impl Into<String>, schema: Schema, kind: OfmKind) -> Self {
        Ofm {
            name: name.into(),
            fragment: Fragment::new(id, schema),
            kind,
            undo: HashMap::new(),
            prepared: HashMap::new(),
            replicating: false,
            replica_out: Vec::new(),
            replica_buffer: HashMap::new(),
            pool: None,
        }
    }

    /// Attach the PE's compute worker pool: every physical plan this OFM
    /// opens from now on runs its scans, join builds/probes, and
    /// aggregate folds morsel-parallel on it.
    pub fn attach_pool(&mut self, pool: Arc<prisma_poolx::WorkerPool>) {
        self.pool = Some(pool);
    }

    /// Relation name this fragment belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Fragment id.
    pub fn fragment_id(&self) -> FragmentId {
        self.fragment.id()
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        self.fragment.schema()
    }

    /// Whether this OFM carries recovery machinery.
    pub fn is_persistent(&self) -> bool {
        matches!(self.kind, OfmKind::Persistent { .. })
    }

    /// Storage statistics.
    pub fn stats(&self) -> FragmentStats {
        self.fragment.stats()
    }

    /// Full per-column statistics snapshot (the `StatsReport` payload) —
    /// computed from the fragment's incrementally-maintained sketches,
    /// exactly where the data lives.
    pub fn statistics(&self) -> prisma_types::FragmentStatistics {
        self.fragment.statistics()
    }

    /// Direct fragment access (index creation, markings, cursors).
    pub fn fragment_mut(&mut self) -> &mut Fragment {
        &mut self.fragment
    }

    /// Direct fragment access (read).
    pub fn fragment(&self) -> &Fragment {
        &self.fragment
    }

    // ---- replication (primary ships its redo log to a backup OFM) ----

    /// Mark this OFM as a replicated primary: from now on every
    /// redo-relevant log record is also queued for shipping to the backup.
    pub fn enable_replication(&mut self) {
        self.replicating = true;
    }

    /// Whether this OFM ships its log to a backup replica.
    pub fn is_replicating(&self) -> bool {
        self.replicating
    }

    /// Drain the queued replica records (primary side). The owning actor
    /// ships these as one `ReplicaAppend` batch; FIFO delivery of the
    /// underlying message layer preserves log order on the backup.
    pub fn drain_replica_records(&mut self) -> Vec<LogPayload> {
        std::mem::take(&mut self.replica_out)
    }

    /// Apply a batch of shipped log records (backup side). Mutations are
    /// buffered per transaction and only touch the fragment once that
    /// transaction's `Commit` record arrives — mirroring the redo rule of
    /// [`Ofm::recover`] — so an aborted primary transaction never surfaces
    /// on the backup. Returns the number of transactions made durable.
    pub fn replica_apply(&mut self, records: Vec<LogPayload>) -> Result<usize> {
        let mut committed = 0;
        for rec in records {
            match rec {
                LogPayload::Insert { txn, .. } | LogPayload::Delete { txn, .. } => {
                    self.replica_buffer.entry(txn).or_default().push(rec);
                }
                LogPayload::Commit { txn } => {
                    for op in self.replica_buffer.remove(&txn).unwrap_or_default() {
                        match op {
                            LogPayload::Insert { tuple, .. } => {
                                self.fragment.insert(tuple)?;
                            }
                            LogPayload::Delete { tuple, .. } => {
                                self.fragment.delete_by_value(&tuple);
                            }
                            _ => unreachable!("only mutations are buffered"),
                        }
                    }
                    committed += 1;
                }
                LogPayload::Abort { txn } => {
                    self.replica_buffer.remove(&txn);
                }
                _ => {}
            }
        }
        Ok(committed)
    }

    // ---- transactional mutations ----

    fn log(&mut self, payload: &LogPayload) {
        if let OfmKind::Persistent { wal, .. } = &self.kind {
            wal.append(payload);
        }
        if self.replicating {
            self.replica_out.push(payload.clone());
        }
    }

    /// Insert under `txn` (undo-logged; WAL redo record appended).
    pub fn insert(&mut self, txn: TxnId, tuple: Tuple) -> Result<Rid> {
        let rid = self.fragment.insert(tuple.clone())?;
        self.undo.entry(txn).or_default().push(UndoOp::Inserted(rid));
        self.log(&LogPayload::Insert {
            txn,
            fragment: self.fragment.id(),
            tuple,
        });
        Ok(rid)
    }

    /// Delete all tuples satisfying `predicate` under `txn`; returns count.
    pub fn delete_where(&mut self, txn: TxnId, predicate: &ScalarExpr) -> Result<usize> {
        predicate.check(self.fragment.schema())?;
        let (_, candidates) = self.plan_selection(predicate);
        let compiled = predicate.compile_predicate();
        let rids: Vec<Rid> = candidates
            .into_iter()
            .filter(|&rid| self.fragment.heap().get(rid).is_some_and(|t| compiled(t)))
            .collect();
        let mut n = 0;
        for rid in rids {
            if let Some(t) = self.fragment.delete(rid) {
                self.undo
                    .entry(txn)
                    .or_default()
                    .push(UndoOp::Deleted(t.clone()));
                self.log(&LogPayload::Delete {
                    txn,
                    fragment: self.fragment.id(),
                    tuple: t,
                });
                n += 1;
            }
        }
        Ok(n)
    }

    /// Update tuples satisfying `predicate`: each assignment sets column
    /// `col` to the value of `expr` over the *old* tuple. Returns count.
    pub fn update_where(
        &mut self,
        txn: TxnId,
        predicate: &ScalarExpr,
        assignments: &[(usize, ScalarExpr)],
    ) -> Result<usize> {
        predicate.check(self.fragment.schema())?;
        for (col, e) in assignments {
            if *col >= self.fragment.schema().arity() {
                return Err(PrismaError::ExprType(format!(
                    "assignment column {col} out of range"
                )));
            }
            e.check(self.fragment.schema())?;
        }
        let (_, candidates) = self.plan_selection(predicate);
        let pred = predicate.compile_predicate();
        let compiled: Vec<(usize, prisma_storage::expr::CompiledExpr)> = assignments
            .iter()
            .map(|(c, e)| (*c, e.compile()))
            .collect();
        let mut n = 0;
        for rid in candidates {
            let Some(old) = self.fragment.heap().get(rid).cloned() else {
                continue;
            };
            if !pred(&old) {
                continue;
            }
            let mut values: Vec<Value> = old.values().to_vec();
            for (col, f) in &compiled {
                values[*col] = f(&old);
            }
            let new = Tuple::new(values);
            self.fragment.update(rid, new.clone())?;
            self.undo
                .entry(txn)
                .or_default()
                .push(UndoOp::Updated(rid, old.clone()));
            self.log(&LogPayload::Delete {
                txn,
                fragment: self.fragment.id(),
                tuple: old,
            });
            self.log(&LogPayload::Insert {
                txn,
                fragment: self.fragment.id(),
                tuple: new,
            });
            n += 1;
        }
        Ok(n)
    }

    // ---- 2PC participant (persistent OFMs only need the disk work) ----

    /// Phase 1: vote. Persistent OFMs force a `Prepared` record; transient
    /// OFMs vote yes trivially. Returns simulated disk ns charged.
    pub fn prepare(&mut self, txn: TxnId) -> Result<u64> {
        let ns = if let OfmKind::Persistent { wal, .. } = &self.kind {
            let (_, ns) = wal.append_durable(&LogPayload::Prepared { txn });
            ns
        } else {
            0
        };
        self.prepared.insert(txn, ());
        Ok(ns)
    }

    /// Phase 2: commit. Forces the `Commit` record for persistent OFMs and
    /// discards the undo log. Returns simulated disk ns charged.
    pub fn commit(&mut self, txn: TxnId) -> Result<u64> {
        let ns = if let OfmKind::Persistent { wal, .. } = &self.kind {
            let (_, ns) = wal.append_durable(&LogPayload::Commit { txn });
            ns
        } else {
            0
        };
        if self.replicating {
            self.replica_out.push(LogPayload::Commit { txn });
        }
        self.prepared.remove(&txn);
        self.undo.remove(&txn);
        Ok(ns)
    }

    /// Abort: undo all of `txn`'s local effects in reverse order.
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.prepared.remove(&txn);
        if let Some(ops) = self.undo.remove(&txn) {
            for op in ops.into_iter().rev() {
                match op {
                    UndoOp::Inserted(rid) => {
                        self.fragment.delete(rid);
                    }
                    UndoOp::Deleted(t) => {
                        self.fragment.insert(t)?;
                    }
                    UndoOp::Updated(rid, old) => {
                        self.fragment.update(rid, old)?;
                    }
                }
            }
        }
        self.log(&LogPayload::Abort { txn });
        Ok(())
    }

    // ---- local query processing ----

    /// The local query optimizer: inspect `predicate`'s indexable conjuncts
    /// and choose an access path. Returns the chosen path and the candidate
    /// Rids (for `FullScan`, all live Rids).
    ///
    /// Rules (in priority order, mirroring the knowledge-based flavor of
    /// §2.4 at fragment scope):
    /// 1. `col = literal` with a hash index on `col` → hash lookup;
    /// 2. `col <cmp> literal` with a B-tree on `col` → range scan;
    /// 3. otherwise → full scan.
    pub fn plan_selection(&self, predicate: &ScalarExpr) -> (AccessPath, Vec<Rid>) {
        let conjuncts = predicate.clone().split_conjunction();
        // Rule 1: hash-index equality.
        for c in &conjuncts {
            if let Some((col, v)) = as_col_lit(c, CmpOp::Eq) {
                for (slot, idx) in self.fragment.hash_indexes().iter().enumerate() {
                    if idx.key_cols() == [col] {
                        return (
                            AccessPath::HashLookup(slot),
                            idx.lookup_one(&v).to_vec(),
                        );
                    }
                }
            }
        }
        // Rule 2: B-tree range.
        for c in &conjuncts {
            if let ScalarExpr::Cmp(op, l, r) = c {
                let (col, v, op) = match (l.as_ref(), r.as_ref()) {
                    (ScalarExpr::Col(i), ScalarExpr::Lit(v)) => (*i, v.clone(), *op),
                    (ScalarExpr::Lit(v), ScalarExpr::Col(i)) => (*i, v.clone(), op.flip()),
                    _ => continue,
                };
                for (slot, idx) in self.fragment.btree_indexes().iter().enumerate() {
                    if idx.key_cols() == [col] {
                        let rids = match op {
                            CmpOp::Eq => idx.lookup(std::slice::from_ref(&v)).to_vec(),
                            CmpOp::Lt => idx.range_one(None, Some((&v, false))),
                            CmpOp::Le => idx.range_one(None, Some((&v, true))),
                            CmpOp::Gt => idx.range_one(Some((&v, false)), None),
                            CmpOp::Ge => idx.range_one(Some((&v, true)), None),
                            CmpOp::Ne => continue,
                        };
                        return (AccessPath::BTreeRange(slot), rids);
                    }
                }
            }
        }
        (AccessPath::FullScan, self.fragment.heap().rids())
    }

    /// Select tuples satisfying `predicate` (or all, for `None`), using
    /// the local optimizer and the compiled-predicate fast path.
    pub fn select(&self, predicate: Option<&ScalarExpr>) -> Result<Relation> {
        let schema = self.fragment.schema().clone();
        match predicate {
            None => Ok(Relation::new(schema, self.fragment.all_tuples())),
            Some(p) => {
                p.check(&schema)?;
                let (_, rids) = self.plan_selection(p);
                let compiled = p.compile_predicate();
                let mut out = Vec::new();
                for rid in rids {
                    if let Some(t) = self.fragment.heap().get(rid) {
                        // The index narrowed candidates; the residual
                        // predicate still applies in full.
                        if compiled(t) {
                            out.push(t.clone());
                        }
                    }
                }
                Ok(Relation::new(schema, out))
            }
        }
    }

    /// Open a lowered physical subplan against this fragment as a
    /// resumable [`prisma_relalg::BatchStream`] — the seam the streaming
    /// wire protocol pulls through: the OFM actor alternates
    /// [`prisma_relalg::BatchStream::next_batch`] with shipping the
    /// batch, so the coordinator merges early batches while
    /// this fragment is still scanning. Inside `plan`, `Scan(self.name())`
    /// reads this fragment; `extra` supplies shipped-in build sides and
    /// other intermediates by name (already `Arc`-shared, so broadcast
    /// sides are never copied per fragment).
    ///
    /// Scans snapshot the fragment at open time, so the stream stays
    /// consistent however long shipping takes. Batches come out in
    /// whatever physical form the executor produced — with the columnar
    /// wire (the default) callers shipping across PEs encode them as
    /// typed column blocks via `Batch::encode_columnar`, so the batch
    /// never pivots to rows on its way to the coordinator; only the
    /// legacy row wire (`PRISMA_ROW_WIRE=1`) still pivots with
    /// [`Batch::into_rows`] at the wire boundary.
    pub fn open_physical(
        &self,
        plan: &PhysicalPlan,
        extra: &HashMap<String, Arc<Relation>>,
    ) -> Result<prisma_relalg::BatchStream> {
        struct P<'a> {
            ofm: &'a Ofm,
            extra: &'a HashMap<String, Arc<Relation>>,
        }
        impl RelationProvider for P<'_> {
            fn relation(&self, name: &str) -> Result<Arc<Relation>> {
                if name == self.ofm.name {
                    Ok(Arc::new(self.ofm.snapshot()))
                } else {
                    self.extra
                        .get(name)
                        .map(Arc::clone)
                        .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
                }
            }

            fn chunked(&self, name: &str) -> Option<Arc<prisma_relalg::ChunkedRelation>> {
                if name != self.ofm.name {
                    return None;
                }
                let frag = &self.ofm.fragment;
                if frag.sealed_count() == 0 {
                    // All-delta fragments scan through the plain row path.
                    return None;
                }
                Some(Arc::new(prisma_relalg::ChunkedRelation::new(
                    frag.sealed_chunks(),
                    Relation::new(frag.schema().clone(), frag.delta_tuples()),
                )))
            }
        }
        prisma_relalg::open_batches_pooled(plan, &P { ofm: self, extra }, self.pool.clone())
    }

    /// Execute a lowered physical subplan to completion, returning every
    /// batch at once (the materialized path; the actor hot path streams
    /// through [`Ofm::open_physical`] instead). Batches are pivoted to
    /// row form for the embedder- and test-facing callers of this
    /// convenience; the wire path encodes straight from
    /// [`Ofm::open_physical`]'s batches without this pivot.
    pub fn execute_physical(
        &self,
        plan: &PhysicalPlan,
        extra: &HashMap<String, Arc<Relation>>,
    ) -> Result<Vec<Batch>> {
        let batches = self.open_physical(plan, extra)?.drain()?;
        Ok(batches.into_iter().map(Batch::into_rows).collect())
    }

    /// Execute a local logical subplan: lower it and run the physical
    /// batch pipeline (the reference evaluator is no longer on this path).
    ///
    /// Convenience for embedders and tests. Note it lowers with default
    /// join strategies and deep-copies each `extra` relation into an
    /// `Arc`; the actor hot path uses [`Ofm::execute_physical`] directly
    /// with pre-shared extras.
    pub fn execute(
        &self,
        plan: &LogicalPlan,
        extra: &HashMap<String, Relation>,
    ) -> Result<Relation> {
        let physical = prisma_relalg::lower(plan)?;
        let shared: HashMap<String, Arc<Relation>> = extra
            .iter()
            .map(|(k, v)| (k.clone(), Arc::new(v.clone())))
            .collect();
        let batches = self.execute_physical(&physical, &shared)?;
        Ok(prisma_relalg::exec::collect_batches(
            physical.output_schema()?,
            batches,
        ))
    }

    /// The paper's per-OFM transitive-closure operator applied to this
    /// fragment (must be binary).
    pub fn transitive_closure(&self) -> Result<Relation> {
        prisma_relalg::eval::transitive_closure(&self.snapshot())
    }

    /// Scan-side seal hook: fold any over-threshold delta into sealed
    /// column chunks before a subplan opens against this fragment, so
    /// cold data accumulated by mutations (dissolved chunks, bulk loads
    /// with a later-lowered threshold) is served columnar from the first
    /// scan. Sealing reorganizes storage only — it is **not** a mutation:
    /// no log record, no replica traffic, no statistics-epoch bump.
    pub fn seal_for_scan(&mut self) {
        self.fragment.seal();
    }

    /// Snapshot the fragment as a relation.
    pub fn snapshot(&self) -> Relation {
        Relation::new(self.fragment.schema().clone(), self.fragment.all_tuples())
    }

    // ---- checkpoint & recovery (persistent OFMs) ----

    /// Write a checkpoint snapshot; returns simulated disk ns.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let OfmKind::Persistent { wal, checkpoints } = &self.kind else {
            return Err(PrismaError::Execution(
                "transient OFM cannot checkpoint".into(),
            ));
        };
        let lsn = wal.append(&LogPayload::Checkpoint {
            fragment: self.fragment.id(),
        });
        let sync_ns = wal.sync();
        let snap_ns = checkpoints.write(prisma_stable::checkpoint::Snapshot {
            fragment: self.fragment.id(),
            as_of_lsn: lsn,
            tuples: self.fragment.all_tuples(),
        });
        Ok(sync_ns + snap_ns)
    }

    /// Rebuild a persistent OFM from stable storage after a crash:
    /// latest checkpoint (if any) + redo of committed transactions'
    /// records past the checkpoint LSN.
    pub fn recover(
        id: FragmentId,
        name: impl Into<String>,
        schema: Schema,
        wal: Arc<WriteAheadLog>,
        checkpoints: Arc<CheckpointStore>,
    ) -> Result<Ofm> {
        checkpoints.recover();
        let mut ofm = Ofm::new(
            id,
            name,
            schema,
            OfmKind::Persistent {
                wal: wal.clone(),
                checkpoints: checkpoints.clone(),
            },
        );
        let mut redo_after: Option<u64> = None;
        if let Some(snap) = checkpoints.load(id) {
            for t in snap.tuples {
                ofm.fragment.insert(t)?;
            }
            redo_after = Some(snap.as_of_lsn);
        }
        let records = wal.read_durable();
        let committed = WriteAheadLog::committed_txns(&records);
        for rec in records {
            if redo_after.is_some_and(|lsn| rec.lsn <= lsn) {
                continue;
            }
            match rec.payload {
                LogPayload::Insert { txn, fragment, tuple }
                    if fragment == id && committed.contains(&txn) =>
                {
                    ofm.fragment.insert(tuple)?;
                }
                LogPayload::Delete { txn, fragment, tuple }
                    if fragment == id && committed.contains(&txn) =>
                {
                    ofm.fragment.delete_by_value(&tuple);
                }
                _ => {}
            }
        }
        Ok(ofm)
    }
}

fn as_col_lit(e: &ScalarExpr, want: CmpOp) -> Option<(usize, Value)> {
    if let ScalarExpr::Cmp(op, l, r) = e {
        match (l.as_ref(), r.as_ref()) {
            (ScalarExpr::Col(i), ScalarExpr::Lit(v)) if *op == want => {
                return Some((*i, v.clone()))
            }
            (ScalarExpr::Lit(v), ScalarExpr::Col(i)) if op.flip() == want => {
                return Some((*i, v.clone()))
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_stable::{DiskProfile, SimulatedDisk, StableDevice};
    use prisma_types::{tuple, Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("amount", DataType::Int),
        ])
    }

    fn transient() -> Ofm {
        Ofm::new(FragmentId(0), "acct", schema(), OfmKind::Transient)
    }

    fn persistent() -> (Ofm, Arc<WriteAheadLog>, Arc<CheckpointStore>) {
        let wal_dev: Arc<dyn StableDevice> =
            Arc::new(SimulatedDisk::new(DiskProfile::instant()));
        let ck_dev: Arc<dyn StableDevice> =
            Arc::new(SimulatedDisk::new(DiskProfile::instant()));
        let wal = Arc::new(WriteAheadLog::new(wal_dev));
        let ck = Arc::new(CheckpointStore::open(ck_dev));
        let ofm = Ofm::new(
            FragmentId(0),
            "acct",
            schema(),
            OfmKind::Persistent {
                wal: wal.clone(),
                checkpoints: ck.clone(),
            },
        );
        (ofm, wal, ck)
    }

    #[test]
    fn abort_undoes_everything_in_reverse() {
        let mut ofm = transient();
        let txn = TxnId(1);
        ofm.insert(txn, tuple![1, 100]).unwrap();
        ofm.insert(TxnId(99), tuple![2, 200]).unwrap();
        ofm.commit(TxnId(99)).unwrap();
        ofm.update_where(
            txn,
            &ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(2)),
            &[(1, ScalarExpr::lit(999))],
        )
        .unwrap();
        ofm.delete_where(txn, &ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(2)))
            .unwrap();
        ofm.abort(txn).unwrap();
        let snap = ofm.snapshot().canonicalized();
        assert_eq!(snap.tuples(), &[tuple![2, 200]]);
    }

    #[test]
    fn local_optimizer_picks_hash_then_btree_then_scan() {
        let mut ofm = transient();
        ofm.fragment_mut().add_hash_index(vec![0]).unwrap();
        ofm.fragment_mut().add_btree_index(vec![1]).unwrap();
        let txn = TxnId(1);
        for i in 0..100 {
            ofm.insert(txn, tuple![i, i * 10]).unwrap();
        }
        ofm.commit(txn).unwrap();
        let (path, rids) =
            ofm.plan_selection(&ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(7)));
        assert_eq!(path, AccessPath::HashLookup(0));
        assert_eq!(rids.len(), 1);
        let (path, rids) = ofm.plan_selection(&ScalarExpr::cmp(
            CmpOp::Ge,
            ScalarExpr::col(1),
            ScalarExpr::lit(950),
        ));
        assert_eq!(path, AccessPath::BTreeRange(0));
        assert_eq!(rids.len(), 5);
        let (path, _) = ofm.plan_selection(&ScalarExpr::cmp(
            CmpOp::Ne,
            ScalarExpr::col(0),
            ScalarExpr::lit(7),
        ));
        assert_eq!(path, AccessPath::FullScan);
        // Reversed operand order still uses the index.
        let (path, _) = ofm.plan_selection(&ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::lit(7),
            ScalarExpr::col(0),
        ));
        assert_eq!(path, AccessPath::HashLookup(0));
    }

    #[test]
    fn select_with_index_matches_full_scan() {
        let mut ofm = transient();
        ofm.fragment_mut().add_btree_index(vec![1]).unwrap();
        let txn = TxnId(1);
        for i in 0..50 {
            ofm.insert(txn, tuple![i, i % 7]).unwrap();
        }
        ofm.commit(txn).unwrap();
        let pred = ScalarExpr::and(
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(1), ScalarExpr::lit(3)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(0), ScalarExpr::lit(10)),
        );
        let via_index = ofm.select(Some(&pred)).unwrap().canonicalized();
        // Strip indexes: full scan reference.
        let mut plain = transient();
        for t in ofm.snapshot().tuples() {
            plain.insert(txn, t.clone()).unwrap();
        }
        let via_scan = plain.select(Some(&pred)).unwrap().canonicalized();
        assert_eq!(via_index, via_scan);
        assert!(!via_index.is_empty());
    }

    #[test]
    fn execute_local_plan_with_shipped_build_side() {
        let mut ofm = transient();
        let txn = TxnId(1);
        for i in 0..10 {
            ofm.insert(txn, tuple![i, i]).unwrap();
        }
        ofm.commit(txn).unwrap();
        let build = Relation::new(
            Schema::new(vec![Column::new("k", DataType::Int)]),
            vec![tuple![3], tuple![5]],
        );
        let plan = LogicalPlan::scan("acct", ofm.schema().clone()).join(
            LogicalPlan::scan("build", build.schema().clone()),
            vec![(0, 0)],
        );
        let mut extra = HashMap::new();
        extra.insert("build".to_owned(), build);
        let out = ofm.execute(&plan, &extra).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn recovery_replays_committed_only() {
        let (mut ofm, wal, ck) = persistent();
        let t1 = TxnId(1);
        let t2 = TxnId(2);
        ofm.insert(t1, tuple![1, 100]).unwrap();
        ofm.prepare(t1).unwrap();
        ofm.commit(t1).unwrap();
        ofm.insert(t2, tuple![2, 200]).unwrap();
        // t2 never commits; crash now (lose nothing synced? records of t2
        // were appended but commit record absent).
        wal.sync();
        wal.device().crash(None);
        let rec = Ofm::recover(FragmentId(0), "acct", schema(), wal, ck).unwrap();
        let snap = rec.snapshot().canonicalized();
        assert_eq!(snap.tuples(), &[tuple![1, 100]]);
    }

    #[test]
    fn recovery_with_checkpoint_and_suffix() {
        let (mut ofm, wal, ck) = persistent();
        let t1 = TxnId(1);
        ofm.insert(t1, tuple![1, 100]).unwrap();
        ofm.insert(t1, tuple![2, 200]).unwrap();
        ofm.commit(t1).unwrap();
        ofm.checkpoint().unwrap();
        let t2 = TxnId(2);
        ofm.delete_where(t2, &ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)))
            .unwrap();
        ofm.insert(t2, tuple![3, 300]).unwrap();
        ofm.commit(t2).unwrap();
        wal.device().crash(None);
        let rec = Ofm::recover(FragmentId(0), "acct", schema(), wal, ck).unwrap();
        let snap = rec.snapshot().canonicalized();
        assert_eq!(snap.tuples(), &[tuple![2, 200], tuple![3, 300]]);
    }

    #[test]
    fn update_is_logged_as_delete_insert_for_recovery() {
        let (mut ofm, wal, ck) = persistent();
        let t1 = TxnId(1);
        ofm.insert(t1, tuple![1, 100]).unwrap();
        ofm.commit(t1).unwrap();
        let t2 = TxnId(2);
        ofm.update_where(
            t2,
            &ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)),
            &[(1, ScalarExpr::arith(
                prisma_storage::expr::ArithOp::Add,
                ScalarExpr::col(1),
                ScalarExpr::lit(1),
            ))],
        )
        .unwrap();
        ofm.commit(t2).unwrap();
        wal.device().crash(None);
        let rec = Ofm::recover(FragmentId(0), "acct", schema(), wal, ck).unwrap();
        assert_eq!(rec.snapshot().tuples(), &[tuple![1, 101]]);
    }

    #[test]
    fn transient_ofm_cannot_checkpoint_and_preps_for_free() {
        let mut ofm = transient();
        assert!(ofm.checkpoint().is_err());
        assert_eq!(ofm.prepare(TxnId(1)).unwrap(), 0);
    }

    #[test]
    fn replica_apply_mirrors_committed_work_and_discards_aborts() {
        let mut primary = transient();
        primary.enable_replication();
        let mut backup = transient();

        let t1 = TxnId(1);
        primary.insert(t1, tuple![1, 100]).unwrap();
        primary.insert(t1, tuple![2, 200]).unwrap();
        primary.commit(t1).unwrap();
        let shipped = primary.drain_replica_records();
        assert_eq!(shipped.len(), 3, "two inserts + the commit record");
        assert_eq!(backup.replica_apply(shipped).unwrap(), 1);
        assert_eq!(backup.stats().tuples, 2);

        // Buffered mutations of an aborted transaction never surface.
        let t2 = TxnId(2);
        primary.insert(t2, tuple![3, 300]).unwrap();
        primary.abort(t2).unwrap();
        backup
            .replica_apply(primary.drain_replica_records())
            .unwrap();
        assert_eq!(backup.stats().tuples, 2);

        // Deletes replicate by value.
        let t3 = TxnId(3);
        primary
            .delete_where(t3, &ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)))
            .unwrap();
        primary.commit(t3).unwrap();
        backup
            .replica_apply(primary.drain_replica_records())
            .unwrap();
        assert_eq!(backup.stats().tuples, 1);
        assert_eq!(backup.snapshot().tuples(), &[tuple![2, 200]]);
    }

    #[test]
    fn closure_operator_on_fragment() {
        let edge_schema = Schema::new(vec![
            Column::new("src", DataType::Int),
            Column::new("dst", DataType::Int),
        ]);
        let mut ofm = Ofm::new(FragmentId(1), "edge", edge_schema, OfmKind::Transient);
        let txn = TxnId(1);
        for (a, b) in [(1, 2), (2, 3)] {
            ofm.insert(txn, tuple![a, b]).unwrap();
        }
        ofm.commit(txn).unwrap();
        let tc = ofm.transitive_closure().unwrap();
        assert_eq!(tc.len(), 3);
    }
}
