//! # prisma-ofm
//!
//! **One-Fragment Managers** — the heart of the PRISMA DBMS architecture
//! (paper §2.5):
//!
//! > "The DBMS software is organized as a fully distributed database
//! > system in which the components are, so-called, One-Fragment Managers
//! > (or OFM). These OFMs are customized database systems that manage a
//! > single relation fragment. They contain all functions encountered in a
//! > full-blown DBMS; such as local query optimizer, transaction
//! > management, markings and cursor maintenance, and (various) storage
//! > structures. More specifically, they support a transitive closure
//! > operator for dealing with recursive queries."
//!
//! * [`fragment::Fragment`] — heap + secondary indexes + markings, with
//!   index/marking maintenance on every mutation;
//! * [`ofm::Ofm`] — the manager: local transactions with undo, WAL-backed
//!   durability and 2PC participant duties for the *persistent* OFM type,
//!   a local query optimizer choosing index vs. scan access paths, local
//!   physical-subplan execution through the batch pipeline (including the
//!   transitive-closure operator) — opened as a resumable batch stream
//!   ([`ofm::Ofm::open_physical`]) so the actor ships each produced batch
//!   while the scan continues — and checkpoint/recovery;
//! * [`ofm::OfmKind`] — the paper's "generative approach": transient OFMs
//!   for intermediate results carry no recovery machinery at all.

pub mod fragment;
pub mod ofm;

pub use fragment::{Fragment, FragmentStats};
pub use ofm::{shuffle_extras, AccessPath, Ofm, OfmKind, SHUFFLE_LEFT, SHUFFLE_RIGHT};
