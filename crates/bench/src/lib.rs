//! # prisma-bench
//!
//! Criterion benchmarks regenerating every experiment of EXPERIMENTS.md
//! (E1–E9). Run with `cargo bench --workspace`; each bench prints the
//! paper-shape series it measures in addition to criterion's timings.
