//! E6 — the transitive-closure operator and recursive queries
//! (paper §2.3, §2.5).
//!
//! Compares (a) the OFM's dedicated semi-naive closure operator, (b) the
//! algebra Fixpoint evaluated semi-naively, and (c) naive fixpoint
//! iteration, across graph shapes with different recursion depths.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::prismalog::{self, seminaive};
use prisma_core::relalg::eval::{transitive_closure, transitive_closure_naive};
use prisma_core::relalg::Relation;
use prisma_core::workload::{edge_schema, graph_edges, GraphShape};

fn graph(shape: GraphShape, n: usize) -> Relation {
    Relation::new(edge_schema(), graph_edges(shape, n, 11))
}

fn bench(c: &mut Criterion) {
    let shapes = [
        ("chain_256", GraphShape::Chain, 256),
        ("tree_1023", GraphShape::BinaryTree, 1023),
        ("random_d2_400", GraphShape::Random { out_degree: 2 }, 400),
    ];
    let mut group = c.benchmark_group("e6_closure");
    group.sample_size(10);
    for (name, shape, n) in shapes {
        let rel = graph(shape, n);
        let semi = transitive_closure(&rel).unwrap();
        let naive = transitive_closure_naive(&rel).unwrap();
        assert_eq!(semi.len(), naive.len());
        eprintln!(
            "[E6:{name}] edges={} closure={} tuples",
            rel.len(),
            semi.len()
        );
        group.bench_function(format!("ofm_seminaive_closure/{name}"), |b| {
            b.iter(|| transitive_closure(&rel).unwrap().len())
        });
        group.bench_function(format!("naive_iteration/{name}"), |b| {
            b.iter(|| transitive_closure_naive(&rel).unwrap().len())
        });
    }

    // PRISMAlog path: semi-naive vs naive evaluation of the path program.
    let program = prismalog::parse_program(
        "path(X, Y) :- edge(X, Y).
         path(X, Y) :- edge(X, Z), path(Z, Y).",
    )
    .unwrap();
    let mut db: HashMap<String, Relation> = HashMap::new();
    db.insert("edge".to_owned(), graph(GraphShape::Chain, 128));
    let (semi, s_stats) =
        seminaive::evaluate_mode(&program, &db, seminaive::Mode::SemiNaive).unwrap();
    let (_, n_stats) = seminaive::evaluate_mode(&program, &db, seminaive::Mode::Naive).unwrap();
    eprintln!(
        "[E6:prismalog_chain128] closure={} tuples; tuples considered: semi-naive {} vs naive {} ({}x)",
        semi["path"].len(),
        s_stats.tuples_considered,
        n_stats.tuples_considered,
        n_stats.tuples_considered / s_stats.tuples_considered.max(1),
    );
    group.bench_function("prismalog_seminaive/chain_128", |b| {
        b.iter(|| seminaive::evaluate_mode(&program, &db, seminaive::Mode::SemiNaive).unwrap())
    });
    group.bench_function("prismalog_naive/chain_128", |b| {
        b.iter(|| seminaive::evaluate_mode(&program, &db, seminaive::Mode::Naive).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
