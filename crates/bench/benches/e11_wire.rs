//! E11 — columnar wire format vs the legacy row wire.
//!
//! PR 8 makes the wire between PEs columnar: OFMs encode each shipped
//! batch as a typed column block (`prisma_types::wire`) — dictionary/RLE
//! strings, delta/bitpacked integers, bool bitmaps — instead of pivoting
//! to rows and shipping fat tagged values. This experiment measures what
//! that buys on the scan-ship path (every fragment streams its rows to
//! the coordinator): total remote payload bytes on the interconnect
//! (`TrafficLedger::remote_bytes`), bytes received at the coordinator PE,
//! and end-to-end latency — on a `Str`-heavy table (where dictionary +
//! RLE encodings bite hardest) and an `Int`-heavy table (delta/bitpack).
//! The baseline is the same scans with `set_columnar_wire(false)`: the
//! pre-PR 8 row wire. Records the trajectory in `BENCH_e11.json` at the
//! repo root.
//!
//! Two latency numbers are reported, because the harness runs every PE
//! in one process: the row wire ships `Vec<Tuple>` by reference-count
//! bump and never serializes a byte, so its codec cost is zero by
//! construction while the columnar wire pays real encode/decode CPU.
//! `latency_us` is that measured wall clock. `e2e_latency_us` adds the
//! interconnect transfer time the machine's analytic cost model
//! (`CostModel::transfer_ns`, fed by `TrafficLedger`) charges for the
//! bytes actually shipped at the configured link rate (10 Mbit/s
//! default) — the end-to-end figure a physical PRISMA interconnect
//! would see, where shipping 4–9× fewer bits dominates the codec CPU.
//!
//! Environment knobs (all optional):
//!
//! * `E11_ROWS`   — rows per table (default 30000)
//! * `E11_FRAGS`  — fragments per table (default 4)
//! * `E11_ITERS`  — timed samples per measurement (default 7)
//! * `E11_ENFORCE=1` — exit non-zero unless the columnar wire ships at
//!   least 1.5× fewer bits than the row wire on the `Str`-heavy scan,
//!   strictly fewer on the `Int`-heavy scan, is no worse on modeled
//!   end-to-end latency for both, and — the PR 10 re-scan case — a
//!   cached-wire-block re-scan of an unmutated fragment is at par with
//!   the row wire in-process (within a 10% floor-to-floor noise margin)
//!   and strictly faster than the cold scan that built the caches

use prisma_core::poolx::COORDINATOR_PE;
use prisma_core::types::{tuple, Value};
use prisma_core::PrismaMachine;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, Default)]
struct Measured {
    /// Total remote payload bytes that crossed the interconnect.
    remote_bytes: u64,
    /// Remote bytes received at the coordinator PE (the reply ships).
    coord_recv_bytes: u64,
    /// Measured in-process scan latency, µs (codec CPU, zero wire time).
    latency_us: u64,
    /// Modeled interconnect transfer time for the shipped bytes, µs.
    transfer_us: u64,
}

impl Measured {
    /// End-to-end latency: measured CPU plus modeled wire time.
    fn e2e_us(&self) -> u64 {
        self.latency_us + self.transfer_us
    }
}

fn measure(db: &PrismaMachine, sql: &str, expect_rows: usize, iters: usize) -> Measured {
    let run = || {
        db.gdh().ledger().reset();
        let (rows, m) = db.query_with_metrics(sql).unwrap();
        assert_eq!(rows.len(), expect_rows, "scan lost rows");
        let (_, recv) = db.gdh().ledger().pe_bytes(COORDINATOR_PE);
        Measured {
            remote_bytes: db.gdh().ledger().remote_bytes(),
            coord_recv_bytes: recv,
            latency_us: m.full_result_micros,
            transfer_us: (db.gdh().ledger().est_transfer_ns() / 1_000.0) as u64,
        }
    };
    let _warmup = run();
    let mut samples: Vec<Measured> = (0..iters.max(1)).map(|_| run()).collect();
    samples.sort_unstable_by_key(|s| s.latency_us);
    let median = samples[samples.len() / 2];
    // Byte counters are deterministic per plan; latency is the median.
    Measured {
        latency_us: median.latency_us,
        ..samples[0]
    }
}

/// The PR 10 re-scan case: on a freshly loaded (never scanned) table,
/// the first columnar scan pays sealing plus the wire-block encode and
/// fills each sealed chunk's cached `BlockChunk`; every later scan of
/// the unmutated fragment ships the cached blocks and skips the encoder
/// entirely. Returns `(first_us, rescan_us, row_rescan_us)`: the cold
/// columnar scan, the median cached columnar re-scan, and the row-wire
/// re-scan baseline the cached path must not lose to.
fn rescan_case(db: &mut PrismaMachine, sql: &str, expect_rows: usize, iters: usize) -> (u64, u64, u64) {
    let timed = |db: &PrismaMachine| {
        let (rows, m) = db.query_with_metrics(sql).unwrap();
        assert_eq!(rows.len(), expect_rows, "scan lost rows");
        m.full_result_micros
    };
    // Latency floors (min over samples), not medians: the two paths
    // differ by well under the scheduler noise a loaded CI host adds,
    // and the floor is the robust estimator of the work actually done.
    let samples = iters.max(5);
    db.gdh_mut().set_columnar_wire(true);
    let first = timed(db);
    let rescan = (0..samples).map(|_| timed(db)).min().unwrap_or(u64::MAX);
    db.gdh_mut().set_columnar_wire(false);
    let _warmup = timed(db);
    let row_rescan = (0..samples).map(|_| timed(db)).min().unwrap_or(0);
    db.gdh_mut().set_columnar_wire(true);
    (first, rescan, row_rescan)
}

/// Measure one scan over both wires; returns `(columnar, row)`.
fn both_wires(
    db: &mut PrismaMachine,
    sql: &str,
    expect_rows: usize,
    iters: usize,
) -> (Measured, Measured) {
    db.gdh_mut().set_columnar_wire(true);
    let columnar = measure(db, sql, expect_rows, iters);
    db.gdh_mut().set_columnar_wire(false);
    let row = measure(db, sql, expect_rows, iters);
    db.gdh_mut().set_columnar_wire(true);
    (columnar, row)
}

fn reduction(row: &Measured, columnar: &Measured) -> f64 {
    row.remote_bytes as f64 / columnar.remote_bytes.max(1) as f64
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &std::path::Path,
    rows: usize,
    frags: usize,
    iters: usize,
    str_col: &Measured,
    str_row: &Measured,
    int_col: &Measured,
    int_row: &Measured,
    str_rescan: (u64, u64, u64),
    int_rescan: (u64, u64, u64),
) {
    let json = format!(
        "{{\n  \"experiment\": \"e11_wire\",\n  \"rows\": {rows},\n  \"fragments\": {frags},\n  \"iters\": {iters},\n  \"benches\": {{\n    \"str_scan_remote_bytes\": {{\"columnar\": {}, \"row\": {}, \"reduction\": {:.2}}},\n    \"int_scan_remote_bytes\": {{\"columnar\": {}, \"row\": {}, \"reduction\": {:.2}}},\n    \"str_scan_coord_recv_bytes\": {{\"columnar\": {}, \"row\": {}}},\n    \"int_scan_coord_recv_bytes\": {{\"columnar\": {}, \"row\": {}}},\n    \"str_scan_latency_us\": {{\"columnar\": {}, \"row\": {}}},\n    \"int_scan_latency_us\": {{\"columnar\": {}, \"row\": {}}},\n    \"str_scan_e2e_latency_us\": {{\"columnar\": {}, \"row\": {}}},\n    \"int_scan_e2e_latency_us\": {{\"columnar\": {}, \"row\": {}}},\n    \"str_rescan_latency_us\": {{\"columnar_first\": {}, \"columnar\": {}, \"row\": {}}},\n    \"int_rescan_latency_us\": {{\"columnar_first\": {}, \"columnar\": {}, \"row\": {}}}\n  }},\n  \"notes\": \"latency_us is in-process wall clock (the row wire ships tuple vectors by refcount bump and never serializes, so codec CPU only shows on the columnar side); e2e_latency_us adds the analytic cost model's interconnect transfer time for the bytes shipped at the configured link rate; rescan_latency_us shows the cached-wire-block effect — columnar_first pays sealing plus the encode, columnar re-ships each sealed chunk's cached block and must not lose to the row wire\"\n}}\n",
        str_col.remote_bytes,
        str_row.remote_bytes,
        reduction(str_row, str_col),
        int_col.remote_bytes,
        int_row.remote_bytes,
        reduction(int_row, int_col),
        str_col.coord_recv_bytes,
        str_row.coord_recv_bytes,
        int_col.coord_recv_bytes,
        int_row.coord_recv_bytes,
        str_col.latency_us,
        str_row.latency_us,
        int_col.latency_us,
        int_row.latency_us,
        str_col.e2e_us(),
        str_row.e2e_us(),
        int_col.e2e_us(),
        int_row.e2e_us(),
        str_rescan.0,
        str_rescan.1,
        str_rescan.2,
        int_rescan.0,
        int_rescan.1,
        int_rescan.2,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("[E11-wire] could not write {}: {e}", path.display());
    } else {
        eprintln!("[E11-wire] wrote {}", path.display());
    }
}

fn main() {
    let rows = env_usize("E11_ROWS", 30_000);
    let frags = env_usize("E11_FRAGS", 4);
    let iters = env_usize("E11_ITERS", 7);
    let enforce = std::env::var("E11_ENFORCE").is_ok_and(|v| v == "1");

    // A 256-row seal threshold keeps the unsealed delta tail small, so
    // the re-scan case measures the cached-block path, not the tail.
    let mut db = PrismaMachine::builder().pes(8).seal_rows(256).build().unwrap();

    // Str-heavy: one low-cardinality column (dictionary + RLE territory)
    // and one medium-cardinality column (dictionary), plus the key.
    db.sql(&format!(
        "CREATE TABLE ship_str (id INT, dept STRING, owner STRING) FRAGMENTED BY HASH(id) INTO {frags}"
    ))
    .unwrap();
    // Int-heavy: a dense sequential key (delta = 1 bitpacks to nothing)
    // and two small-domain columns.
    db.sql(&format!(
        "CREATE TABLE ship_int (a INT, b INT, c INT) FRAGMENTED BY HASH(a) INTO {frags}"
    ))
    .unwrap();
    const DEPTS: [&str; 8] = [
        "engineering",
        "sales",
        "operations",
        "research",
        "finance",
        "logistics",
        "support",
        "marketing",
    ];
    let txn = db.begin();
    for chunk in (0..rows as i64)
        .map(|i| {
            tuple![
                i,
                Value::Str(DEPTS[i as usize % DEPTS.len()].to_owned()),
                Value::Str(format!("owner-{:04}", i % 500))
            ]
        })
        .collect::<Vec<_>>()
        .chunks(5000)
    {
        db.gdh().insert(txn, "ship_str", chunk.to_vec()).unwrap();
    }
    for chunk in (0..rows as i64)
        .map(|i| tuple![i, i % 97, (i * 7) % 50])
        .collect::<Vec<_>>()
        .chunks(5000)
    {
        db.gdh().insert(txn, "ship_int", chunk.to_vec()).unwrap();
    }
    db.commit(txn).unwrap();
    db.refresh_stats("ship_str").unwrap();
    db.refresh_stats("ship_int").unwrap();

    // Re-scan case first, while the tables have never been scanned: the
    // cold columnar scan is what seals and fills the wire-block caches.
    let str_rescan = rescan_case(&mut db, "SELECT id, dept, owner FROM ship_str", rows, iters);
    let int_rescan = rescan_case(&mut db, "SELECT a, b, c FROM ship_int", rows, iters);

    let (str_col, str_row) = both_wires(
        &mut db,
        "SELECT id, dept, owner FROM ship_str",
        rows,
        iters,
    );
    let (int_col, int_row) = both_wires(&mut db, "SELECT a, b, c FROM ship_int", rows, iters);

    eprintln!(
        "[E11-wire:str] columnar {} B remote ({} B at coordinator, {} µs cpu, {} µs e2e) vs row {} B ({} B, {} µs cpu, {} µs e2e) — {:.2}x fewer bits",
        str_col.remote_bytes,
        str_col.coord_recv_bytes,
        str_col.latency_us,
        str_col.e2e_us(),
        str_row.remote_bytes,
        str_row.coord_recv_bytes,
        str_row.latency_us,
        str_row.e2e_us(),
        reduction(&str_row, &str_col),
    );
    eprintln!(
        "[E11-wire:int] columnar {} B remote ({} B at coordinator, {} µs cpu, {} µs e2e) vs row {} B ({} B, {} µs cpu, {} µs e2e) — {:.2}x fewer bits",
        int_col.remote_bytes,
        int_col.coord_recv_bytes,
        int_col.latency_us,
        int_col.e2e_us(),
        int_row.remote_bytes,
        int_row.coord_recv_bytes,
        int_row.latency_us,
        int_row.e2e_us(),
        reduction(&int_row, &int_col),
    );
    eprintln!(
        "[E11-wire:rescan] str first {} µs, cached {} µs vs row {} µs; int first {} µs, cached {} µs vs row {} µs",
        str_rescan.0, str_rescan.1, str_rescan.2, int_rescan.0, int_rescan.1, int_rescan.2,
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e11.json");
    write_json(
        &root, rows, frags, iters, &str_col, &str_row, &int_col, &int_row, str_rescan, int_rescan,
    );

    if enforce {
        let str_gain = reduction(&str_row, &str_col);
        assert!(
            str_gain >= 1.5,
            "columnar wire shipped only {str_gain:.2}x fewer bits on the Str-heavy scan (need >= 1.5x)"
        );
        assert!(
            int_col.remote_bytes < int_row.remote_bytes,
            "columnar wire did not reduce Int-heavy scan traffic: {} vs {} bytes",
            int_col.remote_bytes,
            int_row.remote_bytes
        );
        assert!(
            str_col.e2e_us() <= str_row.e2e_us(),
            "columnar wire lost end-to-end on the Str-heavy scan: {} vs {} µs",
            str_col.e2e_us(),
            str_row.e2e_us()
        );
        assert!(
            int_col.e2e_us() <= int_row.e2e_us(),
            "columnar wire lost end-to-end on the Int-heavy scan: {} vs {} µs",
            int_col.e2e_us(),
            int_row.e2e_us()
        );
        // "At par" allows a 10% floor-to-floor noise margin: the two
        // paths now do the same refcount-bump work and their measured
        // floors flip sign run to run on a loaded host.
        for (name, (first, cached, row)) in
            [("Str", str_rescan), ("Int", int_rescan)]
        {
            assert!(
                cached * 10 <= row * 11,
                "cached wire blocks did not close the {name} re-scan gap: {cached} vs {row} µs"
            );
            assert!(
                cached < first,
                "{name} re-scan not faster than the cold scan that built the caches: {cached} vs {first} µs"
            );
        }
    }
    db.shutdown();
}
