//! E7 — distributed commit and recovery (paper §2.2, §3.2).
//!
//! Measures (a) 2PC cost as the participant count grows (an update
//! touching 1 / 4 / 8 / 16 fragments) including the simulated disk time
//! forced at prepare/commit, and (b) crash-recovery replay time with and
//! without a bounding checkpoint.

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::workload::{accounts_rows, values_clause};
use prisma_core::{AllocationPolicy, MachineConfig, PrismaMachine};
use prisma_core::stable::DiskProfile;

fn machine(fragments: usize) -> PrismaMachine {
    let db = PrismaMachine::builder()
        .pes(16)
        .allocation(AllocationPolicy::LoadBalanced)
        .config(MachineConfig {
            num_pes: 16,
            disk_stride: 4,
            ..MachineConfig::default()
        })
        // Real-ish disks so prepare/commit forcing has a visible cost in
        // the simulated-ns numbers we print.
        .disk_profile(DiskProfile {
            seek_ns: 1_000_000,
            per_byte_ns: 100,
        })
        .build()
        .unwrap();
    db.sql(&format!(
        "CREATE TABLE accounts (id INT, branch INT, balance INT) \
         FRAGMENTED BY HASH(id) INTO {fragments}"
    ))
    .unwrap();
    db.sql(&format!(
        "INSERT INTO accounts VALUES {}",
        values_clause(&accounts_rows(512, 16, 100))
    ))
    .unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_commit_recovery");
    group.sample_size(10);

    // (a) 2PC vs participant count: the update touches every fragment.
    for fragments in [1usize, 4, 8, 16] {
        let db = machine(fragments);
        group.bench_function(format!("update_txn_2pc/{fragments}_participants"), |b| {
            b.iter(|| {
                db.sql("UPDATE accounts SET balance = balance + 1 WHERE branch = 3")
                    .unwrap()
            })
        });
        db.shutdown();
    }

    // (b) Recovery: replay the full log vs a checkpoint-bounded suffix.
    let db = machine(8);
    for _ in 0..50 {
        db.sql("UPDATE accounts SET balance = balance + 1 WHERE branch = 1")
            .unwrap();
    }
    group.bench_function("recovery/full_log_replay", |b| {
        b.iter(|| db.recover("accounts").unwrap())
    });
    db.checkpoint("accounts").unwrap();
    group.bench_function("recovery/after_checkpoint", |b| {
        b.iter(|| db.recover("accounts").unwrap())
    });
    // Verify integrity after all the recoveries.
    let total = db
        .query("SELECT SUM(balance) AS t FROM accounts")
        .unwrap()
        .tuples()[0]
        .get(0)
        .as_int()
        .unwrap();
    eprintln!("[E7] post-recovery total balance = {total} (512 accounts, deterministic)");
    db.shutdown();
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
