//! E3 — inter-query parallelism (paper §2.2).
//!
//! Claim: "evaluation of several queries and updates can be done in
//! parallel, except for accesses to the same copy of base fragments."
//! Measures a fixed batch of 16 read queries executed by 1 vs 4 client
//! threads over disjoint relations (should scale), and a batch of updates
//! against a single relation (strict 2PL serializes them).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::workload::{values_clause, wisconsin_rows};
use prisma_core::PrismaMachine;

fn setup() -> Arc<PrismaMachine> {
    let db = Arc::new(PrismaMachine::builder().pes(16).build().unwrap());
    for t in 0..4 {
        db.sql(&format!(
            "CREATE TABLE wisc{t} (unique1 INT, unique2 INT, two INT, ten INT, hundred INT, string4 STRING) \
             FRAGMENTED BY HASH(unique1) INTO 4"
        ))
        .unwrap();
        let data = wisconsin_rows(10_000, t as u64);
        for chunk in data.chunks(2000) {
            db.sql(&format!("INSERT INTO wisc{t} VALUES {}", values_clause(chunk)))
                .unwrap();
        }
        db.refresh_stats(&format!("wisc{t}")).unwrap();
    }
    db
}

fn run_batch(db: &Arc<PrismaMachine>, clients: usize, queries_per_client: usize) {
    let mut handles = Vec::new();
    for cidx in 0..clients {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let table = format!("wisc{cidx}");
            for _ in 0..queries_per_client {
                db.query(&format!(
                    "SELECT ten, COUNT(*) AS n FROM {table} WHERE two = 0 GROUP BY ten"
                ))
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let db = setup();
    let mut group = c.benchmark_group("e3_inter_query");
    group.sample_size(10);
    // 16 queries total in both configurations.
    group.bench_function("16_queries/1_client", |b| {
        b.iter(|| run_batch(&db, 1, 16))
    });
    group.bench_function("16_queries/4_clients_disjoint", |b| {
        b.iter(|| run_batch(&db, 4, 4))
    });
    // Updates to the SAME relation: 2PL serializes; expect no scaling.
    group.bench_function("8_updates/1_client_same_fragment", |b| {
        b.iter(|| {
            for _ in 0..8 {
                db.sql("UPDATE wisc0 SET hundred = hundred + 1 WHERE unique1 = 5")
                    .unwrap();
            }
        })
    });
    group.bench_function("8_updates/4_clients_same_fragment", |b| {
        b.iter(|| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let db = db.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..2 {
                        db.sql("UPDATE wisc0 SET hundred = hundred + 1 WHERE unique1 = 5")
                            .unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    group.finish();
    db.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
