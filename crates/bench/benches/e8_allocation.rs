//! E8 — data allocation and communication balance (paper §2.2, §3.1).
//!
//! "POOL-X supports explicit allocation of the dynamically created
//! processes onto processing elements. This allows for a proper balance
//! between storage, processing, and communication." Compares placement
//! policies by the communication they induce for a repeated
//! co-partitioned join: locality-aware placement puts joining fragments
//! on the same PEs, round-robin scatters them. Reported: wall time and
//! the ledger's bytes×hops.

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::workload::{values_clause, wisconsin_rows};
use prisma_core::{AllocationPolicy, PrismaMachine};

fn setup(policy: AllocationPolicy) -> PrismaMachine {
    let db = PrismaMachine::builder()
        .pes(16)
        .allocation(policy)
        .build()
        .unwrap();
    db.sql(
        "CREATE TABLE fact (unique1 INT, unique2 INT, two INT, ten INT, hundred INT, string4 STRING) \
         FRAGMENTED BY HASH(unique1) INTO 8",
    )
    .unwrap();
    let data = wisconsin_rows(20_000, 5);
    for chunk in data.chunks(2000) {
        db.sql(&format!("INSERT INTO fact VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    // Dimension table created second so LocalityAware can anchor on fact.
    let dim_schema = prisma_core::types::Schema::new(vec![
        prisma_core::types::Column::new("k", prisma_core::types::DataType::Int),
        prisma_core::types::Column::new("label", prisma_core::types::DataType::Str),
    ]);
    db.gdh()
        .create_table("dim", dim_schema, Some(0), 8, Some("fact"))
        .unwrap();
    let dim_rows: Vec<prisma_core::Tuple> = (0..100)
        .map(|i| prisma_core::types::tuple![i, format!("label{i}")])
        .collect();
    db.sql(&format!("INSERT INTO dim VALUES {}", values_clause(&dim_rows)))
        .unwrap();
    db.refresh_stats("fact").unwrap();
    db.refresh_stats("dim").unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_allocation");
    group.sample_size(10);
    for (name, policy) in [
        ("round_robin", AllocationPolicy::RoundRobin),
        ("load_balanced", AllocationPolicy::LoadBalanced),
        ("locality_aware", AllocationPolicy::LocalityAware),
    ] {
        let db = setup(policy);
        // One measured query to report the communication metric.
        db.gdh().ledger().reset();
        db.query(
            "SELECT d.label, COUNT(*) AS n FROM fact f, dim d \
             WHERE f.hundred = d.k GROUP BY d.label",
        )
        .unwrap();
        let ledger = db.gdh().ledger();
        eprintln!(
            "[E8:{name}] join query: {} remote msgs, {} remote bytes, {} byte-hops, est transfer {:.1} ms",
            ledger.remote_messages(),
            ledger.remote_bytes(),
            ledger.byte_hops(),
            ledger.est_transfer_ns() / 1e6,
        );
        group.bench_function(format!("broadcast_join/{name}"), |b| {
            b.iter(|| {
                db.query(
                    "SELECT d.label, COUNT(*) AS n FROM fact f, dim d \
                     WHERE f.hundred = d.k GROUP BY d.label",
                )
                .unwrap()
            })
        });
        db.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
