//! E8 — skew-aware shuffle placement vs probe-side round-robin.
//!
//! A grace join's phase-2 sites are chosen by the optimizer's shuffle
//! placement map. The historical policy assigned buckets round-robin
//! over the probe relation's fragments — blind to the fact that a
//! Zipf-skewed join key concentrates most rows in a few hash buckets, so
//! one site ends up receiving far more shuffle traffic than the rest
//! and the join waits on it. With per-fragment statistics the optimizer
//! knows the key's most-common values, maps each through the executor's
//! own bucket hash, and assigns buckets greedily to the least-loaded
//! site. This experiment joins a **Zipf(1.0)** build side against a
//! uniform probe side and measures the **max-site shuffle bits**
//! (`ExecMetrics::max_site_shuffled_bits`) under both policies —
//! the shuffle-balance win — plus join latency.
//! Records the trajectory in `BENCH_e8.json` at the repo root.
//!
//! Environment knobs (all optional):
//!
//! * `E8_PROBE_ROWS` — uniform probe rows (default 40000)
//! * `E8_BUILD_ROWS` — approximate Zipf build rows (default 30000)
//! * `E8_RANKS`      — distinct Zipf key ranks (default 400)
//! * `E8_FRAGS`      — fragments per relation (default 4)
//! * `E8_PARTS`      — shuffle bucket count (default 16)
//! * `E8_ITERS`      — timed samples per measurement (default 7)
//! * `E8_ENFORCE=1`  — exit non-zero unless the skew-aware placement
//!   moves fewer max-site shuffle bits than the round-robin baseline

use prisma_core::optimizer::PhysicalConfig;
use prisma_core::types::tuple;
use prisma_core::types::Tuple;
use prisma_core::PrismaMachine;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A Zipf(1.0)-distributed key multiset: rank `r` (1-based) appears
/// `⌈C/r⌉` times, `C` chosen so the total lands near `target_rows`.
/// Deterministic — no RNG, the distribution IS the data.
fn zipf_keys(target_rows: usize, ranks: usize) -> Vec<i64> {
    let harmonic: f64 = (1..=ranks).map(|r| 1.0 / r as f64).sum();
    let c = target_rows as f64 / harmonic;
    let mut keys = Vec::with_capacity(target_rows + ranks);
    for r in 1..=ranks {
        let count = (c / r as f64).ceil() as usize;
        keys.extend(std::iter::repeat_n(r as i64 - 1, count));
    }
    keys
}

#[derive(Clone, Copy, Default)]
struct Measured {
    /// Bits the busiest phase-2 site received over the direct shuffle.
    max_site_bits: u64,
    /// Total fragment→fragment shuffle bits.
    total_shuffle_bits: u64,
    /// Full join latency, µs.
    latency_us: u64,
    /// Join output rows (result sanity cross-check).
    rows: u64,
}

fn measure(db: &PrismaMachine, sql: &str, iters: usize) -> Measured {
    let run = || {
        let (rows, m) = db.query_with_metrics(sql).unwrap();
        assert!(m.partitioned_joins >= 1, "join did not take the grace path");
        Measured {
            max_site_bits: m.max_site_shuffled_bits,
            total_shuffle_bits: m.shuffled_direct_bits,
            latency_us: m.full_result_micros,
            rows: rows.len() as u64,
        }
    };
    let _warmup = run();
    let mut samples: Vec<Measured> = (0..iters.max(1)).map(|_| run()).collect();
    samples.sort_unstable_by_key(|s| s.latency_us);
    let median = samples[samples.len() / 2];
    // Byte counters are deterministic per plan; latency is the median.
    Measured {
        latency_us: median.latency_us,
        ..samples[0]
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &std::path::Path,
    probe_rows: usize,
    build_rows: usize,
    ranks: usize,
    parts: usize,
    iters: usize,
    skew_aware: &Measured,
    round_robin: &Measured,
) {
    let improvement = round_robin.max_site_bits as f64 / skew_aware.max_site_bits.max(1) as f64;
    let json = format!(
        "{{\n  \"experiment\": \"e8_skew\",\n  \"probe_rows\": {probe_rows},\n  \"build_rows\": {build_rows},\n  \"zipf_ranks\": {ranks},\n  \"zipf_s\": 1.0,\n  \"shuffle_parts\": {parts},\n  \"iters\": {iters},\n  \"benches\": {{\n    \"max_site_shuffle_bits\": {{\"skew_aware\": {}, \"round_robin\": {}, \"improvement\": {improvement:.2}}},\n    \"total_shuffle_bits\": {{\"skew_aware\": {}, \"round_robin\": {}}},\n    \"join_latency_us\": {{\"skew_aware\": {}, \"round_robin\": {}}}\n  }}\n}}\n",
        skew_aware.max_site_bits,
        round_robin.max_site_bits,
        skew_aware.total_shuffle_bits,
        round_robin.total_shuffle_bits,
        skew_aware.latency_us,
        round_robin.latency_us,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("[E8-skew] could not write {}: {e}", path.display());
    } else {
        eprintln!("[E8-skew] wrote {}", path.display());
    }
}

fn main() {
    let probe_rows = env_usize("E8_PROBE_ROWS", 40_000);
    let build_rows = env_usize("E8_BUILD_ROWS", 30_000);
    let ranks = env_usize("E8_RANKS", 400);
    let frags = env_usize("E8_FRAGS", 4);
    let parts = env_usize("E8_PARTS", 16);
    let iters = env_usize("E8_ITERS", 7);
    let enforce = std::env::var("E8_ENFORCE").is_ok_and(|v| v == "1");

    let mut db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql(&format!(
        "CREATE TABLE probe (k INT, v INT) FRAGMENTED BY HASH(v) INTO {frags}"
    ))
    .unwrap();
    db.sql(&format!(
        "CREATE TABLE build (k INT, v INT) FRAGMENTED BY HASH(v) INTO {frags}"
    ))
    .unwrap();
    let txn = db.begin();
    // Probe: uniform keys over the Zipf domain, so every build row joins.
    for chunk in (0..probe_rows as i64)
        .map(|i| tuple![i % ranks as i64, i])
        .collect::<Vec<_>>()
        .chunks(5000)
    {
        db.gdh().insert(txn, "probe", chunk.to_vec()).unwrap();
    }
    // Build: Zipf(1.0) keys — rank r appears ∝ 1/r.
    let rows: Vec<Tuple> = zipf_keys(build_rows, ranks)
        .into_iter()
        .enumerate()
        .map(|(i, k)| tuple![k, i as i64])
        .collect();
    for chunk in rows.chunks(5000) {
        db.gdh().insert(txn, "build", chunk.to_vec()).unwrap();
    }
    db.commit(txn).unwrap();
    // Per-fragment statistics: CollectStats → StatsReport → dictionary.
    // This is what tells the optimizer about the key skew.
    db.refresh_stats("probe").unwrap();
    db.refresh_stats("build").unwrap();

    let sql = "SELECT p.v, b.v FROM probe p, build b WHERE p.k = b.k";

    let skew_cfg = PhysicalConfig {
        broadcast_max_rows: 0.0, // force the grace path for the comparison
        shuffle_parts: Some(parts),
        skew_aware_placement: true,
    };
    let rr_cfg = PhysicalConfig {
        skew_aware_placement: false,
        ..skew_cfg
    };

    db.gdh_mut().set_physical_config(skew_cfg);
    let skew_aware = measure(&db, sql, iters);
    db.gdh_mut().set_physical_config(rr_cfg);
    let round_robin = measure(&db, sql, iters);

    assert_eq!(
        skew_aware.rows, round_robin.rows,
        "placement must not change the join result"
    );
    assert_eq!(
        skew_aware.total_shuffle_bits, round_robin.total_shuffle_bits,
        "placement moves the same rows, only to different sites"
    );

    eprintln!(
        "[E8-skew:skew-aware]  max-site {} bits of {} total shuffled, join in {} µs",
        skew_aware.max_site_bits, skew_aware.total_shuffle_bits, skew_aware.latency_us
    );
    eprintln!(
        "[E8-skew:round-robin] max-site {} bits of {} total shuffled, join in {} µs",
        round_robin.max_site_bits, round_robin.total_shuffle_bits, round_robin.latency_us
    );
    eprintln!(
        "[E8-skew] busiest site receives {:.2}x less with skew-aware placement",
        round_robin.max_site_bits as f64 / skew_aware.max_site_bits.max(1) as f64
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e8.json");
    write_json(
        &root,
        probe_rows,
        build_rows,
        ranks,
        parts,
        iters,
        &skew_aware,
        &round_robin,
    );

    if enforce {
        assert!(
            skew_aware.max_site_bits < round_robin.max_site_bits,
            "skew-aware placement did not reduce max-site shuffle bits: {} vs {}",
            skew_aware.max_site_bits,
            round_robin.max_site_bits
        );
    }
    db.shutdown();
}
