//! E2 — intra-query parallelism (paper §2.2, §2.4).
//!
//! Claim: fragment-parallel query processing scales with the number of
//! OFMs/PEs. Measures the same selection+aggregation query over a
//! Wisconsin-style relation fragmented 1/2/4/8 ways, plus a single-node
//! pipeline-vs-reference-evaluator comparison isolating the batch
//! executor's win on the operator hot path.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::relalg::{eval, execute_physical, lower, LogicalPlan, Relation};
use prisma_core::storage::expr::{CmpOp, ScalarExpr};
use prisma_core::workload::{values_clause, wisconsin_rows, wisconsin_schema};
use prisma_core::PrismaMachine;

fn setup(fragments: usize, rows: usize) -> PrismaMachine {
    let db = PrismaMachine::builder().pes(16).build().unwrap();
    db.sql(&format!(
        "CREATE TABLE wisc (unique1 INT, unique2 INT, two INT, ten INT, hundred INT, string4 STRING) \
         FRAGMENTED BY HASH(unique1) INTO {fragments}"
    ))
    .unwrap();
    let data = wisconsin_rows(rows, 42);
    for chunk in data.chunks(2000) {
        db.sql(&format!("INSERT INTO wisc VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    db.refresh_stats("wisc").unwrap();
    db
}

/// Batch pipeline vs. reference evaluator on one node: same plan, same
/// data, no distribution — isolates the per-operator cost (zero-copy
/// Arc scans + batched pipeline vs. materialize-everything evaluation).
fn bench_pipeline_vs_eval(c: &mut Criterion) {
    const ROWS: usize = 40_000;
    let schema = wisconsin_schema();
    let rel = Relation::new(schema.clone(), wisconsin_rows(ROWS, 7));
    let eval_db: HashMap<String, Relation> =
        [("wisc".to_owned(), rel.clone())].into_iter().collect();
    let exec_db: HashMap<String, Arc<Relation>> =
        [("wisc".to_owned(), Arc::new(rel))].into_iter().collect();
    // σ(two = 1) then π(unique2): the shape every fragment subplan takes.
    let plan = LogicalPlan::scan("wisc", schema)
        .select(ScalarExpr::cmp(
            CmpOp::Eq,
            ScalarExpr::col(2),
            ScalarExpr::lit(1),
        ))
        .project_cols(&[1])
        .unwrap();
    let physical = lower(&plan).unwrap();
    let mut group = c.benchmark_group("e2_intra_query");
    group.sample_size(10);
    group.bench_function("select_project_40k/batch_pipeline", |b| {
        b.iter(|| execute_physical(&physical, &exec_db).unwrap().len())
    });
    group.bench_function("select_project_40k/reference_eval", |b| {
        b.iter(|| eval(&plan, &eval_db).unwrap().len())
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    const ROWS: usize = 40_000;
    let mut group = c.benchmark_group("e2_intra_query");
    group.sample_size(10);
    for fragments in [1usize, 2, 4, 8] {
        let db = setup(fragments, ROWS);
        group.bench_function(format!("scan_agg_40k/{fragments}_fragments"), |b| {
            b.iter(|| {
                db.query(
                    "SELECT ten, COUNT(*) AS n, SUM(hundred) AS s FROM wisc \
                     WHERE two = 1 GROUP BY ten",
                )
                .unwrap()
            })
        });
        group.bench_function(format!("selective_scan_40k/{fragments}_fragments"), |b| {
            b.iter(|| {
                db.query("SELECT unique2 FROM wisc WHERE unique1 < 100").unwrap()
            })
        });
        db.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_vs_eval, bench);
criterion_main!(benches);
