//! E2 — intra-query parallelism (paper §2.2, §2.4).
//!
//! Claim: fragment-parallel query processing scales with the number of
//! OFMs/PEs. Measures the same selection+aggregation query over a
//! Wisconsin-style relation fragmented 1/2/4/8 ways.

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::workload::{values_clause, wisconsin_rows};
use prisma_core::PrismaMachine;

fn setup(fragments: usize, rows: usize) -> PrismaMachine {
    let db = PrismaMachine::builder().pes(16).build().unwrap();
    db.sql(&format!(
        "CREATE TABLE wisc (unique1 INT, unique2 INT, two INT, ten INT, hundred INT, string4 STRING) \
         FRAGMENTED BY HASH(unique1) INTO {fragments}"
    ))
    .unwrap();
    let data = wisconsin_rows(rows, 42);
    for chunk in data.chunks(2000) {
        db.sql(&format!("INSERT INTO wisc VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    db.refresh_stats("wisc").unwrap();
    db
}

fn bench(c: &mut Criterion) {
    const ROWS: usize = 40_000;
    let mut group = c.benchmark_group("e2_intra_query");
    group.sample_size(10);
    for fragments in [1usize, 2, 4, 8] {
        let db = setup(fragments, ROWS);
        group.bench_function(format!("scan_agg_40k/{fragments}_fragments"), |b| {
            b.iter(|| {
                db.query(
                    "SELECT ten, COUNT(*) AS n, SUM(hundred) AS s FROM wisc \
                     WHERE two = 1 GROUP BY ten",
                )
                .unwrap()
            })
        });
        group.bench_function(format!("selective_scan_40k/{fragments}_fragments"), |b| {
            b.iter(|| {
                db.query("SELECT unique2 FROM wisc WHERE unique1 < 100").unwrap()
            })
        });
        db.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
