//! E10 — mid-query failover: a PE is killed in the middle of a
//! hash-partitioned (grace) join and the query completes against the
//! dead PE's backup replicas.
//!
//! Every fragment has a backup replica on a distinct PE, kept in sync by
//! log-record shipping over the GDH stream protocol (`ReplicaAppend` /
//! `ReplicaAck`; 2PC commits only after the backup acks). When the
//! coordinator's reply deadline fires, the data dictionary promotes each
//! dead primary's backup, the lost streams are retired (stale chunks are
//! rejected by `StreamReassembly`) and **only** the lost fragments' work
//! is re-issued — completed streams are kept, and the merged result is
//! bit-identical to the fault-free run (asserted every iteration).
//!
//! Reported per run:
//!
//! * baseline and failover wall latency for the same join — their
//!   difference is the **recovery time**, dominated by the reply
//!   deadline (`timeout_ms`) plus the replay of the lost streams;
//! * `streams_rerequested` vs `streams_total` — the fraction of the
//!   fan-out that had to be recomputed (a full restart would be 1.0,
//!   and the point of per-stream failover is staying below it when the
//!   machine is larger than the blast radius);
//! * `failovers` — backup promotions recorded by the dictionary.
//!
//! The fault script is seeded and deterministic: kill one PE at its 3rd
//! delivered message after the join starts (`E10_SEED` varies the tie-
//! breaking RNG, not the script).
//!
//! Environment knobs (all optional):
//!
//! * `E10_ROWS`      — emp rows (default 2000)
//! * `E10_ITERS`     — timed samples per measurement (default 3)
//! * `E10_SEED`      — injector seed (default 20260807)
//! * `E10_ENFORCE=1` — exit non-zero unless recovery completed within
//!   2.5 reply deadlines of the baseline and fewer than all streams
//!   were re-requested per recovery round

use prisma_core::faultx::{FaultInjector, FaultSpec};
use prisma_core::gdh::exec::ExecMetrics;
use prisma_core::optimizer::PhysicalConfig;
use prisma_core::stable::DiskProfile;
use prisma_core::types::{MachineConfig, PeId, TopologyKind};
use prisma_core::{AllocationPolicy, GlobalDataHandler, Relation};

const TIMEOUT_SECS: u64 = 1;
const VICTIM_PE: u32 = 2;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn boot() -> GlobalDataHandler {
    let cfg = MachineConfig {
        num_pes: 4,
        topology: TopologyKind::Mesh,
        ..MachineConfig::default()
    }
    .with_reply_timeout_secs(TIMEOUT_SECS);
    let mut gdh =
        GlobalDataHandler::boot(cfg, AllocationPolicy::LoadBalanced, DiskProfile::instant())
            .unwrap();
    // Force the grace path: it has the most mid-flight state to lose.
    gdh.set_physical_config(PhysicalConfig {
        broadcast_max_rows: 0.0,
        ..PhysicalConfig::default()
    });
    gdh
}

fn load(gdh: &GlobalDataHandler, rows: u64) {
    gdh.execute_sql(
        "CREATE TABLE emp (id INT, dept INT, sal DOUBLE) FRAGMENTED BY HASH(id) INTO 4",
    )
    .unwrap();
    gdh.execute_sql("CREATE TABLE dept (id INT, name STRING) FRAGMENTED BY HASH(id) INTO 2")
        .unwrap();
    let mut values = String::new();
    for i in 0..rows {
        if i > 0 {
            values.push(',');
        }
        values.push_str(&format!("({i}, {}, {}.0)", i % 20, 100 + i % 1000));
    }
    gdh.execute_sql(&format!("INSERT INTO emp VALUES {values}"))
        .unwrap();
    let depts: Vec<String> = (0..20).map(|d| format!("({d}, 'd{d}')")).collect();
    gdh.execute_sql(&format!("INSERT INTO dept VALUES {}", depts.join(",")))
        .unwrap();
    gdh.refresh_stats("emp").unwrap();
    gdh.refresh_stats("dept").unwrap();
}

const JOIN: &str = "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id ORDER BY e.id";

/// One measured run: wall µs plus the executor's recovery counters.
struct Sample {
    wall_us: u64,
    rows: Relation,
    metrics: ExecMetrics,
}

fn run(gdh: &GlobalDataHandler) -> Sample {
    let t0 = std::time::Instant::now();
    let (rows, metrics) = gdh.query_sql_with_metrics(JOIN).unwrap();
    Sample {
        wall_us: t0.elapsed().as_micros() as u64,
        rows,
        metrics,
    }
}

fn main() {
    let rows = env_u64("E10_ROWS", 2000);
    let iters = env_u64("E10_ITERS", 3).max(1);
    let seed = env_u64("E10_SEED", 20_260_807);
    let enforce = std::env::var("E10_ENFORCE").is_ok_and(|v| v == "1");

    // Baseline: the fault-free join (median of `iters` on one machine).
    let gdh = boot();
    load(&gdh, rows);
    let oracle = run(&gdh);
    let mut base_walls: Vec<u64> = (0..iters).map(|_| run(&gdh).wall_us).collect();
    base_walls.sort_unstable();
    let base_us = base_walls[base_walls.len() / 2];
    gdh.shutdown();

    // Failover: each sample needs a fresh machine (the killed PE stays
    // dead), scripted to kill one PE three messages into the join.
    let mut fail_samples = Vec::new();
    for i in 0..iters {
        let faults = FaultInjector::scripted(seed + i, vec![]);
        let mut gdh = boot();
        gdh.set_fault_injector(faults.clone());
        load(&gdh, rows);
        faults.script(vec![FaultSpec::KillPeAtMessage {
            pe: PeId(VICTIM_PE),
            at: faults.messages_seen(PeId(VICTIM_PE)) + 3,
        }]);
        let s = run(&gdh);
        assert_eq!(
            s.rows.tuples(),
            oracle.rows.tuples(),
            "recovered result diverged from the fault-free oracle"
        );
        assert!(
            s.metrics.failovers >= 1,
            "no backup promotion recorded: {:?}",
            s.metrics
        );
        assert!(
            faults.events().iter().any(|e| e.contains("kill")),
            "scripted kill never fired: {:?}",
            faults.events()
        );
        gdh.shutdown();
        fail_samples.push(s);
    }
    fail_samples.sort_unstable_by_key(|s| s.wall_us);
    let med = &fail_samples[fail_samples.len() / 2];
    let recovery_ms = med.wall_us.saturating_sub(base_us) / 1_000;
    // The initial fan-out's reply streams (phase-2 site installs).
    let streams_total = med.metrics.fragment_tasks;
    let rerequested = med.metrics.streams_rerequested;

    eprintln!(
        "[E10-failover] baseline {} µs, with kill+failover {} µs (recovery {} ms over a {} ms deadline)",
        base_us,
        med.wall_us,
        recovery_ms,
        TIMEOUT_SECS * 1000
    );
    eprintln!(
        "[E10-failover] {} of {} stream(s) re-requested, {} backup promotion(s), result bit-identical to oracle",
        rerequested, streams_total, med.metrics.failovers
    );

    let json = format!(
        "{{\n  \"experiment\": \"e10_failover\",\n  \"pes\": 4,\n  \"victim_pe\": {VICTIM_PE},\n  \"rows\": {rows},\n  \"iters\": {iters},\n  \"seed\": {seed},\n  \"timeout_ms\": {},\n  \"baseline_wall_us\": {base_us},\n  \"failover_wall_us\": {},\n  \"recovery_ms\": {recovery_ms},\n  \"streams_total\": {streams_total},\n  \"streams_rerequested\": {rerequested},\n  \"failovers\": {},\n  \"result_bit_identical\": true\n}}\n",
        TIMEOUT_SECS * 1000,
        med.wall_us,
        med.metrics.failovers,
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e10.json");
    if let Err(e) = std::fs::write(&root, json) {
        eprintln!("[E10-failover] could not write {}: {e}", root.display());
    } else {
        eprintln!("[E10-failover] wrote {}", root.display());
    }

    if enforce {
        let budget_us = base_us + TIMEOUT_SECS * 2_500_000;
        assert!(
            med.wall_us <= budget_us,
            "recovery too slow: {} µs against a {} µs budget (2.5 deadlines)",
            med.wall_us,
            budget_us
        );
        // Per-stream failover, not a restart: across both recovery
        // rounds the re-requested streams must stay below re-running
        // the whole fan-out twice.
        assert!(
            rerequested < streams_total * 2,
            "re-requested {rerequested} of {streams_total} streams — failover degenerated into restarts"
        );
    }
}
