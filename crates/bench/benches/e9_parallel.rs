//! E9 — morsel-driven intra-fragment parallelism: scan and join scaling
//! from 1 to N workers on a single 100k-row fragment.
//!
//! A fragment's operator tree splits into `BATCH_SIZE`-row morsels
//! dispatched to the PE's work-stealing worker pool
//! (`prisma_poolx::WorkerPool`). This experiment runs two
//! compute-heavy workloads — a scan→filter→project pipeline and a hash
//! join (parallel build + parallel probe) — at 1, 2 and 4 workers and
//! records how the work scales.
//!
//! ## Methodology: modeled speedup, not wall clock
//!
//! CI containers for this repo expose a single hardware core, so the
//! parallel runs time-slice on one CPU and wall clock cannot show a
//! speedup no matter how well the morsels balance. The pool therefore
//! meters **per-worker busy nanoseconds** (`PoolStats::busy_nanos`),
//! and the scaling figure reported here is
//!
//! ```text
//! modeled_speedup(w) = busy_total(1 worker) / busy_max(w workers)
//! ```
//!
//! i.e. the one-worker run's total compute divided by the w-worker
//! run's **critical path** (its slowest worker). On a machine with at
//! least `w` free cores this IS the wall-clock speedup: every worker
//! runs on its own core, so elapsed time is the busiest worker's busy
//! time. On fewer cores it is the speedup the schedule *would* achieve
//! — and it still honestly measures the two things morsel parallelism
//! can get wrong: work inflation (numerator uses the 1-worker pooled
//! run, so per-morsel overhead is charged to both sides) and load
//! imbalance (a straggler worker stretches `busy_max` and drags the
//! ratio down; work stealing is what keeps it near `busy_total / w`).
//! Wall-clock latency and the host's core count are recorded alongside
//! so the numbers can be re-read on wider hardware.
//!
//! Every pooled run is cross-checked row-for-row against the serial
//! (no-pool) execution of the same plan.
//!
//! Environment knobs (all optional):
//!
//! * `E9_ROWS`       — probe/scan fragment rows (default 100000)
//! * `E9_BUILD_ROWS` — hash-join build side rows (default 10000)
//! * `E9_ITERS`      — timed samples per measurement (default 5)
//! * `E9_ENFORCE=1`  — exit non-zero unless both workloads reach a
//!   modeled speedup of ≥ 1.3 at 2 workers (the CI floor; the full
//!   target is ≥ 1.8 at 4 workers, which is also asserted under
//!   enforce)

use std::collections::HashMap;
use std::sync::Arc;

use prisma_core::poolx::WorkerPool;
use prisma_core::relalg::{
    lower, open_batches_pooled, Batch, LogicalPlan, Relation,
};
use prisma_core::storage::expr::{CmpOp, ScalarExpr};
use prisma_core::types::{tuple, Column, DataType, Schema, Tuple};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured execution at a fixed worker count.
#[derive(Clone, Copy, Default)]
struct Measured {
    /// Median wall-clock latency, µs.
    wall_us: u64,
    /// Total busy time across workers for the median run, µs.
    busy_total_us: u64,
    /// Critical path (slowest worker's busy time) for the median run, µs.
    busy_max_us: u64,
    /// Morsels dispatched in the median run.
    morsels: u64,
    /// Tasks stolen in the median run.
    steals: u64,
}

type Db = HashMap<String, Arc<Relation>>;

/// Run `plan` to completion, returning the flat tuple stream.
fn run_once(
    plan: &prisma_core::relalg::PhysicalPlan,
    db: &Db,
    pool: Option<&Arc<WorkerPool>>,
) -> Vec<Tuple> {
    open_batches_pooled(plan, db, pool.map(Arc::clone))
        .unwrap()
        .drain()
        .unwrap()
        .into_iter()
        .flat_map(Batch::into_tuples)
        .collect()
}

/// Warm up once, then take `iters` timed samples; report the median run
/// by wall clock together with that run's pool-counter deltas.
fn measure(
    plan: &prisma_core::relalg::PhysicalPlan,
    db: &Db,
    workers: usize,
    iters: usize,
    expected: &[Tuple],
) -> Measured {
    let pool = WorkerPool::new(workers);
    let _warmup = run_once(plan, db, Some(&pool));
    let mut samples = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let before = pool.stats();
        let t0 = std::time::Instant::now();
        let rows = run_once(plan, db, Some(&pool));
        let wall_us = t0.elapsed().as_micros() as u64;
        let after = pool.stats();
        assert_eq!(rows, expected, "pooled output diverged at {workers} workers");
        let busy: Vec<u64> = after
            .busy_nanos
            .iter()
            .zip(&before.busy_nanos)
            .map(|(a, b)| a - b)
            .collect();
        samples.push(Measured {
            wall_us,
            busy_total_us: busy.iter().sum::<u64>() / 1_000,
            busy_max_us: busy.iter().copied().max().unwrap_or(0) / 1_000,
            morsels: after.morsels - before.morsels,
            steals: after.steals - before.steals,
        });
    }
    samples.sort_unstable_by_key(|s| s.wall_us);
    samples[samples.len() / 2]
}

fn fmt_workload(name: &str, runs: &[(usize, Measured)], speedup: impl Fn(usize) -> f64) -> String {
    let per_worker: Vec<String> = runs
        .iter()
        .map(|&(w, m)| {
            format!(
                "      \"w{w}\": {{\"wall_us\": {}, \"busy_total_us\": {}, \"busy_max_us\": {}, \"morsels\": {}, \"steals\": {}, \"modeled_speedup\": {:.2}}}",
                m.wall_us, m.busy_total_us, m.busy_max_us, m.morsels, m.steals, speedup(w)
            )
        })
        .collect();
    format!("    \"{name}\": {{\n{}\n    }}", per_worker.join(",\n"))
}

fn main() {
    let rows = env_usize("E9_ROWS", 100_000);
    let build_rows = env_usize("E9_BUILD_ROWS", 10_000);
    let iters = env_usize("E9_ITERS", 5);
    let enforce = std::env::var("E9_ENFORCE").is_ok_and(|v| v == "1");
    let worker_counts = [1usize, 2, 4];

    // One 100k-row fragment: (k, g, x) with a join key cycling over the
    // build domain, a 7-ary group column and a float filter column.
    let frag = Relation::new(
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("g", DataType::Int),
            Column::new("x", DataType::Double),
        ]),
        (0..rows as i64)
            .map(|i| tuple![i % build_rows as i64, i % 7, (i % 1000) as f64])
            .collect(),
    );
    let build = Relation::new(
        Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]),
        (0..build_rows as i64).map(|i| tuple![i, i * 10]).collect(),
    );
    let mut db: Db = HashMap::new();
    db.insert("frag".to_owned(), Arc::new(frag));
    db.insert("build".to_owned(), Arc::new(build));

    let frag_scan = || LogicalPlan::scan("frag", db["frag"].schema().clone());
    let workloads = [
        (
            "scan_filter_project",
            frag_scan()
                .select(ScalarExpr::cmp(
                    CmpOp::Lt,
                    ScalarExpr::col(2),
                    ScalarExpr::lit(500.0),
                ))
                .project_cols(&[0, 1])
                .unwrap(),
        ),
        (
            "join_build_probe",
            frag_scan().join(
                LogicalPlan::scan("build", db["build"].schema().clone()),
                vec![(0, 0)],
            ),
        ),
    ];

    let mut json_sections = Vec::new();
    let mut floors_2w = Vec::new();
    let mut targets_4w = Vec::new();
    for (name, plan) in &workloads {
        let phys = lower(plan).unwrap();
        // Serial (no pool) reference output — the correctness oracle.
        let serial = run_once(&phys, &db, None);
        let runs: Vec<(usize, Measured)> = worker_counts
            .iter()
            .map(|&w| (w, measure(&phys, &db, w, iters, &serial)))
            .collect();
        let one_worker_busy = runs[0].1.busy_total_us;
        let speedup = |w: usize| {
            let m = runs.iter().find(|&&(rw, _)| rw == w).unwrap().1;
            one_worker_busy as f64 / m.busy_max_us.max(1) as f64
        };
        for &(w, m) in &runs {
            eprintln!(
                "[E9-parallel:{name}] {w} worker(s): wall {} µs, busy {} µs (crit {} µs), {} morsels, {} steals, modeled speedup {:.2}x",
                m.wall_us, m.busy_total_us, m.busy_max_us, m.morsels, m.steals, speedup(w)
            );
        }
        floors_2w.push((name, speedup(2)));
        targets_4w.push((name, speedup(4)));
        json_sections.push(fmt_workload(name, &runs, speedup));
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"experiment\": \"e9_parallel\",\n  \"rows\": {rows},\n  \"build_rows\": {build_rows},\n  \"iters\": {iters},\n  \"host_cores\": {cores},\n  \"methodology\": \"modeled_speedup = busy_total(1 worker) / busy_max(N workers); equals wall-clock speedup when cores >= workers, measures work inflation and steal balance regardless of core count\",\n  \"benches\": {{\n{}\n  }}\n}}\n",
        json_sections.join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e9.json");
    if let Err(e) = std::fs::write(&root, json) {
        eprintln!("[E9-parallel] could not write {}: {e}", root.display());
    } else {
        eprintln!("[E9-parallel] wrote {}", root.display());
    }

    if enforce {
        for (name, s) in floors_2w {
            assert!(
                s >= 1.3,
                "{name}: modeled speedup at 2 workers below the 1.3x CI floor: {s:.2}x"
            );
        }
        for (name, s) in targets_4w {
            assert!(
                s >= 1.8,
                "{name}: modeled speedup at 4 workers below the 1.8x target: {s:.2}x"
            );
        }
    }
}
