//! E7 — direct fragment→fragment shuffle vs coordinator-relayed buckets.
//!
//! PRISMA's design point: the coordinator orchestrates a partitioned
//! (grace) join but never relays tuples — each fragment ships every hash
//! bucket straight to the phase-2 site that owns it. This experiment
//! measures what that buys on a two-sided partitioned join: the bytes
//! transiting the coordinator PE (ledger `pe_bytes(COORDINATOR_PE)`),
//! the executor's own relay metering (`ExecMetrics::relayed_bits`, which
//! must drop to 0 — orchestration messages only — with direct shuffle),
//! the directly-shuffled volume (`shuffled_direct_bits` /
//! `relay_bits_saved`), and the join latency. The baseline is the same
//! join with `set_streaming(false)`: buckets stream to the coordinator
//! as `PartitionChunk`s and are re-shipped to the sites.
//! Records the trajectory in `BENCH_e7.json` at the repo root.
//!
//! Environment knobs (all optional):
//!
//! * `E7_LROWS`   — left relation rows (default 40000)
//! * `E7_RROWS`   — right relation rows (default 30000)
//! * `E7_LFRAGS`  — left fragment count (default 4)
//! * `E7_RFRAGS`  — right fragment count (default 3)
//! * `E7_ITERS`   — timed samples per measurement (default 9)
//! * `E7_ENFORCE=1` — exit non-zero unless direct shuffle relays zero
//!   bucket bits through the coordinator and moves fewer coordinator
//!   bytes than the relay baseline

use prisma_core::poolx::COORDINATOR_PE;
use prisma_core::types::tuple;
use prisma_core::PrismaMachine;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, Default)]
struct Measured {
    /// Remote bytes the coordinator PE sent during the join.
    coord_sent_bytes: u64,
    /// Remote bytes the coordinator PE received during the join.
    coord_recv_bytes: u64,
    /// Bucket payload bits the coordinator relayed (executor metering).
    relayed_bits: u64,
    /// Bits moved fragment→fragment by the direct shuffle.
    shuffled_direct_bits: u64,
    /// Coordinator bits the direct shuffle avoided (2× the direct hop).
    relay_bits_saved: u64,
    /// Full join latency, µs.
    latency_us: u64,
}

fn measure(db: &PrismaMachine, sql: &str, iters: usize) -> Measured {
    let run = || {
        db.gdh().ledger().reset();
        let (rows, m) = db.query_with_metrics(sql).unwrap();
        assert!(!rows.is_empty(), "join produced nothing");
        let (sent, recv) = db.gdh().ledger().pe_bytes(COORDINATOR_PE);
        Measured {
            coord_sent_bytes: sent,
            coord_recv_bytes: recv,
            relayed_bits: m.relayed_bits,
            shuffled_direct_bits: m.shuffled_direct_bits,
            relay_bits_saved: m.relay_bits_saved,
            latency_us: m.full_result_micros,
        }
    };
    let _warmup = run();
    let mut samples: Vec<Measured> = (0..iters.max(1)).map(|_| run()).collect();
    samples.sort_unstable_by_key(|s| s.latency_us);
    let median = samples[samples.len() / 2];
    // Byte counters are deterministic per plan; latency is the median.
    Measured {
        latency_us: median.latency_us,
        ..samples[0]
    }
}

fn write_json(
    path: &std::path::Path,
    lrows: usize,
    rrows: usize,
    iters: usize,
    direct: &Measured,
    relayed: &Measured,
) {
    let coord_total = |m: &Measured| m.coord_sent_bytes + m.coord_recv_bytes;
    let reduction = coord_total(relayed) as f64 / coord_total(direct).max(1) as f64;
    let json = format!(
        "{{\n  \"experiment\": \"e7_shuffle\",\n  \"left_rows\": {lrows},\n  \"right_rows\": {rrows},\n  \"iters\": {iters},\n  \"benches\": {{\n    \"coordinator_bytes\": {{\"direct\": {}, \"relayed\": {}, \"reduction\": {reduction:.2}}},\n    \"relayed_bucket_bits\": {{\"direct\": {}, \"relayed\": {}}},\n    \"shuffled_direct_bits\": {},\n    \"relay_bits_saved\": {},\n    \"join_latency_us\": {{\"direct\": {}, \"relayed\": {}}}\n  }}\n}}\n",
        coord_total(direct),
        coord_total(relayed),
        direct.relayed_bits,
        relayed.relayed_bits,
        direct.shuffled_direct_bits,
        direct.relay_bits_saved,
        direct.latency_us,
        relayed.latency_us,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("[E7-shuffle] could not write {}: {e}", path.display());
    } else {
        eprintln!("[E7-shuffle] wrote {}", path.display());
    }
}

fn main() {
    let lrows = env_usize("E7_LROWS", 40_000);
    let rrows = env_usize("E7_RROWS", 30_000);
    let lfrags = env_usize("E7_LFRAGS", 4);
    let rfrags = env_usize("E7_RFRAGS", 3);
    let iters = env_usize("E7_ITERS", 9);
    let enforce = std::env::var("E7_ENFORCE").is_ok_and(|v| v == "1");

    let mut db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql(&format!(
        "CREATE TABLE big_l (k INT, v INT) FRAGMENTED BY HASH(k) INTO {lfrags}"
    ))
    .unwrap();
    db.sql(&format!(
        "CREATE TABLE big_r (k INT, v INT) FRAGMENTED BY HASH(v) INTO {rfrags}"
    ))
    .unwrap();
    let txn = db.begin();
    for chunk in (0..lrows as i64)
        .map(|i| tuple![i, i % 97])
        .collect::<Vec<_>>()
        .chunks(5000)
    {
        db.gdh().insert(txn, "big_l", chunk.to_vec()).unwrap();
    }
    for chunk in (0..rrows as i64)
        .map(|i| tuple![i, i % 89])
        .collect::<Vec<_>>()
        .chunks(5000)
    {
        db.gdh().insert(txn, "big_r", chunk.to_vec()).unwrap();
    }
    db.commit(txn).unwrap();
    db.refresh_stats("big_l").unwrap();
    db.refresh_stats("big_r").unwrap();

    // Both sides far above the broadcast threshold: the optimizer picks
    // the hash-partitioned (grace) strategy and emits a shuffle
    // placement map.
    let sql = "SELECT l.v, r.v FROM big_l l, big_r r WHERE l.k = r.k";

    let direct = measure(&db, sql, iters);
    assert!(
        direct.shuffled_direct_bits > 0,
        "join did not take the partitioned path"
    );
    db.gdh_mut().set_streaming(false);
    let relayed = measure(&db, sql, iters);
    db.gdh_mut().set_streaming(true);

    eprintln!(
        "[E7-shuffle:direct]  coordinator {} B sent / {} B recv, {} bucket bits relayed, \
         {} bits shuffled fragment→fragment, join in {} µs",
        direct.coord_sent_bytes,
        direct.coord_recv_bytes,
        direct.relayed_bits,
        direct.shuffled_direct_bits,
        direct.latency_us
    );
    eprintln!(
        "[E7-shuffle:relayed] coordinator {} B sent / {} B recv, {} bucket bits relayed, \
         join in {} µs",
        relayed.coord_sent_bytes, relayed.coord_recv_bytes, relayed.relayed_bits, relayed.latency_us
    );
    let coord_total = |m: &Measured| m.coord_sent_bytes + m.coord_recv_bytes;
    eprintln!(
        "[E7-shuffle] coordinator traffic: {:.2}x less with direct shuffle",
        coord_total(&relayed) as f64 / coord_total(&direct).max(1) as f64
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e7.json");
    write_json(&root, lrows, rrows, iters, &direct, &relayed);

    if enforce {
        assert_eq!(
            direct.relayed_bits, 0,
            "direct shuffle relayed bucket payload through the coordinator"
        );
        assert!(
            relayed.relayed_bits > 0,
            "baseline relayed nothing — the comparison is vacuous"
        );
        assert!(
            coord_total(&direct) < coord_total(&relayed),
            "direct shuffle did not reduce coordinator traffic: {} vs {} bytes",
            coord_total(&direct),
            coord_total(&relayed)
        );
    }
    db.shutdown();
}
