//! E9 — the knowledge-based optimizer's rule families (paper §2.4).
//!
//! Ablates the rule groups one by one on a 3-way join with selections and
//! a shared subexpression: all rules on, pushdown off, join ordering off,
//! everything off. The executor's CSE memo is exercised by a UNION with
//! two identical branches.

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::optimizer::OptimizerConfig;
use prisma_core::workload::{values_clause, wisconsin_rows};
use prisma_core::PrismaMachine;

const JOIN_SQL: &str = "SELECT b.unique2, s.label FROM big b, mid m, small s \
     WHERE b.hundred = m.k AND m.tag = s.k AND b.unique1 < 2000 AND s.k < 5";

const CSE_SQL: &str = "SELECT unique2 FROM big WHERE hundred = 7 AND two = 1 \
     UNION ALL SELECT unique2 FROM big WHERE hundred = 7 AND two = 1";

fn setup() -> PrismaMachine {
    let db = PrismaMachine::builder().pes(16).build().unwrap();
    db.sql(
        "CREATE TABLE big (unique1 INT, unique2 INT, two INT, ten INT, hundred INT, string4 STRING) \
         FRAGMENTED BY HASH(unique1) INTO 8",
    )
    .unwrap();
    for chunk in wisconsin_rows(20_000, 1).chunks(2000) {
        db.sql(&format!("INSERT INTO big VALUES {}", values_clause(chunk)))
            .unwrap();
    }
    db.sql("CREATE TABLE mid (k INT, tag INT) FRAGMENTED BY HASH(k) INTO 4")
        .unwrap();
    let mid: Vec<prisma_core::Tuple> = (0..100)
        .map(|i| prisma_core::types::tuple![i, i % 10])
        .collect();
    db.sql(&format!("INSERT INTO mid VALUES {}", values_clause(&mid)))
        .unwrap();
    db.sql("CREATE TABLE small (k INT, label STRING) FRAGMENTED INTO 2")
        .unwrap();
    let small: Vec<prisma_core::Tuple> = (0..10)
        .map(|i| prisma_core::types::tuple![i, format!("s{i}")])
        .collect();
    db.sql(&format!("INSERT INTO small VALUES {}", values_clause(&small)))
        .unwrap();
    for t in ["big", "mid", "small"] {
        db.refresh_stats(t).unwrap();
    }
    db
}

fn bench(c: &mut Criterion) {
    let configs: Vec<(&str, OptimizerConfig)> = vec![
        ("all_rules", OptimizerConfig::default()),
        (
            "no_pushdown",
            OptimizerConfig {
                pushdown: false,
                ..OptimizerConfig::default()
            },
        ),
        (
            "no_join_order",
            OptimizerConfig {
                join_order: false,
                ..OptimizerConfig::default()
            },
        ),
        (
            "no_prune",
            OptimizerConfig {
                prune: false,
                ..OptimizerConfig::default()
            },
        ),
        ("all_disabled", OptimizerConfig::disabled()),
    ];
    let mut group = c.benchmark_group("e9_optimizer");
    group.sample_size(10);
    for (name, cfg) in configs {
        let mut db = setup();
        db.gdh_mut().set_optimizer_config(cfg);
        // Correctness across configurations.
        let rows = db.query(JOIN_SQL).unwrap();
        eprintln!("[E9:{name}] join query returns {} rows", rows.len());
        group.bench_function(format!("three_way_join/{name}"), |b| {
            b.iter(|| db.query(JOIN_SQL).unwrap())
        });
        group.bench_function(format!("shared_subexpr_union/{name}"), |b| {
            b.iter(|| db.query(CSE_SQL).unwrap())
        });
        db.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
