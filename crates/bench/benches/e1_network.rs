//! E1 — interconnect throughput (paper §3.2).
//!
//! Reproduces: "an average network throughput of up to 20.000 packets (of
//! 256 bits) per second for each processing element simultaneously."
//! Prints the offered-vs-delivered curve for mesh and chordal ring, and
//! criterion-measures the simulator itself at a fixed load.

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::multicomputer::traffic::{inject_open_loop, throughput_sweep, TrafficPattern};
use prisma_core::multicomputer::NetworkSim;
use prisma_core::types::{MachineConfig, TopologyKind};

fn print_sweep() {
    for (label, topo) in [
        ("mesh-8x8", TopologyKind::Mesh),
        ("chordal-ring-s8", TopologyKind::ChordalRing { stride: 8 }),
    ] {
        let cfg = MachineConfig::paper_prototype().with_topology(topo);
        let rates = [5_000.0, 10_000.0, 15_000.0, 20_000.0, 30_000.0, 40_000.0];
        let pts = throughput_sweep(&cfg, TrafficPattern::UniformRandom, &rates, 10, 40, 42);
        eprintln!("[E1:{label}] offered_pps_per_pe -> delivered_pps_per_pe (latency µs)");
        let mut peak: f64 = 0.0;
        for p in &pts {
            peak = peak.max(p.delivered_pps);
            eprintln!(
                "[E1:{label}]   {:>7.0} -> {:>7.0}  ({:.1})",
                p.offered_pps, p.delivered_pps, p.mean_latency_us
            );
        }
        eprintln!("[E1:{label}] saturation ≈ {peak:.0} pps/PE (paper: up to 20000)");
    }
}

fn bench(c: &mut Criterion) {
    print_sweep();
    let mut group = c.benchmark_group("e1_network");
    group.sample_size(10);
    for (label, topo) in [
        ("mesh", TopologyKind::Mesh),
        ("chordal_ring", TopologyKind::ChordalRing { stride: 8 }),
    ] {
        let cfg = MachineConfig::paper_prototype().with_topology(topo);
        group.bench_function(format!("sim_20ms_at_15kpps/{label}"), |b| {
            b.iter(|| {
                let mut sim = NetworkSim::new(&cfg).unwrap();
                inject_open_loop(
                    &mut sim,
                    TrafficPattern::UniformRandom,
                    15_000.0,
                    0,
                    20_000_000,
                    7,
                );
                sim.run_to_completion();
                sim.stats().delivered_total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
