//! E6 — streamed batch shipping vs materialized result shipping.
//!
//! PRISMA's parallelism comes from fragments executing concurrently on
//! separate PEs (paper §2.2); streamed batch shipping extends that
//! concurrency across the exchange itself: OFMs ship every produced batch
//! as its own `BatchChunk`, so the coordinator merges early batches while
//! fragments are still scanning. This experiment measures what the
//! overlap buys on a multi-fragment scan: the coordinator's
//! **time-to-first-batch** (`ExecMetrics::first_batch_micros`) and the
//! full-result latency, streamed vs the materialized baseline
//! (`set_streaming(false)`: same messages, but each OFM drains its
//! subplan before the first ship). Records the trajectory in
//! `BENCH_e6.json` at the repo root.
//!
//! Environment knobs (all optional):
//!
//! * `E6_ROWS`    — total row count across fragments (default 100000)
//! * `E6_FRAGS`   — fragment count (default 4)
//! * `E6_ITERS`   — timed samples per measurement (default 15)
//! * `E6_SMOKE=1` — skip nothing extra today; reserved for CI parity
//! * `E6_ENFORCE=1` — exit non-zero unless the streamed path reaches its
//!   first batch sooner than the materialized path

use prisma_core::types::tuple;
use prisma_core::PrismaMachine;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median of the samples produced by `iters` runs of `f`.
fn median_of(iters: usize, mut f: impl FnMut() -> (u64, u64)) -> (u64, u64) {
    let _warmup = f();
    let mut ttfb: Vec<u64> = Vec::with_capacity(iters);
    let mut full: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters.max(1) {
        let (t, fu) = f();
        ttfb.push(t);
        full.push(fu);
    }
    ttfb.sort_unstable();
    full.sort_unstable();
    (ttfb[ttfb.len() / 2], full[full.len() / 2])
}

struct Measured {
    ttfb_us: u64,
    full_us: u64,
}

fn measure(db: &PrismaMachine, sql: &str, iters: usize) -> Measured {
    let (ttfb_us, full_us) = median_of(iters, || {
        let (_rows, m) = db.query_with_metrics(sql).unwrap();
        assert!(m.first_batch_micros > 0, "no fragment batch arrived: {m:?}");
        (m.first_batch_micros, m.full_result_micros)
    });
    Measured { ttfb_us, full_us }
}

fn write_json(
    path: &std::path::Path,
    rows: usize,
    frags: usize,
    iters: usize,
    streamed: &Measured,
    materialized: &Measured,
) {
    let speedup = materialized.ttfb_us as f64 / streamed.ttfb_us.max(1) as f64;
    let json = format!(
        "{{\n  \"experiment\": \"e6_stream_shipping\",\n  \"rows\": {rows},\n  \"fragments\": {frags},\n  \"iters\": {iters},\n  \"benches\": {{\n    \"time_to_first_batch_us\": {{\"streamed\": {}, \"materialized\": {}, \"speedup\": {speedup:.2}}},\n    \"full_result_us\": {{\"streamed\": {}, \"materialized\": {}}}\n  }}\n}}\n",
        streamed.ttfb_us, materialized.ttfb_us, streamed.full_us, materialized.full_us,
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("[E6-stream] could not write {}: {e}", path.display());
    } else {
        eprintln!("[E6-stream] wrote {}", path.display());
    }
}

fn main() {
    let rows = env_usize("E6_ROWS", 100_000);
    let frags = env_usize("E6_FRAGS", 4);
    let iters = env_usize("E6_ITERS", 15);
    let enforce = std::env::var("E6_ENFORCE").is_ok_and(|v| v == "1");

    let mut db = PrismaMachine::builder().pes(8).build().unwrap();
    db.sql(&format!(
        "CREATE TABLE t (a INT, b INT) FRAGMENTED BY HASH(a) INTO {frags}"
    ))
    .unwrap();
    let txn = db.begin();
    let data: Vec<prisma_core::Tuple> =
        (0..rows as i64).map(|i| tuple![i, i % 97]).collect();
    for chunk in data.chunks(5000) {
        db.gdh().insert(txn, "t", chunk.to_vec()).unwrap();
    }
    db.commit(txn).unwrap();
    db.refresh_stats("t").unwrap();

    // A selective-but-wide scan: every fragment produces a multi-batch
    // stream, so the coordinator has real merging to overlap with.
    let sql = "SELECT a, b FROM t WHERE b < 90";

    let streamed = measure(&db, sql, iters);
    db.gdh_mut().set_streaming(false);
    let materialized = measure(&db, sql, iters);
    db.gdh_mut().set_streaming(true);

    eprintln!(
        "[E6-stream:streamed]     first batch after {} µs, full result after {} µs",
        streamed.ttfb_us, streamed.full_us
    );
    eprintln!(
        "[E6-stream:materialized] first batch after {} µs, full result after {} µs",
        materialized.ttfb_us, materialized.full_us
    );
    eprintln!(
        "[E6-stream] coordinator time-to-first-batch: {:.2}x sooner streamed",
        materialized.ttfb_us as f64 / streamed.ttfb_us.max(1) as f64
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e6.json");
    write_json(&root, rows, frags, iters, &streamed, &materialized);

    if enforce {
        assert!(
            streamed.ttfb_us < materialized.ttfb_us,
            "streaming lost its pipelining advantage: first batch after {} µs streamed \
             vs {} µs materialized",
            streamed.ttfb_us,
            materialized.ttfb_us
        );
    }
    db.shutdown();
}
