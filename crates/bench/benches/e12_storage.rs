//! E12 — two-tier columnar fragment storage (PR 10).
//!
//! Fragments keep a row-oriented delta heap plus sealed column chunks
//! with zone maps and cached wire blocks. This experiment measures what
//! the sealed tier buys on the scan path against the pre-PR 10 row-heap
//! baseline (a machine whose seal threshold is set above the table size,
//! so nothing ever seals):
//!
//! 1. **Selective scans** — a predicate on the clustered key at ~2%
//!    selectivity. Zone maps refute whole chunks before any data is
//!    touched; the prune ratio (`chunks_pruned / chunks considered`) is
//!    reported alongside the speedup over the unpruned row-heap scan.
//! 2. **Full scans** — sealed chunks are served as ready-made column
//!    batches with zero row pivot and shipped as cached wire blocks; at
//!    par with the row heap's refcount-bump ship (its best case: the
//!    legacy row wire).
//! 3. **Cached-block re-ship** — the first columnar scan seals and pays
//!    the block encode; re-scans of the unmutated fragments re-ship the
//!    cached frames (the E11 gap, closed).
//!
//! Records the trajectory in `BENCH_e12.json` at the repo root.
//!
//! Environment knobs (all optional):
//!
//! * `E12_ROWS`  — rows in the table (default 60000)
//! * `E12_FRAGS` — fragments (default 4)
//! * `E12_ITERS` — timed samples per measurement (default 7)
//! * `E12_ENFORCE=1` — exit non-zero unless the pruned selective scan is
//!   at least 2x faster than the unpruned row-heap scan (with a reported
//!   prune ratio of at least 0.5), the zero-pivot full scan is at par
//!   with the row-heap scan (10% floor-to-floor noise margin), and the
//!   cached re-scan is strictly faster than the cold scan that built the
//!   caches

use prisma_core::types::tuple;
use prisma_core::PrismaMachine;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Build a machine, create the table and load `rows` rows in clustered
/// key order (ids arrive ascending, so sealed chunks are id-clustered
/// and a key predicate refutes most zones).
fn load(seal_rows: usize, rows: usize, frags: usize) -> PrismaMachine {
    let db = PrismaMachine::builder()
        .pes(8)
        .seal_rows(seal_rows)
        .build()
        .unwrap();
    db.sql(&format!(
        "CREATE TABLE t (id INT, grp INT, val DOUBLE) FRAGMENTED BY HASH(id) INTO {frags}"
    ))
    .unwrap();
    let txn = db.begin();
    for chunk in (0..rows as i64)
        .map(|i| tuple![i, i % 16, (i % 1000) as f64])
        .collect::<Vec<_>>()
        .chunks(5000)
    {
        db.gdh().insert(txn, "t", chunk.to_vec()).unwrap();
    }
    db.commit(txn).unwrap();
    db.refresh_stats("t").unwrap();
    db
}

/// Floor latency (µs) over samples, plus the metrics of the last run.
fn floor_us(
    db: &PrismaMachine,
    sql: &str,
    expect_rows: usize,
    iters: usize,
) -> (u64, prisma_core::gdh::ExecMetrics) {
    let run = || {
        let (rows, m) = db.query_with_metrics(sql).unwrap();
        assert_eq!(rows.len(), expect_rows, "scan lost rows");
        (m.full_result_micros, m)
    };
    let (_, mut metrics) = run();
    let mut best = u64::MAX;
    for _ in 0..iters.max(5) {
        let (us, m) = run();
        best = best.min(us);
        metrics = m;
    }
    (best, metrics)
}

fn main() {
    let rows = env_usize("E12_ROWS", 60_000);
    let frags = env_usize("E12_FRAGS", 4);
    let iters = env_usize("E12_ITERS", 7);
    let enforce = std::env::var("E12_ENFORCE").is_ok_and(|v| v == "1");

    // Two-tier machine (1024-row sealed chunks) vs the row-heap baseline
    // (threshold above the table size: nothing ever seals).
    let mut chunked = load(1024, rows, frags);
    let mut rowheap = load(usize::MAX, rows, frags);

    // 1. Selective scan on the clustered key, ~2% selectivity.
    let cutoff = rows / 50;
    let sel_sql = format!("SELECT id, grp, val FROM t WHERE id < {cutoff}");
    chunked.gdh_mut().set_columnar_wire(true);
    rowheap.gdh_mut().set_columnar_wire(true);
    let (sel_pruned_us, m) = floor_us(&chunked, &sel_sql, cutoff, iters);
    let (sel_heap_us, _) = floor_us(&rowheap, &sel_sql, cutoff, iters);
    let considered = m.chunks_scanned + m.chunks_pruned;
    let prune_ratio = m.chunks_pruned as f64 / considered.max(1) as f64;
    let sel_speedup = sel_heap_us as f64 / sel_pruned_us.max(1) as f64;
    eprintln!(
        "[E12-storage:selective] pruned {sel_pruned_us} µs vs row heap {sel_heap_us} µs — {sel_speedup:.2}x, prune ratio {prune_ratio:.2} ({} pruned / {considered} chunks)",
        m.chunks_pruned
    );

    // 2. Zero-pivot full scan vs the row heap on its best wire.
    let full_sql = "SELECT id, grp, val FROM t";
    rowheap.gdh_mut().set_columnar_wire(false);
    let (full_chunked_us, _) = floor_us(&chunked, full_sql, rows, iters);
    let (full_heap_us, _) = floor_us(&rowheap, full_sql, rows, iters);
    eprintln!(
        "[E12-storage:full] chunked {full_chunked_us} µs vs row heap (row wire) {full_heap_us} µs"
    );

    // 3. Cached-block re-ship: cold seal+encode vs warm cache, on a
    // machine that has never scanned.
    let fresh = load(1024, rows, frags);
    let first_us = {
        let (r, m) = fresh.query_with_metrics(full_sql).unwrap();
        assert_eq!(r.len(), rows);
        assert!(m.chunks_scanned > 0, "first scan did not seal");
        m.full_result_micros
    };
    let (rescan_us, _) = floor_us(&fresh, full_sql, rows, iters);
    eprintln!("[E12-storage:reship] first (seal+encode) {first_us} µs, cached re-scan {rescan_us} µs");
    fresh.shutdown();

    let json = format!(
        "{{\n  \"experiment\": \"e12_storage\",\n  \"rows\": {rows},\n  \"fragments\": {frags},\n  \"iters\": {iters},\n  \"seal_rows\": 1024,\n  \"benches\": {{\n    \"selective_scan_latency_us\": {{\"pruned\": {sel_pruned_us}, \"row_heap\": {sel_heap_us}, \"speedup\": {sel_speedup:.2}}},\n    \"selective_scan_pruning\": {{\"chunks_scanned\": {}, \"chunks_pruned\": {}, \"prune_ratio\": {prune_ratio:.2}}},\n    \"full_scan_latency_us\": {{\"chunked\": {full_chunked_us}, \"row_heap_row_wire\": {full_heap_us}}},\n    \"reship_latency_us\": {{\"first\": {first_us}, \"cached\": {rescan_us}}}\n  }},\n  \"notes\": \"selective scan is ~2% selectivity on the clustered key (ids inserted ascending, so zone maps refute most chunks); the row-heap baseline is an identical machine whose seal threshold exceeds the table size; full-scan baseline uses the row wire (the heap's best case — refcount-bump ships); latencies are floors over the sample set\"\n}}\n",
        m.chunks_scanned, m.chunks_pruned
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e12.json");
    if let Err(e) = std::fs::write(&root, json) {
        eprintln!("[E12-storage] could not write {}: {e}", root.display());
    } else {
        eprintln!("[E12-storage] wrote {}", root.display());
    }

    if enforce {
        assert!(
            sel_speedup >= 2.0,
            "zone pruning bought only {sel_speedup:.2}x on the selective scan (need >= 2x)"
        );
        assert!(
            prune_ratio >= 0.5,
            "prune ratio {prune_ratio:.2} too low on the clustered selective scan (need >= 0.5)"
        );
        assert!(
            full_chunked_us * 10 <= full_heap_us * 11,
            "zero-pivot full scan lost to the row heap: {full_chunked_us} vs {full_heap_us} µs"
        );
        assert!(
            rescan_us < first_us,
            "cached re-scan not faster than the cold seal+encode scan: {rescan_us} vs {first_us} µs"
        );
    }
    chunked.shutdown();
    rowheap.shutdown();
}
