//! E4 — main memory as primary storage vs disk-resident execution
//! (paper §1/§2.1: "performance improvement by … using a very large
//! main-memory as primary storage").
//!
//! The memory path scans an OFM fragment (compiled predicate over the
//! in-memory heap). The disk-resident baseline pages the same tuples
//! through the simulated period disk (20 ms seek, ~1 MB/s) in 8 KB blocks
//! and charges its simulated time. The printed comparison is
//! wall-time(memory) vs wall-time(decode) + simulated-IO(disk) — the gap
//! is the paper's motivation in one number.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::ofm::{Ofm, OfmKind};
use prisma_core::stable::{encoding, DiskProfile, SimulatedDisk, StableDevice};
use prisma_core::storage::expr::{CmpOp, ScalarExpr};
use prisma_core::types::{FragmentId, TxnId};
use prisma_core::workload::{wisconsin_rows, wisconsin_schema};

const ROWS: usize = 50_000;

fn memory_ofm() -> Ofm {
    let mut ofm = Ofm::new(
        FragmentId(0),
        "wisc",
        wisconsin_schema(),
        OfmKind::Transient,
    );
    let txn = TxnId(1);
    for t in wisconsin_rows(ROWS, 7) {
        ofm.insert(txn, t).unwrap();
    }
    ofm.commit(txn).unwrap();
    ofm
}

/// The disk-resident table: tuples encoded into 8 KB blocks on the
/// simulated disk.
fn disk_table() -> (Arc<SimulatedDisk>, usize) {
    let disk = Arc::new(SimulatedDisk::new(DiskProfile::default()));
    let mut block = bytes::BytesMut::with_capacity(8192);
    let mut blocks = 0;
    for t in wisconsin_rows(ROWS, 7) {
        encoding::encode_tuple(&t, &mut block);
        if block.len() >= 8192 {
            disk.append(&block);
            disk.sync();
            block.clear();
            blocks += 1;
        }
    }
    if !block.is_empty() {
        disk.append(&block);
        disk.sync();
        blocks += 1;
    }
    (disk, blocks)
}

fn scan_disk(disk: &SimulatedDisk, blocks: usize) -> (usize, u64) {
    // Model: every block read pays seek + transfer on the simulated disk;
    // decode + predicate evaluation happen in real time.
    let image = disk.durable_bytes();
    let profile = disk.profile();
    let io_ns = blocks as u64 * (profile.seek_ns + 8192 * profile.per_byte_ns);
    let mut buf = bytes::Bytes::from(image);
    let mut hits = 0;
    while !buf.is_empty() {
        let Ok(t) = encoding::decode_tuple(&mut buf) else {
            break;
        };
        if t.get(0).as_int().unwrap_or(0) < 1000 {
            hits += 1;
        }
    }
    (hits, io_ns)
}

fn bench(c: &mut Criterion) {
    let ofm = memory_ofm();
    let (disk, blocks) = disk_table();
    let pred = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(1000));

    // Print the paper-shape comparison once.
    let t0 = std::time::Instant::now();
    let mem_hits = ofm.select(Some(&pred)).unwrap().len();
    let mem_ns = t0.elapsed().as_nanos() as u64;
    let t0 = std::time::Instant::now();
    let (disk_hits, io_ns) = scan_disk(&disk, blocks);
    let decode_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(mem_hits, disk_hits);
    eprintln!(
        "[E4] selective scan of {ROWS} tuples: memory {mem_ns} ns; \
         disk-resident {decode_ns} ns decode + {io_ns} ns simulated IO \
         (slowdown ≈ {:.0}x)",
        (decode_ns + io_ns) as f64 / mem_ns.max(1) as f64
    );

    let mut group = c.benchmark_group("e4_memory_vs_disk");
    group.sample_size(20);
    group.bench_function("memory_ofm_selective_scan_50k", |b| {
        b.iter(|| ofm.select(Some(&pred)).unwrap().len())
    });
    group.bench_function("disk_resident_scan_50k_decode_only", |b| {
        b.iter(|| scan_disk(&disk, blocks).0)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
