//! E5 — compiled expression routines vs interpretation (paper §2.5).
//!
//! "Each OFM is equipped with an expression compiler to generate routines
//! dynamically … it avoids the otherwise excessive interpretation overhead
//! incurred by a query expression interpreter." Measures the same
//! predicates over 100k tuples via the tree-walking interpreter and the
//! closure compiler, at three predicate complexities.

use criterion::{criterion_group, criterion_main, Criterion};
use prisma_core::storage::expr::{ArithOp, CmpOp, ScalarExpr};
use prisma_core::types::Tuple;
use prisma_core::workload::wisconsin_rows;

fn predicates() -> Vec<(&'static str, ScalarExpr)> {
    vec![
        (
            "simple_cmp",
            // unique1 < 5000
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(5000)),
        ),
        (
            "conjunction3",
            // two = 1 AND ten < 7 AND hundred >= 20
            ScalarExpr::conjunction(vec![
                ScalarExpr::eq(ScalarExpr::col(2), ScalarExpr::lit(1)),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(3), ScalarExpr::lit(7)),
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(4), ScalarExpr::lit(20)),
            ]),
        ),
        (
            "arith_heavy",
            // (unique1 * 3 + unique2) % 7 = 0 AND string4 = 'AAAA'
            ScalarExpr::and(
                ScalarExpr::eq(
                    ScalarExpr::arith(
                        ArithOp::Rem,
                        ScalarExpr::arith(
                            ArithOp::Add,
                            ScalarExpr::arith(
                                ArithOp::Mul,
                                ScalarExpr::col(0),
                                ScalarExpr::lit(3),
                            ),
                            ScalarExpr::col(1),
                        ),
                        ScalarExpr::lit(7),
                    ),
                    ScalarExpr::lit(0),
                ),
                ScalarExpr::eq(ScalarExpr::col(5), ScalarExpr::lit("AAAA")),
            ),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let rows: Vec<Tuple> = wisconsin_rows(100_000, 3);
    let mut group = c.benchmark_group("e5_compiled_expr");
    for (name, pred) in predicates() {
        // Sanity: both paths agree.
        let compiled = pred.compile_predicate();
        let n_interp = rows
            .iter()
            .filter(|t| pred.eval_predicate(t).unwrap())
            .count();
        let n_comp = rows.iter().filter(|t| compiled(t)).count();
        assert_eq!(n_interp, n_comp);
        eprintln!("[E5:{name}] selects {n_comp} of {} tuples", rows.len());

        group.bench_function(format!("interpreted/{name}"), |b| {
            b.iter(|| {
                rows.iter()
                    .filter(|t| pred.eval_predicate(t).unwrap())
                    .count()
            })
        });
        group.bench_function(format!("compiled/{name}"), |b| {
            let f = pred.compile_predicate();
            b.iter(|| rows.iter().filter(|t| f(t)).count())
        });
        group.bench_function(format!("compile_cost/{name}"), |b| {
            b.iter(|| pred.compile_predicate())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
