//! E5 — compiled expression routines vs interpretation (paper §2.5), and
//! the vectorized column-at-a-time kernels layered on top of them.
//!
//! "Each OFM is equipped with an expression compiler to generate routines
//! dynamically … it avoids the otherwise excessive interpretation overhead
//! incurred by a query expression interpreter." Measures the same
//! predicates over ≥100k tuples via the tree-walking interpreter, the
//! closure compiler, and the vectorized kernels, and records the
//! scalar-vs-vectorized trajectory in `BENCH_e5.json` at the repo root.
//!
//! Environment knobs (all optional):
//!
//! * `E5_ROWS`    — row count (default 100000)
//! * `E5_ITERS`   — timed samples per measurement (default 30)
//! * `E5_SMOKE=1` — run only the scalar-vs-vectorized comparison, skip
//!   the criterion groups (CI's bench-smoke step)
//! * `E5_ENFORCE=1` — exit non-zero if the vectorized Int-filter path is
//!   not faster than the per-tuple compiled path

use std::time::Instant;

use criterion::{black_box, Criterion};
use prisma_core::storage::expr::{ArithOp, CmpOp, ScalarExpr};
use prisma_core::types::{ColumnVec, LazyColumns, SelVec, Tuple};
use prisma_core::workload::wisconsin_rows;

/// Column chunks of the batch pipeline's size, built once (column-at-a-
/// time engines store columnar; pivot cost is measured by E2, not here).
const CHUNK: usize = 1024;

fn predicates() -> Vec<(&'static str, ScalarExpr)> {
    vec![
        (
            "simple_cmp",
            // unique1 < 5000
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(5000)),
        ),
        (
            "conjunction3",
            // two = 1 AND ten < 7 AND hundred >= 20
            ScalarExpr::conjunction(vec![
                ScalarExpr::eq(ScalarExpr::col(2), ScalarExpr::lit(1)),
                ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(3), ScalarExpr::lit(7)),
                ScalarExpr::cmp(CmpOp::Ge, ScalarExpr::col(4), ScalarExpr::lit(20)),
            ]),
        ),
        (
            "arith_heavy",
            // (unique1 * 3 + unique2) % 7 = 0 AND string4 = 'AAAA'
            ScalarExpr::and(
                ScalarExpr::eq(
                    ScalarExpr::arith(
                        ArithOp::Rem,
                        ScalarExpr::arith(
                            ArithOp::Add,
                            ScalarExpr::arith(
                                ArithOp::Mul,
                                ScalarExpr::col(0),
                                ScalarExpr::lit(3),
                            ),
                            ScalarExpr::col(1),
                        ),
                        ScalarExpr::lit(7),
                    ),
                    ScalarExpr::lit(0),
                ),
                ScalarExpr::eq(ScalarExpr::col(5), ScalarExpr::lit("AAAA")),
            ),
        ),
    ]
}

/// Chunked columnar view of the rows, pre-materialized so the timed
/// loops measure kernel cost, not pivot cost (pivot cost is E2's
/// business; the executor itself pivots lazily per referenced column).
fn to_chunks(rows: &[Tuple]) -> Vec<LazyColumns> {
    rows.chunks(CHUNK)
        .map(|c| LazyColumns::from_cols(ColumnVec::pivot(c)))
        .collect()
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median wall-clock ns of `iters` runs of `f` (one warm-up first).
fn time_ns(iters: usize, mut f: impl FnMut() -> usize) -> (u64, usize) {
    let check = black_box(f());
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    (samples[samples.len() / 2], check)
}

struct Comparison {
    name: &'static str,
    scalar_ns: u64,
    vectorized_ns: u64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.vectorized_ns.max(1) as f64
    }
}

/// The headline E5 comparison: per-tuple `CompiledExpr` routines vs the
/// vectorized kernels, on an Int filter and an arithmetic projection.
fn compare_scalar_vs_vectorized(
    rows: &[Tuple],
    chunks: &[LazyColumns],
    iters: usize,
) -> Vec<Comparison> {
    let sels: Vec<SelVec> = chunks
        .iter()
        .map(|c| SelVec::all(if c.arity() == 0 { 0 } else { c.col(0).len() }))
        .collect();
    let mut out = Vec::new();

    // --- Int filter: unique1 < n/2 ---
    let pred = ScalarExpr::cmp(
        CmpOp::Lt,
        ScalarExpr::col(0),
        ScalarExpr::lit((rows.len() / 2) as i64),
    );
    let scalar = pred.compile_predicate();
    let (scalar_ns, n_scalar) =
        time_ns(iters, || rows.iter().filter(|t| scalar(t)).count());
    let mut vpred = pred.compile_vec_predicate();
    let mut sel_buf: Vec<u32> = Vec::new();
    let (vector_ns, n_vector) = time_ns(iters, || {
        let mut kept = 0;
        for (cols, sel) in chunks.iter().zip(&sels) {
            vpred.select(cols, sel, &mut sel_buf);
            kept += sel_buf.len();
        }
        kept
    });
    assert_eq!(n_scalar, n_vector, "filter paths disagree");
    out.push(Comparison {
        name: "int_filter",
        scalar_ns,
        vectorized_ns: vector_ns,
    });

    // --- Arithmetic projection: unique1 * 3 + unique2 ---
    let proj = ScalarExpr::arith(
        ArithOp::Add,
        ScalarExpr::arith(ArithOp::Mul, ScalarExpr::col(0), ScalarExpr::lit(3)),
        ScalarExpr::col(1),
    );
    let scalar = proj.compile();
    let (scalar_ns, _) = time_ns(iters, || {
        rows.iter()
            .map(|t| black_box(scalar(t)))
            .filter(|v| !v.is_null())
            .count()
    });
    let vproj = proj.compile_vec();
    let (vector_ns, _) = time_ns(iters, || {
        let mut n = 0;
        for (cols, sel) in chunks.iter().zip(&sels) {
            n += black_box(vproj.eval(cols, sel)).len();
        }
        n
    });
    out.push(Comparison {
        name: "arith_project",
        scalar_ns,
        vectorized_ns: vector_ns,
    });
    out
}

fn write_json(path: &std::path::Path, rows: usize, iters: usize, comps: &[Comparison]) {
    let benches: Vec<String> = comps
        .iter()
        .map(|c| {
            format!(
                "    \"{}\": {{\"scalar_ns\": {}, \"vectorized_ns\": {}, \"speedup\": {:.2}}}",
                c.name,
                c.scalar_ns,
                c.vectorized_ns,
                c.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"e5_compiled_expr\",\n  \"rows\": {rows},\n  \"iters\": {iters},\n  \"benches\": {{\n{}\n  }}\n}}\n",
        benches.join(",\n")
    );
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("[E5] could not write {}: {e}", path.display());
    } else {
        eprintln!("[E5] wrote {}", path.display());
    }
}

/// The original criterion groups: interpreter vs compiler vs vectorized
/// at three predicate complexities, plus compile cost.
fn criterion_groups(c: &mut Criterion, rows: &[Tuple], chunks: &[LazyColumns]) {
    let sels: Vec<SelVec> = chunks
        .iter()
        .map(|ch| SelVec::all(if ch.arity() == 0 { 0 } else { ch.col(0).len() }))
        .collect();
    let mut group = c.benchmark_group("e5_compiled_expr");
    for (name, pred) in predicates() {
        // Sanity: all three paths agree.
        let compiled = pred.compile_predicate();
        let n_interp = rows
            .iter()
            .filter(|t| pred.eval_predicate(t).unwrap())
            .count();
        let n_comp = rows.iter().filter(|t| compiled(t)).count();
        assert_eq!(n_interp, n_comp);
        let mut vpred = pred.compile_vec_predicate();
        let mut buf = Vec::new();
        let n_vec: usize = chunks
            .iter()
            .zip(&sels)
            .map(|(cols, sel)| {
                vpred.select(cols, sel, &mut buf);
                buf.len()
            })
            .sum();
        assert_eq!(n_interp, n_vec);
        eprintln!("[E5:{name}] selects {n_comp} of {} tuples", rows.len());

        group.bench_function(format!("interpreted/{name}"), |b| {
            b.iter(|| {
                rows.iter()
                    .filter(|t| pred.eval_predicate(t).unwrap())
                    .count()
            })
        });
        group.bench_function(format!("compiled/{name}"), |b| {
            let f = pred.compile_predicate();
            b.iter(|| rows.iter().filter(|t| f(t)).count())
        });
        group.bench_function(format!("vectorized/{name}"), |b| {
            let mut f = pred.compile_vec_predicate();
            let mut buf = Vec::new();
            b.iter(|| {
                let mut kept = 0;
                for (cols, sel) in chunks.iter().zip(&sels) {
                    f.select(cols, sel, &mut buf);
                    kept += buf.len();
                }
                kept
            })
        });
        group.bench_function(format!("compile_cost/{name}"), |b| {
            b.iter(|| pred.compile_predicate())
        });
    }
    group.finish();
}

fn main() {
    let n = env_usize("E5_ROWS", 100_000);
    let iters = env_usize("E5_ITERS", 30);
    let smoke = std::env::var("E5_SMOKE").is_ok_and(|v| v == "1");
    let enforce = std::env::var("E5_ENFORCE").is_ok_and(|v| v == "1");

    let rows: Vec<Tuple> = wisconsin_rows(n, 3);
    let chunks = to_chunks(&rows);

    let comps = compare_scalar_vs_vectorized(&rows, &chunks, iters);
    for c in &comps {
        eprintln!(
            "[E5:{}] scalar {} ns  vectorized {} ns  speedup {:.2}x",
            c.name,
            c.scalar_ns,
            c.vectorized_ns,
            c.speedup()
        );
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_e5.json");
    write_json(&root, n, iters, &comps);

    if enforce {
        let filter = comps
            .iter()
            .find(|c| c.name == "int_filter")
            .expect("int_filter always measured");
        assert!(
            filter.vectorized_ns < filter.scalar_ns,
            "vectorized Int filter regressed: {} ns vs scalar {} ns",
            filter.vectorized_ns,
            filter.scalar_ns
        );
    }
    if smoke {
        return;
    }
    criterion_groups(&mut Criterion::default(), &rows, &chunks);
}
