//! Fragment checkpoints: bounded-replay snapshots.
//!
//! A persistent OFM periodically writes its fragment's full tuple image to
//! the checkpoint store and logs a `Checkpoint` record; recovery loads the
//! snapshot and replays only the committed log suffix. (With 16 MB
//! fragments, full-image checkpoints are exactly what the paper's
//! simplification bought: "This approach leads to a simplification in the
//! design of the database management system", §3.2.)

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use prisma_types::{FragmentId, PrismaError, Result, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

use crate::device::StableDevice;
use crate::encoding::{checksum, decode_tuple, encode_tuple};
use crate::wal::Lsn;

/// One durable snapshot of a fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Fragment the snapshot belongs to.
    pub fragment: FragmentId,
    /// LSN of the matching `Checkpoint` log record; redo starts after it.
    pub as_of_lsn: Lsn,
    /// Full tuple image.
    pub tuples: Vec<Tuple>,
}

/// Checkpoint store: one logical slot per fragment on a stable device.
///
/// Each `write` replaces the fragment's previous snapshot atomically (the
/// snapshot is framed and checksummed; a torn snapshot write is detected
/// on load and the previous image is used — we keep the last two frames
/// per fragment for that purpose).
pub struct CheckpointStore {
    device: Arc<dyn StableDevice>,
    /// In-memory directory of the latest intact snapshot per fragment,
    /// rebuilt from the device on open.
    dir: Mutex<HashMap<FragmentId, Snapshot>>,
}

impl CheckpointStore {
    /// Open (or create) a store on `device`, scanning existing snapshots.
    pub fn open(device: Arc<dyn StableDevice>) -> Self {
        let dir = Self::scan(&device.durable_bytes());
        CheckpointStore {
            device,
            dir: Mutex::new(dir),
        }
    }

    /// Write a snapshot and force it durable. Returns simulated ns charged.
    pub fn write(&self, snapshot: Snapshot) -> u64 {
        let mut body = BytesMut::new();
        body.put_u32_le(snapshot.fragment.0);
        body.put_u64_le(snapshot.as_of_lsn);
        body.put_u32_le(snapshot.tuples.len() as u32);
        for t in &snapshot.tuples {
            encode_tuple(t, &mut body);
        }
        let mut frame = BytesMut::with_capacity(body.len() + 12);
        frame.put_u32_le(body.len() as u32);
        frame.put_u64_le(checksum(&body));
        frame.extend_from_slice(&body);
        self.device.append(&frame);
        let ns = self.device.sync();
        self.dir.lock().insert(snapshot.fragment, snapshot);
        ns
    }

    /// Latest intact snapshot for `fragment`, if any.
    pub fn load(&self, fragment: FragmentId) -> Option<Snapshot> {
        self.dir.lock().get(&fragment).cloned()
    }

    /// Re-scan the durable device, e.g. after a simulated crash, rebuilding
    /// the directory from what actually survived.
    pub fn recover(&self) -> usize {
        let dir = Self::scan(&self.device.durable_bytes());
        let n = dir.len();
        *self.dir.lock() = dir;
        n
    }

    fn scan(bytes: &[u8]) -> HashMap<FragmentId, Snapshot> {
        let mut dir = HashMap::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= 12 {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4")) as usize;
            let crc = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().expect("8"));
            let start = offset + 12;
            if bytes.len() < start + len {
                break;
            }
            let body = &bytes[start..start + len];
            if checksum(body) != crc {
                break;
            }
            if let Ok(snap) = Self::decode_snapshot(body) {
                // Later snapshots shadow earlier ones for the same fragment.
                dir.insert(snap.fragment, snap);
            } else {
                break;
            }
            offset = start + len;
        }
        dir
    }

    fn decode_snapshot(body: &[u8]) -> Result<Snapshot> {
        let mut buf = Bytes::copy_from_slice(body);
        if buf.remaining() < 16 {
            return Err(PrismaError::CorruptLog("truncated snapshot header".into()));
        }
        let fragment = FragmentId(buf.get_u32_le());
        let as_of_lsn = buf.get_u64_le();
        let n = buf.get_u32_le() as usize;
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            tuples.push(decode_tuple(&mut buf)?);
        }
        Ok(Snapshot {
            fragment,
            as_of_lsn,
            tuples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DiskProfile, SimulatedDisk};
    use prisma_types::tuple;

    fn store() -> CheckpointStore {
        CheckpointStore::open(Arc::new(SimulatedDisk::new(DiskProfile::instant())))
    }

    #[test]
    fn write_load_roundtrip() {
        let s = store();
        let snap = Snapshot {
            fragment: FragmentId(3),
            as_of_lsn: 128,
            tuples: vec![tuple![1, "a"], tuple![2, "b"]],
        };
        s.write(snap.clone());
        assert_eq!(s.load(FragmentId(3)), Some(snap));
        assert_eq!(s.load(FragmentId(9)), None);
    }

    #[test]
    fn newer_snapshot_shadows_older_after_recovery() {
        let s = store();
        s.write(Snapshot {
            fragment: FragmentId(1),
            as_of_lsn: 10,
            tuples: vec![tuple![1]],
        });
        s.write(Snapshot {
            fragment: FragmentId(1),
            as_of_lsn: 20,
            tuples: vec![tuple![1], tuple![2]],
        });
        s.recover();
        let snap = s.load(FragmentId(1)).unwrap();
        assert_eq!(snap.as_of_lsn, 20);
        assert_eq!(snap.tuples.len(), 2);
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous() {
        let dev = Arc::new(SimulatedDisk::new(DiskProfile::instant()));
        let s = CheckpointStore::open(dev.clone());
        s.write(Snapshot {
            fragment: FragmentId(1),
            as_of_lsn: 10,
            tuples: vec![tuple![1]],
        });
        // Second snapshot is appended but the device crashes mid-write.
        let mut body = BytesMut::new();
        body.put_u32_le(1);
        body.put_u64_le(99);
        body.put_u32_le(1);
        encode_tuple(&tuple![9, 9, 9], &mut body);
        let mut frame = BytesMut::new();
        frame.put_u32_le(body.len() as u32);
        frame.put_u64_le(checksum(&body));
        frame.extend_from_slice(&body);
        dev.append(&frame);
        dev.crash(Some(frame.len() - 3)); // tear off the last 3 bytes
        assert_eq!(s.recover(), 1);
        let snap = s.load(FragmentId(1)).unwrap();
        assert_eq!(snap.as_of_lsn, 10, "must fall back to the intact image");
    }

    #[test]
    fn store_survives_reopen() {
        let dev: Arc<dyn StableDevice> = Arc::new(SimulatedDisk::new(DiskProfile::instant()));
        {
            let s = CheckpointStore::open(dev.clone());
            s.write(Snapshot {
                fragment: FragmentId(5),
                as_of_lsn: 7,
                tuples: vec![tuple![42]],
            });
        }
        let s2 = CheckpointStore::open(dev);
        assert_eq!(s2.load(FragmentId(5)).unwrap().tuples, vec![tuple![42]]);
    }
}
