//! Byte-addressed stable devices with crash semantics.

use parking_lot::Mutex;
use std::sync::Arc;

/// Latency model of a late-1980s Winchester disk of the class the PRISMA
/// prototype would have attached to its disk PEs.
#[derive(Debug, Clone, Copy)]
pub struct DiskProfile {
    /// Positioning cost charged per `sync` batch, nanoseconds.
    pub seek_ns: u64,
    /// Transfer cost per byte, nanoseconds (≈ 1 MB/s default).
    pub per_byte_ns: u64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        // 20 ms average seek+rotation, ~1 MB/s sustained transfer: period
        // hardware, which is what makes main-memory execution attractive
        // (experiment E4 measures exactly this gap).
        DiskProfile {
            seek_ns: 20_000_000,
            per_byte_ns: 1_000,
        }
    }
}

impl DiskProfile {
    /// An aggressively fast device (for tests that don't care about time).
    pub fn instant() -> Self {
        DiskProfile {
            seek_ns: 0,
            per_byte_ns: 0,
        }
    }
}

/// An append-only stable byte store with explicit durability barriers.
///
/// Semantics: `append` buffers; `sync` makes everything appended so far
/// durable; `crash` discards the non-durable tail (a torn write may leave
/// a *prefix* of an unsynced append — the WAL detects this via record
/// checksums). `durable_bytes` reads back the durable prefix.
pub trait StableDevice: Send + Sync {
    /// Buffer `data` at the end of the device.
    fn append(&self, data: &[u8]);
    /// Durability barrier; everything appended before this call survives a
    /// crash. Returns the simulated time charged, in nanoseconds.
    fn sync(&self) -> u64;
    /// The durable content (what recovery will see after a crash).
    fn durable_bytes(&self) -> Vec<u8>;
    /// All content including the unsynced tail (what a reader sees while
    /// the system is up).
    fn all_bytes(&self) -> Vec<u8>;
    /// Simulate a crash: lose the unsynced tail. With `torn = Some(k)`,
    /// the first `k` bytes of the lost tail survive (a torn sector write).
    fn crash(&self, torn: Option<usize>);
    /// Total simulated time spent in this device, nanoseconds.
    fn simulated_ns(&self) -> u64;
    /// Bytes durably written over the device's lifetime.
    fn bytes_written(&self) -> u64;
    /// Number of sync barriers issued.
    fn sync_count(&self) -> u64;
    /// Discard all contents, durable and not (device re-format for tests).
    fn reset(&self);
}

#[derive(Debug, Default)]
struct DeviceState {
    durable: Vec<u8>,
    tail: Vec<u8>,
    simulated_ns: u64,
    bytes_written: u64,
    sync_count: u64,
}

/// The simulated disk: in-memory bytes plus the [`DiskProfile`] cost model.
#[derive(Debug, Clone)]
pub struct SimulatedDisk {
    profile: DiskProfile,
    state: Arc<Mutex<DeviceState>>,
}

impl SimulatedDisk {
    /// New empty disk with the given latency profile.
    pub fn new(profile: DiskProfile) -> Self {
        SimulatedDisk {
            profile,
            state: Arc::new(Mutex::new(DeviceState::default())),
        }
    }

    /// The latency profile in force.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }
}

impl Default for SimulatedDisk {
    fn default() -> Self {
        SimulatedDisk::new(DiskProfile::default())
    }
}

impl StableDevice for SimulatedDisk {
    fn append(&self, data: &[u8]) {
        self.state.lock().tail.extend_from_slice(data);
    }

    fn sync(&self) -> u64 {
        let mut st = self.state.lock();
        let n = st.tail.len() as u64;
        let cost = self.profile.seek_ns + n * self.profile.per_byte_ns;
        st.simulated_ns += cost;
        st.bytes_written += n;
        st.sync_count += 1;
        let tail = std::mem::take(&mut st.tail);
        st.durable.extend_from_slice(&tail);
        cost
    }

    fn durable_bytes(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    fn all_bytes(&self) -> Vec<u8> {
        let st = self.state.lock();
        let mut v = st.durable.clone();
        v.extend_from_slice(&st.tail);
        v
    }

    fn crash(&self, torn: Option<usize>) {
        let mut st = self.state.lock();
        if let Some(k) = torn {
            let keep = k.min(st.tail.len());
            let kept: Vec<u8> = st.tail[..keep].to_vec();
            st.durable.extend_from_slice(&kept);
        }
        st.tail.clear();
    }

    fn simulated_ns(&self) -> u64 {
        self.state.lock().simulated_ns
    }

    fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    fn sync_count(&self) -> u64 {
        self.state.lock().sync_count
    }

    fn reset(&self) {
        let mut st = self.state.lock();
        st.durable.clear();
        st.tail.clear();
    }
}

/// A zero-cost device used for transient OFMs in tests and as the "memory
/// resident" baseline in E4 (syncs are free and instantaneous).
#[derive(Debug, Clone, Default)]
pub struct MemDevice {
    inner: SimulatedDisk,
}

impl MemDevice {
    /// New empty device.
    pub fn new() -> Self {
        MemDevice {
            inner: SimulatedDisk::new(DiskProfile::instant()),
        }
    }
}

impl StableDevice for MemDevice {
    fn append(&self, data: &[u8]) {
        self.inner.append(data)
    }
    fn sync(&self) -> u64 {
        self.inner.sync()
    }
    fn durable_bytes(&self) -> Vec<u8> {
        self.inner.durable_bytes()
    }
    fn all_bytes(&self) -> Vec<u8> {
        self.inner.all_bytes()
    }
    fn crash(&self, torn: Option<usize>) {
        self.inner.crash(torn)
    }
    fn simulated_ns(&self) -> u64 {
        self.inner.simulated_ns()
    }
    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
    fn sync_count(&self) -> u64 {
        self.inner.sync_count()
    }
    fn reset(&self) {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_tail_is_lost_on_crash() {
        let d = SimulatedDisk::new(DiskProfile::instant());
        d.append(b"hello ");
        d.sync();
        d.append(b"world");
        assert_eq!(d.all_bytes(), b"hello world");
        d.crash(None);
        assert_eq!(d.durable_bytes(), b"hello ");
        assert_eq!(d.all_bytes(), b"hello ");
    }

    #[test]
    fn torn_write_keeps_prefix_of_tail() {
        let d = SimulatedDisk::new(DiskProfile::instant());
        d.append(b"abc");
        d.sync();
        d.append(b"defgh");
        d.crash(Some(2));
        assert_eq!(d.durable_bytes(), b"abcde");
    }

    #[test]
    fn latency_model_charges_seek_and_transfer() {
        let d = SimulatedDisk::new(DiskProfile {
            seek_ns: 100,
            per_byte_ns: 2,
        });
        d.append(&[0u8; 10]);
        let cost = d.sync();
        assert_eq!(cost, 100 + 20);
        assert_eq!(d.simulated_ns(), 120);
        assert_eq!(d.bytes_written(), 10);
        assert_eq!(d.sync_count(), 1);
    }

    #[test]
    fn mem_device_costs_nothing() {
        let d = MemDevice::new();
        d.append(&[0u8; 1000]);
        d.sync();
        assert_eq!(d.simulated_ns(), 0);
        assert_eq!(d.durable_bytes().len(), 1000);
    }
}
