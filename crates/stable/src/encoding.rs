//! Binary encoding of values and tuples for the stable layer.
//!
//! The workspace's sanctioned dependencies include `bytes` but no serde
//! *format* crate, so log records and checkpoints use this explicit,
//! versionless little-endian format:
//!
//! ```text
//! value  := tag:u8 payload
//!   tag 0 = NULL        (no payload)
//!   tag 1 = Bool        u8
//!   tag 2 = Int         i64 LE
//!   tag 3 = Double      f64 bits LE
//!   tag 4 = Str         len:u32 LE + utf8 bytes
//! tuple  := arity:u32 LE, then `arity` values
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use prisma_types::{PrismaError, Result, Tuple, Value};

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut BytesMut) {
    match v {
        Value::Null => out.put_u8(0),
        Value::Bool(b) => {
            out.put_u8(1);
            out.put_u8(*b as u8);
        }
        Value::Int(i) => {
            out.put_u8(2);
            out.put_i64_le(*i);
        }
        Value::Double(d) => {
            out.put_u8(3);
            out.put_u64_le(d.to_bits());
        }
        Value::Str(s) => {
            out.put_u8(4);
            out.put_u32_le(s.len() as u32);
            out.put_slice(s.as_bytes());
        }
    }
}

/// Decode one value from the front of `buf`.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    let corrupt = |m: &str| PrismaError::CorruptLog(m.to_owned());
    if buf.remaining() < 1 {
        return Err(corrupt("truncated value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 1 {
                return Err(corrupt("truncated bool"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated int"));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(corrupt("truncated double"));
            }
            Ok(Value::Double(f64::from_bits(buf.get_u64_le())))
        }
        4 => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated string length"));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(corrupt("truncated string body"));
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes)
                .map_err(|_| corrupt("invalid utf8 in string value"))?;
            Ok(Value::Str(s.to_owned()))
        }
        t => Err(corrupt(&format!("unknown value tag {t}"))),
    }
}

/// Append the encoding of `t` to `out`.
pub fn encode_tuple(t: &Tuple, out: &mut BytesMut) {
    out.put_u32_le(t.arity() as u32);
    for v in t.values() {
        encode_value(v, out);
    }
}

/// Decode one tuple from the front of `buf`.
pub fn decode_tuple(buf: &mut Bytes) -> Result<Tuple> {
    if buf.remaining() < 4 {
        return Err(PrismaError::CorruptLog("truncated tuple arity".into()));
    }
    let arity = buf.get_u32_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(values))
}

/// FNV-1a checksum of a byte slice, used to detect torn log records.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use prisma_types::tuple;

    fn roundtrip(t: &Tuple) -> Tuple {
        let mut out = BytesMut::new();
        encode_tuple(t, &mut out);
        let mut buf = out.freeze();
        decode_tuple(&mut buf).unwrap()
    }

    #[test]
    fn tuple_roundtrip_all_types() {
        let t = Tuple::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Double(3.5),
            Value::Str("héllo".into()),
        ]);
        assert_eq!(roundtrip(&t), t);
        assert_eq!(roundtrip(&Tuple::unit()), Tuple::unit());
    }

    #[test]
    fn nan_survives_roundtrip() {
        let t = tuple![f64::NAN];
        let back = roundtrip(&t);
        assert_eq!(back, t, "total order equality treats NaN as equal");
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut out = BytesMut::new();
        encode_tuple(&tuple![1, "abc"], &mut out);
        let full = out.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            assert!(
                decode_tuple(&mut partial).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = Bytes::from_static(&[9u8]);
        assert!(decode_value(&mut buf).is_err());
    }

    #[test]
    fn checksum_detects_single_bit_flip() {
        let data = b"the quick brown fox";
        let c = checksum(data);
        let mut flipped = data.to_vec();
        flipped[3] ^= 1;
        assert_ne!(c, checksum(&flipped));
    }
}
