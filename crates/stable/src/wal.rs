//! Redo-only write-ahead log with checksummed records.
//!
//! The WAL is the durability half of the paper's "stable storage and
//! automatic recovery upon system failures" (§3.2). Persistent OFMs log
//! logical redo records (tuple images) before acknowledging a commit; the
//! transaction manager logs 2PC decisions. Records are framed as
//! `len:u32 | crc:u64 | payload` so recovery can detect and discard a torn
//! final record.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use prisma_types::{FragmentId, PrismaError, Result, Tuple, TxnId};
use std::sync::Arc;

use crate::device::StableDevice;
use crate::encoding::{checksum, decode_tuple, encode_tuple};

/// Log sequence number: byte offset of a record in the log.
pub type Lsn = u64;

/// What a log record says happened.
#[derive(Debug, Clone, PartialEq)]
pub enum LogPayload {
    /// Transaction started.
    Begin { txn: TxnId },
    /// Tuple inserted into a fragment (redo image).
    Insert { txn: TxnId, fragment: FragmentId, tuple: Tuple },
    /// Tuple deleted from a fragment (the deleted image, so recovery can
    /// re-delete by value).
    Delete { txn: TxnId, fragment: FragmentId, tuple: Tuple },
    /// Transaction committed (the commit point once durable).
    Commit { txn: TxnId },
    /// Transaction aborted.
    Abort { txn: TxnId },
    /// 2PC participant voted yes and is prepared.
    Prepared { txn: TxnId },
    /// Checkpoint taken for a fragment at this point in the log; recovery
    /// may start redo after the *latest* checkpoint of each fragment.
    Checkpoint { fragment: FragmentId },
}

/// A decoded record plus its position.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Byte offset of the record frame in the log.
    pub lsn: Lsn,
    /// The payload.
    pub payload: LogPayload,
}

fn encode_payload(p: &LogPayload, out: &mut BytesMut) {
    match p {
        LogPayload::Begin { txn } => {
            out.put_u8(0);
            out.put_u32_le(txn.0);
        }
        LogPayload::Insert { txn, fragment, tuple } => {
            out.put_u8(1);
            out.put_u32_le(txn.0);
            out.put_u32_le(fragment.0);
            encode_tuple(tuple, out);
        }
        LogPayload::Delete { txn, fragment, tuple } => {
            out.put_u8(2);
            out.put_u32_le(txn.0);
            out.put_u32_le(fragment.0);
            encode_tuple(tuple, out);
        }
        LogPayload::Commit { txn } => {
            out.put_u8(3);
            out.put_u32_le(txn.0);
        }
        LogPayload::Abort { txn } => {
            out.put_u8(4);
            out.put_u32_le(txn.0);
        }
        LogPayload::Prepared { txn } => {
            out.put_u8(5);
            out.put_u32_le(txn.0);
        }
        LogPayload::Checkpoint { fragment } => {
            out.put_u8(6);
            out.put_u32_le(fragment.0);
        }
    }
}

fn decode_payload(buf: &mut Bytes) -> Result<LogPayload> {
    let corrupt = |m: &str| PrismaError::CorruptLog(m.to_owned());
    if buf.remaining() < 1 {
        return Err(corrupt("empty payload"));
    }
    let tag = buf.get_u8();
    let txn_id = |buf: &mut Bytes| -> Result<TxnId> {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated txn id"));
        }
        Ok(TxnId(buf.get_u32_le()))
    };
    match tag {
        0 => Ok(LogPayload::Begin { txn: txn_id(buf)? }),
        1 | 2 => {
            let txn = txn_id(buf)?;
            if buf.remaining() < 4 {
                return Err(corrupt("truncated fragment id"));
            }
            let fragment = FragmentId(buf.get_u32_le());
            let tuple = decode_tuple(buf)?;
            Ok(if tag == 1 {
                LogPayload::Insert { txn, fragment, tuple }
            } else {
                LogPayload::Delete { txn, fragment, tuple }
            })
        }
        3 => Ok(LogPayload::Commit { txn: txn_id(buf)? }),
        4 => Ok(LogPayload::Abort { txn: txn_id(buf)? }),
        5 => Ok(LogPayload::Prepared { txn: txn_id(buf)? }),
        6 => {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated fragment id"));
            }
            Ok(LogPayload::Checkpoint {
                fragment: FragmentId(buf.get_u32_le()),
            })
        }
        t => Err(corrupt(&format!("unknown log tag {t}"))),
    }
}

/// The write-ahead log over a [`StableDevice`].
///
/// Thread-safe: the device serializes appends internally; LSNs are the
/// device byte offsets, maintained here.
pub struct WriteAheadLog {
    device: Arc<dyn StableDevice>,
    next_lsn: parking_lot::Mutex<Lsn>,
}

impl WriteAheadLog {
    /// A WAL writing to `device`. If the device already holds a log (e.g.
    /// after recovery), the next LSN continues from its durable end.
    pub fn new(device: Arc<dyn StableDevice>) -> Self {
        let start = device.durable_bytes().len() as Lsn;
        WriteAheadLog {
            device,
            next_lsn: parking_lot::Mutex::new(start),
        }
    }

    /// The underlying device (shared with checkpoints and tests).
    pub fn device(&self) -> &Arc<dyn StableDevice> {
        &self.device
    }

    /// Append a record. The record is *buffered*; call [`Self::sync`] (or
    /// append with [`Self::append_durable`]) to make it survive a crash.
    pub fn append(&self, payload: &LogPayload) -> Lsn {
        let mut body = BytesMut::new();
        encode_payload(payload, &mut body);
        let mut frame = BytesMut::with_capacity(body.len() + 12);
        frame.put_u32_le(body.len() as u32);
        frame.put_u64_le(checksum(&body));
        frame.extend_from_slice(&body);
        let mut lsn = self.next_lsn.lock();
        let at = *lsn;
        *lsn += frame.len() as Lsn;
        self.device.append(&frame);
        at
    }

    /// Append and immediately force to stable storage. Returns `(lsn,
    /// simulated_ns)` — the commit-latency cost the E7 bench measures.
    pub fn append_durable(&self, payload: &LogPayload) -> (Lsn, u64) {
        let lsn = self.append(payload);
        let ns = self.device.sync();
        (lsn, ns)
    }

    /// Durability barrier.
    pub fn sync(&self) -> u64 {
        self.device.sync()
    }

    /// Read back every intact record in the durable log; a torn or corrupt
    /// tail terminates the scan silently (standard WAL recovery contract:
    /// the tail was never acknowledged, so discarding it is correct).
    pub fn read_durable(&self) -> Vec<LogRecord> {
        Self::decode_log(&self.device.durable_bytes())
    }

    /// Decode a raw log image (exposed for recovery-from-copied-devices).
    pub fn decode_log(bytes: &[u8]) -> Vec<LogRecord> {
        let mut records = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= 12 {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let crc = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().expect("8"));
            let body_start = offset + 12;
            if bytes.len() < body_start + len {
                break; // torn frame
            }
            let body = &bytes[body_start..body_start + len];
            if checksum(body) != crc {
                break; // torn/corrupt record
            }
            let mut buf = Bytes::copy_from_slice(body);
            match decode_payload(&mut buf) {
                Ok(payload) => records.push(LogRecord {
                    lsn: offset as Lsn,
                    payload,
                }),
                Err(_) => break,
            }
            offset = body_start + len;
        }
        records
    }

    /// The set of transactions with a durable `Commit` record — the redo
    /// set for recovery.
    pub fn committed_txns(records: &[LogRecord]) -> std::collections::HashSet<TxnId> {
        records
            .iter()
            .filter_map(|r| match r.payload {
                LogPayload::Commit { txn } => Some(txn),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DiskProfile, SimulatedDisk};
    use prisma_types::tuple;

    fn wal() -> WriteAheadLog {
        WriteAheadLog::new(Arc::new(SimulatedDisk::new(DiskProfile::instant())))
    }

    #[test]
    fn append_read_roundtrip() {
        let w = wal();
        let t = TxnId(1);
        let f = FragmentId(2);
        w.append(&LogPayload::Begin { txn: t });
        w.append(&LogPayload::Insert {
            txn: t,
            fragment: f,
            tuple: tuple![1, "x"],
        });
        w.append(&LogPayload::Commit { txn: t });
        w.sync();
        let recs = w.read_durable();
        assert_eq!(recs.len(), 3);
        assert!(matches!(recs[2].payload, LogPayload::Commit { txn } if txn == t));
        assert!(WriteAheadLog::committed_txns(&recs).contains(&t));
    }

    #[test]
    fn unsynced_records_do_not_survive_crash() {
        let w = wal();
        w.append(&LogPayload::Begin { txn: TxnId(1) });
        w.sync();
        w.append(&LogPayload::Commit { txn: TxnId(1) });
        // no sync
        w.device().crash(None);
        let recs = w.read_durable();
        assert_eq!(recs.len(), 1);
        assert!(WriteAheadLog::committed_txns(&recs).is_empty());
    }

    #[test]
    fn torn_final_record_is_discarded() {
        let w = wal();
        w.append(&LogPayload::Begin { txn: TxnId(7) });
        w.sync();
        w.append(&LogPayload::Insert {
            txn: TxnId(7),
            fragment: FragmentId(0),
            tuple: tuple![1, 2, 3, "a long enough payload to tear"],
        });
        // Crash mid-write: only 5 bytes of the record frame hit the platter.
        w.device().crash(Some(5));
        let recs = w.read_durable();
        assert_eq!(recs.len(), 1, "torn record must not be returned");
    }

    #[test]
    fn torn_record_with_corrupt_body_is_discarded() {
        let w = wal();
        w.append(&LogPayload::Begin { txn: TxnId(7) });
        w.sync();
        let before = w.device().durable_bytes().len();
        w.append(&LogPayload::Commit { txn: TxnId(7) });
        // Tear inside the body: frame header complete, body half-written.
        let full = w.device().all_bytes().len();
        let tear = (full - before) - 2;
        w.device().crash(Some(tear));
        let recs = w.read_durable();
        assert_eq!(recs.len(), 1, "checksum must reject the half body");
    }

    #[test]
    fn tear_at_exact_frame_boundary_keeps_the_record() {
        let w = wal();
        w.append(&LogPayload::Begin { txn: TxnId(7) });
        w.sync();
        let before = w.device().durable_bytes().len();
        w.append(&LogPayload::Commit { txn: TxnId(7) });
        let frame = w.device().all_bytes().len() - before;
        // The crash lands exactly on the frame boundary: every byte of
        // the record made it, so recovery must keep it — the boundary
        // itself is not "torn" territory.
        w.device().crash(Some(frame));
        let recs = w.read_durable();
        assert_eq!(recs.len(), 2, "a fully-flushed frame survives");
        assert_eq!(recs[1].payload, LogPayload::Commit { txn: TxnId(7) });
    }

    #[test]
    fn tear_one_byte_into_a_frame_discards_it() {
        let w = wal();
        w.append(&LogPayload::Begin { txn: TxnId(7) });
        w.sync();
        w.append(&LogPayload::Commit { txn: TxnId(7) });
        // One byte of the length header survives: not even the frame
        // length is trustworthy, and recovery must stop cleanly at the
        // previous record instead of chasing garbage.
        w.device().crash(Some(1));
        let recs = w.read_durable();
        assert_eq!(recs.len(), 1, "a 1-byte frame prefix must be discarded");
        assert_eq!(recs[0].payload, LogPayload::Begin { txn: TxnId(7) });
    }

    #[test]
    fn lsns_are_monotone_byte_offsets() {
        let w = wal();
        let a = w.append(&LogPayload::Begin { txn: TxnId(1) });
        let b = w.append(&LogPayload::Abort { txn: TxnId(1) });
        assert_eq!(a, 0);
        assert!(b > a);
        w.sync();
        let recs = w.read_durable();
        assert_eq!(recs[0].lsn, a);
        assert_eq!(recs[1].lsn, b);
    }

    #[test]
    fn wal_resumes_lsn_after_reopen() {
        let dev: Arc<dyn StableDevice> = Arc::new(SimulatedDisk::new(DiskProfile::instant()));
        let w1 = WriteAheadLog::new(dev.clone());
        w1.append_durable(&LogPayload::Begin { txn: TxnId(1) });
        let end = dev.durable_bytes().len() as Lsn;
        let w2 = WriteAheadLog::new(dev.clone());
        let next = w2.append(&LogPayload::Commit { txn: TxnId(1) });
        assert_eq!(next, end);
        w2.sync();
        assert_eq!(w2.read_durable().len(), 2);
    }

    #[test]
    fn append_durable_charges_disk_time() {
        let dev = Arc::new(SimulatedDisk::default());
        let w = WriteAheadLog::new(dev);
        let (_, ns) = w.append_durable(&LogPayload::Begin { txn: TxnId(1) });
        assert!(ns >= 20_000_000, "must pay at least the seek: {ns}");
    }
}
