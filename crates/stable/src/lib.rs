//! # prisma-stable
//!
//! Stable storage and recovery for the PRISMA machine.
//!
//! Paper §3.2: "Apart from the local main-memory, some of the processing
//! elements will also be connected to secondary storage (disk). Using
//! these, the multi-computer system implements stable storage and
//! automatic recovery upon system failures."
//!
//! The physical disks are a hardware gate, so this crate substitutes a
//! **latency-modelled simulated disk** ([`device::SimulatedDisk`]): an
//! in-memory byte store that charges seek + transfer time to a simulated
//! clock, honours `sync` barriers, and supports **crash injection** that
//! discards the unsynced tail (including torn final records). On top of it:
//!
//! * [`encoding`] — hand-rolled binary encoding of values/tuples (the
//!   workspace's sanctioned crates include `bytes` but no serde *format*,
//!   so the wire format is explicit here);
//! * [`wal`] — a redo-only write-ahead log with checksummed records;
//! * [`checkpoint`] — fragment snapshots that bound replay work;
//! * recovery itself lives where the data lives: the OFM replays
//!   `checkpoint + committed log suffix` (see `prisma-ofm`).

pub mod checkpoint;
pub mod device;
pub mod encoding;
pub mod wal;

pub use checkpoint::CheckpointStore;
pub use device::{DiskProfile, MemDevice, SimulatedDisk, StableDevice};
pub use wal::{LogPayload, LogRecord, Lsn, WriteAheadLog};
