//! Recursive-descent SQL parser.

use prisma_storage::expr::{ArithOp, CmpOp};
use prisma_types::{DataType, PrismaError, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse one SQL statement (a trailing `;` is tolerated).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_punct(';');
    if !p.at_end() {
        return Err(p.error("trailing input after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: &str) -> PrismaError {
        PrismaError::Parse(format!(
            "{msg} (at token {} of {}: {:?})",
            self.pos,
            self.tokens.len(),
            self.peek()
        ))
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {kw}")))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{c}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    /// Possibly qualified name: `a` or `a.b`.
    fn qualified_ident(&mut self) -> Result<String> {
        let mut name = self.ident()?;
        if self.eat_punct('.') {
            let rest = self.ident()?;
            name.push('.');
            name.push_str(&rest);
        }
        Ok(name)
    }

    // ---------------- statements ----------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("select") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            let hash = self.eat_kw("hash");
            if !hash {
                self.eat_kw("btree");
            }
            self.expect_kw("index")?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_punct('(')?;
            let column = self.ident()?;
            self.expect_punct(')')?;
            return Ok(Statement::CreateIndex {
                table,
                column,
                hash,
            });
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            self.expect_kw("values")?;
            let mut rows = Vec::new();
            loop {
                self.expect_punct('(')?;
                let mut row = Vec::new();
                if !self.eat_punct(')') {
                    loop {
                        row.push(self.expr()?);
                        if !self.eat_punct(',') {
                            break;
                        }
                    }
                    self.expect_punct(')')?;
                }
                rows.push(row);
                if !self.eat_punct(',') {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                if self.next() != Some(Token::Op("=".into())) {
                    return Err(self.error("expected '=' in SET"));
                }
                sets.push((col, self.expr()?));
                if !self.eat_punct(',') {
                    break;
                }
            }
            let predicate = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                sets,
                predicate,
            });
        }
        Err(self.error("expected a statement"))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_punct('(')?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let dtype = self.data_type()?;
            let nullable = if self.eat_kw("not") {
                self.expect_kw("null")?;
                false
            } else {
                self.eat_kw("null")
            };
            columns.push(ColumnDef {
                name: col,
                dtype,
                nullable,
            });
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        // Optional: FRAGMENTED [BY HASH(col)] INTO n [FRAGMENTS]
        let mut fragments = None;
        if self.eat_kw("fragmented") {
            let column = if self.eat_kw("by") {
                self.expect_kw("hash")?;
                self.expect_punct('(')?;
                let c = self.ident()?;
                self.expect_punct(')')?;
                Some(c)
            } else {
                None
            };
            self.expect_kw("into")?;
            let count = match self.next() {
                Some(Token::Int(n)) if n > 0 => n as usize,
                _ => return Err(self.error("expected a positive fragment count")),
            };
            self.eat_kw("fragments");
            fragments = Some(FragmentSpec { column, count });
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            fragments,
        })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let t = self.ident()?;
        let up = t.to_ascii_uppercase();
        // VARCHAR(n) — length is parsed and ignored (all strings are
        // variable length in main memory).
        let dt = match up.as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "DOUBLE" | "FLOAT" | "REAL" => DataType::Double,
            "STRING" | "TEXT" | "VARCHAR" | "CHAR" => DataType::Str,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => return Err(PrismaError::Parse(format!("unknown type {other}"))),
        };
        if self.eat_punct('(') {
            match self.next() {
                Some(Token::Int(_)) => {}
                _ => return Err(self.error("expected length")),
            }
            self.expect_punct(')')?;
        }
        Ok(dt)
    }

    // ---------------- queries ----------------

    /// query := set_expr [ORDER BY ...] [LIMIT n]
    pub fn query(&mut self) -> Result<Query> {
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.qualified_ident()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((col, asc));
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("expected LIMIT count")),
            }
        } else {
            None
        };
        Ok(Query {
            body,
            order_by,
            limit,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = SetExpr::Select(Box::new(self.select()?));
        loop {
            if self.eat_kw("union") {
                let all = self.eat_kw("all");
                let right = SetExpr::Select(Box::new(self.select()?));
                left = SetExpr::Union {
                    left: Box::new(left),
                    right: Box::new(right),
                    all,
                };
            } else if self.eat_kw("except") {
                let right = SetExpr::Select(Box::new(self.select()?));
                left = SetExpr::Except {
                    left: Box::new(left),
                    right: Box::new(right),
                };
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            if self.eat_punct('*') {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        let mut join_preds: Vec<Expr> = Vec::new();
        loop {
            if self.eat_punct(',') {
                from.push(self.table_ref()?);
            } else if self.eat_kw("join") || {
                if self.peek_kw("inner") {
                    self.eat_kw("inner");
                    self.expect_kw("join")?;
                    true
                } else {
                    false
                }
            } {
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_preds.push(self.expr()?);
            } else {
                break;
            }
        }
        let mut predicate = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        for jp in join_preds {
            predicate = Some(match predicate {
                None => jp,
                Some(p) => Expr::And(Box::new(p), Box::new(jp)),
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.qualified_ident()?);
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            items,
            from,
            predicate,
            group_by,
            having,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_kw("closure") {
            self.expect_punct('(')?;
            let name = self.ident()?;
            self.expect_punct(')')?;
            let alias = self.maybe_alias()?;
            return Ok(TableRef::Closure { name, alias });
        }
        let name = self.ident()?;
        let alias = self.maybe_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    fn maybe_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        // Bare alias: an identifier that is not a clause keyword.
        const CLAUSES: &[&str] = &[
            "where", "group", "having", "order", "limit", "union", "except", "join", "on",
            "inner", "set",
        ];
        if let Some(Token::Ident(s)) = self.peek() {
            if !CLAUSES.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.pos += 1;
                return Ok(Some(s));
            }
        }
        Ok(None)
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        if let Some(Token::Op(op)) = self.peek() {
            let op = match op.as_str() {
                "=" => CmpOp::Eq,
                "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull(Box::new(left), negated));
        }
        if self.eat_kw("between") {
            let low = self.add_expr()?;
            self.expect_kw("and")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between(Box::new(left), Box::new(low), Box::new(high)));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            if self.eat_punct('+') {
                let r = self.mul_expr()?;
                left = Expr::Arith(ArithOp::Add, Box::new(left), Box::new(r));
            } else if self.eat_punct('-') {
                let r = self.mul_expr()?;
                left = Expr::Arith(ArithOp::Sub, Box::new(left), Box::new(r));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            if self.eat_punct('*') {
                let r = self.unary_expr()?;
                left = Expr::Arith(ArithOp::Mul, Box::new(left), Box::new(r));
            } else if self.eat_punct('/') {
                let r = self.unary_expr()?;
                left = Expr::Arith(ArithOp::Div, Box::new(left), Box::new(r));
            } else if self.eat_punct('%') {
                let r = self.unary_expr()?;
                left = Expr::Arith(ArithOp::Rem, Box::new(left), Box::new(r));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_punct('-') {
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(n)))
            }
            Some(Token::Double(d)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Double(d)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Str(s)))
            }
            Some(Token::Punct('(')) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(')')?;
                Ok(e)
            }
            Some(Token::Ident(id)) => {
                let up = id.to_ascii_uppercase();
                match up.as_str() {
                    "TRUE" => {
                        self.pos += 1;
                        Ok(Expr::Lit(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.pos += 1;
                        Ok(Expr::Lit(Value::Bool(false)))
                    }
                    "NULL" => {
                        self.pos += 1;
                        Ok(Expr::Lit(Value::Null))
                    }
                    "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" => {
                        // Aggregate call?
                        if self.tokens.get(self.pos + 1) == Some(&Token::Punct('(')) {
                            self.pos += 2;
                            if up == "COUNT" && self.eat_punct('*') {
                                self.expect_punct(')')?;
                                return Ok(Expr::Agg {
                                    func: "COUNT*".into(),
                                    arg: None,
                                });
                            }
                            let arg = self.expr()?;
                            self.expect_punct(')')?;
                            return Ok(Expr::Agg {
                                func: up,
                                arg: Some(Box::new(arg)),
                            });
                        }
                        self.pos += 1;
                        Ok(Expr::Column(id))
                    }
                    _ => {
                        self.pos += 1;
                        if self.eat_punct('.') {
                            let col = self.ident()?;
                            Ok(Expr::Column(format!("{id}.{col}")))
                        } else {
                            Ok(Expr::Column(id))
                        }
                    }
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_fragmentation() {
        let s = parse_statement(
            "CREATE TABLE emp (id INT, name VARCHAR(20), sal DOUBLE NULL) \
             FRAGMENTED BY HASH(id) INTO 8 FRAGMENTS;",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                fragments,
            } => {
                assert_eq!(name, "emp");
                assert_eq!(columns.len(), 3);
                assert!(!columns[0].nullable);
                assert!(columns[2].nullable);
                let f = fragments.unwrap();
                assert_eq!(f.column.as_deref(), Some("id"));
                assert_eq!(f.count, 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_everything() {
        let s = parse_statement(
            "SELECT DISTINCT e.dept, COUNT(*) AS n, AVG(e.sal) AS avg_sal \
             FROM emp e JOIN dept d ON e.dept = d.id \
             WHERE e.sal > 100 AND d.name <> 'hr' \
             GROUP BY e.dept HAVING n > 2 \
             ORDER BY avg_sal DESC LIMIT 10",
        )
        .unwrap();
        let Statement::Query(q) = s else {
            panic!("not a query")
        };
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by, vec![("avg_sal".to_owned(), false)]);
        let SetExpr::Select(sel) = q.body else {
            panic!("not a select")
        };
        assert!(sel.distinct);
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.group_by, vec!["e.dept".to_owned()]);
        assert!(sel.having.is_some());
        // JOIN ... ON folded into the predicate.
        assert!(matches!(sel.predicate, Some(Expr::And(_, _))));
    }

    #[test]
    fn union_and_except() {
        let s = parse_statement("SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM v")
            .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.body, SetExpr::Except { .. }));
    }

    #[test]
    fn closure_table_function() {
        let s = parse_statement("SELECT * FROM CLOSURE(reports_to) c WHERE c.src = 1").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else { panic!() };
        assert!(matches!(
            &sel.from[0],
            TableRef::Closure { name, .. } if name == "reports_to"
        ));
        assert_eq!(sel.from[0].alias(), "c");
    }

    #[test]
    fn dml_statements() {
        let s = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        assert!(matches!(s, Statement::Insert { ref rows, .. } if rows.len() == 2));
        let s = parse_statement("DELETE FROM t WHERE x = 3").unwrap();
        assert!(matches!(s, Statement::Delete { predicate: Some(_), .. }));
        let s = parse_statement("UPDATE t SET a = a + 1, b = 'z' WHERE a < 5").unwrap();
        assert!(matches!(s, Statement::Update { ref sets, .. } if sets.len() == 2));
        let s = parse_statement("CREATE HASH INDEX ON t(a)").unwrap();
        assert!(matches!(s, Statement::CreateIndex { hash: true, .. }));
        let s = parse_statement("DROP TABLE t").unwrap();
        assert!(matches!(s, Statement::DropTable { .. }));
    }

    #[test]
    fn expression_precedence() {
        let s = parse_statement("SELECT a FROM t WHERE a + 1 * 2 = 3 OR NOT b = 4 AND c < 5")
            .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else { panic!() };
        // OR is outermost.
        assert!(matches!(sel.predicate, Some(Expr::Or(_, _))));
    }

    #[test]
    fn between_and_is_null() {
        let s =
            parse_statement("SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b IS NOT NULL").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SetExpr::Select(sel) = q.body else { panic!() };
        let Some(Expr::And(l, r)) = sel.predicate else {
            panic!()
        };
        assert!(matches!(*l, Expr::Between(..)));
        assert!(matches!(*r, Expr::IsNull(_, true)));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("BOGUS things").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse_statement("CREATE TABLE t (a WIBBLE)").is_err());
    }
}
