//! # prisma-sqlfe
//!
//! The SQL interface of the PRISMA database machine (paper §2.1: "it
//! provides an SQL and a logic programming interface").
//!
//! A hand-written lexer + recursive-descent parser covering the subset a
//! 1988 relational machine would expose — DDL with fragmentation clauses,
//! DML, and SELECT with joins, aggregation, set operations and the
//! PRISMA-specific `CLOSURE(relation)` table function that surfaces the
//! OFM transitive-closure operator in SQL — plus a planner lowering the
//! AST to `prisma-relalg` logical plans.
//!
//! The planner is deliberately *naive*: it emits cross joins + selections
//! and leaves join-key extraction, pushdown and ordering to the
//! knowledge-based optimizer (`prisma-optimizer`), mirroring the paper's
//! split between parsers and the optimizer as separate GDH components
//! (§2.2), and giving experiment E9 its before/after contrast.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::{ColumnDef, Expr, FragmentSpec, Query, SelectItem, Statement, TableRef};
pub use lexer::{tokenize, Token};
pub use parser::parse_statement;
pub use planner::{plan, Catalog, PlannedStatement};

/// Parse and plan a single SQL statement against a catalog.
pub fn compile(sql: &str, catalog: &dyn Catalog) -> prisma_types::Result<PlannedStatement> {
    let stmt = parse_statement(sql)?;
    plan(&stmt, catalog)
}
