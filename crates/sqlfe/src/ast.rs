//! SQL abstract syntax.

use prisma_storage::expr::{ArithOp, CmpOp};
use prisma_types::{DataType, Value};

/// A scalar expression as parsed (names unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, possibly qualified (`t.col`).
    Column(String),
    /// Literal.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `expr BETWEEN low AND high`.
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Connectives.
    And(Box<Expr>, Box<Expr>),
    /// Or.
    Or(Box<Expr>, Box<Expr>),
    /// Not.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (bool = negated).
    IsNull(Box<Expr>, bool),
    /// Aggregate call (only legal in SELECT/HAVING).
    Agg {
        /// Function name, upper-cased (`COUNT`, `SUM`, ...).
        func: String,
        /// `COUNT(*)` has no argument.
        arg: Option<Box<Expr>>,
    },
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause source.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base relation with optional alias.
    Table {
        /// Relation name.
        name: String,
        /// Alias (defaults to the name).
        alias: Option<String>,
    },
    /// `CLOSURE(relation)` — the PRISMA transitive-closure table function.
    Closure {
        /// Underlying binary relation.
        name: String,
        /// Alias (defaults to the name).
        alias: Option<String>,
    },
}

impl TableRef {
    /// The effective alias.
    pub fn alias(&self) -> &str {
        match self {
            TableRef::Table { name, alias } | TableRef::Closure { name, alias } => {
                alias.as_deref().unwrap_or(name)
            }
        }
    }
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// DISTINCT flag.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM sources (comma = cross join; JOIN ... ON folds its condition
    /// into `predicate`).
    pub from: Vec<TableRef>,
    /// WHERE plus all JOIN ... ON conditions, conjoined.
    pub predicate: Option<Expr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// HAVING predicate (over the aggregate output).
    pub having: Option<Expr>,
}

/// A full query: set-ops over selects, then ORDER BY / LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The body.
    pub body: SetExpr,
    /// ORDER BY `(column name, ascending)`.
    pub order_by: Vec<(String, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// Set-operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A single SELECT.
    Select(Box<Select>),
    /// UNION / UNION ALL.
    Union {
        /// Left branch.
        left: Box<SetExpr>,
        /// Right branch.
        right: Box<SetExpr>,
        /// Keep duplicates.
        all: bool,
    },
    /// EXCEPT (set difference).
    Except {
        /// Left branch.
        left: Box<SetExpr>,
        /// Right branch.
        right: Box<SetExpr>,
    },
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// NULLs admissible.
    pub nullable: bool,
}

/// Fragmentation clause of CREATE TABLE — how the data-allocation manager
/// splits the relation across OFMs (paper §2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentSpec {
    /// Hash column (None = round robin).
    pub column: Option<String>,
    /// Number of fragments.
    pub count: usize,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE, with optional `FRAGMENTED BY HASH(col) INTO n` /
    /// `FRAGMENTED INTO n` clause.
    CreateTable {
        /// Relation name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
        /// Fragmentation (None = single fragment).
        fragments: Option<FragmentSpec>,
    },
    /// DROP TABLE.
    DropTable {
        /// Relation name.
        name: String,
    },
    /// CREATE \[HASH\] INDEX ON table(column).
    CreateIndex {
        /// Relation name.
        table: String,
        /// Column name.
        column: String,
        /// Hash (true) or B-tree (false).
        hash: bool,
    },
    /// INSERT INTO ... VALUES.
    Insert {
        /// Relation name.
        table: String,
        /// Rows of literal expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// DELETE FROM ... \[WHERE\].
    Delete {
        /// Relation name.
        table: String,
        /// Predicate.
        predicate: Option<Expr>,
    },
    /// UPDATE ... SET ... \[WHERE\].
    Update {
        /// Relation name.
        table: String,
        /// `SET col = expr` pairs.
        sets: Vec<(String, Expr)>,
        /// Predicate.
        predicate: Option<Expr>,
    },
    /// A query.
    Query(Query),
}
