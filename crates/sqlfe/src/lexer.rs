//! SQL lexer.

use prisma_types::{PrismaError, Result};

/// SQL tokens. Keywords are case-insensitive and normalized to upper-case
/// identifiers at parse time; the lexer keeps them as `Ident`.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Double(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// `=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`
    Op(String),
    /// `( ) , ; * .`
    Punct(char),
}

impl Token {
    /// The identifier payload, if this token is one.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        self.as_ident()
            .is_some_and(|s| s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | ';' | '*' | '.' | '+' | '-' | '/' | '%' => {
                tokens.push(Token::Punct(c));
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(PrismaError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token::Str(s));
            }
            '=' => {
                tokens.push(Token::Op("=".into()));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("<=".into()));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Op("<>".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op(">=".into()));
                    i += 2;
                } else {
                    tokens.push(Token::Op(">".into()));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Op("<>".into()));
                    i += 2;
                } else {
                    return Err(PrismaError::Parse("stray '!'".into()));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Double(text.parse().map_err(|_| {
                        PrismaError::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| {
                        PrismaError::Parse(format!("bad int literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == 'Δ' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_owned()));
            }
            other => {
                return Err(PrismaError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, b2 FROM t WHERE x >= 1.5 AND y <> 'it''s';").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::Double(1.5)));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Punct(';')));
    }

    #[test]
    fn comments_and_bang_equals() {
        let toks = tokenize("a != b -- trailing comment\n c").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Op("<>".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a ? b").is_err());
    }

    #[test]
    fn arithmetic_punct() {
        let toks = tokenize("1+2*3-4/5%6").unwrap();
        assert_eq!(toks.len(), 11);
        assert_eq!(toks[1], Token::Punct('+'));
    }
}
