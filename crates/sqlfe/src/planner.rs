//! Lowering SQL ASTs to logical plans.

use prisma_relalg::{AggExpr, AggFunc, JoinKind, LogicalPlan};
use prisma_storage::expr::{CmpOp, ScalarExpr};
use prisma_types::{Column, PrismaError, Result, Schema, Tuple, Value};

use crate::ast::*;

/// Schema source for name resolution — backed by the GDH data dictionary
/// in the full machine, by plain maps in tests.
pub trait Catalog {
    /// Schema of a base relation.
    fn table_schema(&self, name: &str) -> Result<Schema>;
}

impl Catalog for std::collections::HashMap<String, Schema> {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.get(name)
            .cloned()
            .ok_or_else(|| PrismaError::UnknownRelation(name.to_owned()))
    }
}

/// The planner's output: either a read-only plan or a described DML/DDL
/// action for the Global Data Handler to carry out against OFMs.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannedStatement {
    /// A query plan (unoptimized; feed to `prisma-optimizer`).
    Query(LogicalPlan),
    /// Create a relation with a fragmentation spec.
    CreateTable {
        /// Relation name.
        name: String,
        /// Relation schema.
        schema: Schema,
        /// Hash-fragmentation column ordinal (None = round robin).
        frag_column: Option<usize>,
        /// Number of fragments.
        frag_count: usize,
    },
    /// Drop a relation.
    DropTable(String),
    /// Create an index on every fragment of a relation.
    CreateIndex {
        /// Relation name.
        table: String,
        /// Column ordinal.
        column: usize,
        /// Hash (true) or B-tree.
        hash: bool,
    },
    /// Insert literal rows.
    Insert {
        /// Relation name.
        table: String,
        /// Validated rows.
        rows: Vec<Tuple>,
    },
    /// Delete matching rows.
    Delete {
        /// Relation name.
        table: String,
        /// Predicate over the (unqualified) table schema.
        predicate: Option<ScalarExpr>,
    },
    /// Update matching rows.
    Update {
        /// Relation name.
        table: String,
        /// `(column ordinal, value expression over the old tuple)`.
        assignments: Vec<(usize, ScalarExpr)>,
        /// Predicate over the table schema.
        predicate: Option<ScalarExpr>,
    },
}

/// Plan a parsed statement.
pub fn plan(stmt: &Statement, catalog: &dyn Catalog) -> Result<PlannedStatement> {
    match stmt {
        Statement::Query(q) => Ok(PlannedStatement::Query(plan_query(q, catalog)?)),
        Statement::CreateTable {
            name,
            columns,
            fragments,
        } => {
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|c| Column {
                        name: c.name.clone(),
                        dtype: c.dtype,
                        nullable: c.nullable,
                    })
                    .collect(),
            );
            let (frag_column, frag_count) = match fragments {
                None => (None, 1),
                Some(FragmentSpec { column, count }) => {
                    let ord = column
                        .as_ref()
                        .map(|c| schema.resolve(c))
                        .transpose()?;
                    (ord, *count)
                }
            };
            Ok(PlannedStatement::CreateTable {
                name: name.clone(),
                schema,
                frag_column,
                frag_count,
            })
        }
        Statement::DropTable { name } => Ok(PlannedStatement::DropTable(name.clone())),
        Statement::CreateIndex {
            table,
            column,
            hash,
        } => {
            let schema = catalog.table_schema(table)?;
            Ok(PlannedStatement::CreateIndex {
                table: table.clone(),
                column: schema.resolve(column)?,
                hash: *hash,
            })
        }
        Statement::Insert { table, rows } => {
            let schema = catalog.table_schema(table)?;
            let mut tuples = Vec::with_capacity(rows.len());
            for row in rows {
                let values: Vec<Value> = row
                    .iter()
                    .map(const_eval)
                    .collect::<Result<_>>()?;
                schema.check_tuple(&values)?;
                tuples.push(Tuple::new(values));
            }
            Ok(PlannedStatement::Insert {
                table: table.clone(),
                rows: tuples,
            })
        }
        Statement::Delete { table, predicate } => {
            let schema = catalog.table_schema(table)?;
            let predicate = predicate
                .as_ref()
                .map(|p| resolve_expr(p, &schema, None))
                .transpose()?;
            Ok(PlannedStatement::Delete {
                table: table.clone(),
                predicate,
            })
        }
        Statement::Update {
            table,
            sets,
            predicate,
        } => {
            let schema = catalog.table_schema(table)?;
            let mut assignments = Vec::with_capacity(sets.len());
            for (col, e) in sets {
                let ord = schema.resolve(col)?;
                assignments.push((ord, resolve_expr(e, &schema, None)?));
            }
            let predicate = predicate
                .as_ref()
                .map(|p| resolve_expr(p, &schema, None))
                .transpose()?;
            Ok(PlannedStatement::Update {
                table: table.clone(),
                assignments,
                predicate,
            })
        }
    }
}

/// Plan a query (set ops + ORDER BY + LIMIT).
pub fn plan_query(q: &Query, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    let mut plan = plan_set_expr(&q.body, catalog)?;
    if !q.order_by.is_empty() {
        plan = plan_order_by(plan, &q.order_by)?;
    }
    if let Some(n) = q.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    plan.validate()?;
    Ok(plan)
}

/// Resolve a (possibly qualified) name against `schema`, falling back to
/// the base name (the final projection strips qualifiers, so `e.id`
/// matches output column `id`).
fn resolve_loose(schema: &Schema, name: &str) -> Result<usize> {
    schema.resolve(name).or_else(|e| match name.rsplit_once('.') {
        Some((_, base)) => schema.resolve(base),
        None => Err(e),
    })
}

/// Plan ORDER BY: keys resolve against the query output; keys that were
/// projected away (SQL allows `SELECT id ... ORDER BY sal`) resolve
/// against the input of the final projection, and the Sort is placed
/// below it — projection preserves row order, so this is equivalent.
fn plan_order_by(plan: LogicalPlan, order_by: &[(String, bool)]) -> Result<LogicalPlan> {
    let schema = plan.output_schema()?;
    let against_output: Result<Vec<(usize, bool)>> = order_by
        .iter()
        .map(|(name, asc)| Ok((resolve_loose(&schema, name)?, *asc)))
        .collect();
    match against_output {
        Ok(keys) => Ok(LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        }),
        Err(outer_err) => match plan {
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let in_schema = input.output_schema()?;
                let keys = order_by
                    .iter()
                    .map(|(name, asc)| Ok((resolve_loose(&in_schema, name)?, *asc)))
                    .collect::<Result<Vec<_>>>()
                    .map_err(|_| outer_err)?;
                Ok(LogicalPlan::Project {
                    input: Box::new(LogicalPlan::Sort { input, keys }),
                    exprs,
                    schema,
                })
            }
            LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
                input: Box::new(plan_order_by(*input, order_by)?),
            }),
            _ => Err(outer_err),
        },
    }
}

fn plan_set_expr(se: &SetExpr, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    match se {
        SetExpr::Select(s) => plan_select(s, catalog),
        SetExpr::Union { left, right, all } => {
            let l = plan_set_expr(left, catalog)?;
            let r = plan_set_expr(right, catalog)?;
            check_union_compat(&l, &r)?;
            Ok(LogicalPlan::Union {
                left: Box::new(l),
                right: Box::new(r),
                all: *all,
            })
        }
        SetExpr::Except { left, right } => {
            let l = plan_set_expr(left, catalog)?;
            let r = plan_set_expr(right, catalog)?;
            check_union_compat(&l, &r)?;
            Ok(LogicalPlan::Difference {
                left: Box::new(l),
                right: Box::new(r),
            })
        }
    }
}

fn check_union_compat(l: &LogicalPlan, r: &LogicalPlan) -> Result<()> {
    let (ls, rs) = (l.output_schema()?, r.output_schema()?);
    if !ls.union_compatible(&rs) {
        return Err(PrismaError::ExprType(format!(
            "set operation over incompatible schemas {ls} vs {rs}"
        )));
    }
    Ok(())
}

fn source_plan(src: &TableRef, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    match src {
        TableRef::Table { name, .. } => {
            let schema = catalog.table_schema(name)?.qualify(src.alias());
            Ok(LogicalPlan::scan(name.clone(), schema))
        }
        TableRef::Closure { name, .. } => {
            let base = catalog.table_schema(name)?;
            let plan = LogicalPlan::Closure {
                input: Box::new(LogicalPlan::scan(name.clone(), base.qualify(src.alias()))),
            };
            Ok(plan)
        }
    }
}

fn plan_select(sel: &Select, catalog: &dyn Catalog) -> Result<LogicalPlan> {
    if sel.from.is_empty() {
        return Err(PrismaError::Parse("empty FROM clause".into()));
    }
    // Duplicate aliases would make every column ambiguous; reject early.
    for (i, a) in sel.from.iter().enumerate() {
        for b in &sel.from[..i] {
            if a.alias() == b.alias() {
                return Err(PrismaError::Parse(format!(
                    "duplicate table alias {}",
                    a.alias()
                )));
            }
        }
    }
    // 1. FROM: left-deep cross-join chain. The optimizer turns the
    //    selection above it into proper equi-joins (E9).
    let mut plan = source_plan(&sel.from[0], catalog)?;
    for src in &sel.from[1..] {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(source_plan(src, catalog)?),
            kind: JoinKind::Inner,
            on: vec![],
            residual: None,
        };
    }
    let from_schema = plan.output_schema()?;

    // 2. WHERE (aggregates illegal here).
    if let Some(p) = &sel.predicate {
        let sp = resolve_expr(p, &from_schema, None)?;
        plan = plan.select(sp);
    }

    // 3. Aggregation?
    let mut aggs = AggCollector::default();
    for item in &sel.items {
        if let SelectItem::Expr { expr, alias } = item {
            collect_aggs(expr, alias.as_deref(), &mut aggs);
        }
    }
    if let Some(h) = &sel.having {
        collect_aggs(h, None, &mut aggs);
    }
    let grouped = !sel.group_by.is_empty() || !aggs.entries.is_empty();

    let mut plan = if grouped {
        plan_aggregation(plan, sel, &from_schema, aggs)?
    } else {
        plan_plain_projection(plan, sel, &from_schema)?
    };

    if sel.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }
    Ok(plan)
}

fn plan_plain_projection(
    plan: LogicalPlan,
    sel: &Select,
    from_schema: &Schema,
) -> Result<LogicalPlan> {
    if sel.having.is_some() {
        return Err(PrismaError::Parse("HAVING without GROUP BY".into()));
    }
    // `SELECT *` alone keeps the input as-is (unqualified names for
    // single-table scans read better in results).
    let mut exprs = Vec::new();
    let mut cols = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (i, c) in from_schema.columns().iter().enumerate() {
                    exprs.push(ScalarExpr::Col(i));
                    cols.push(Column {
                        name: c.base_name().to_owned(),
                        dtype: c.dtype,
                        nullable: c.nullable,
                    });
                }
            }
            SelectItem::Expr { expr, alias } => {
                let se = resolve_expr(expr, from_schema, None)?;
                let dtype = se.check(from_schema)?;
                let name = alias.clone().unwrap_or_else(|| display_name(expr));
                cols.push(Column::nullable(name, dtype));
                exprs.push(se);
            }
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(cols),
    })
}

/// One collected aggregate call.
#[derive(Debug, Default)]
struct AggCollector {
    /// `(func, arg, output name)`, deduplicated structurally.
    entries: Vec<(String, Option<Expr>, String)>,
}

impl AggCollector {
    fn add(&mut self, func: &str, arg: Option<&Expr>, alias: Option<&str>) -> usize {
        if let Some(i) = self
            .entries
            .iter()
            .position(|(f, a, _)| f == func && a.as_ref() == arg)
        {
            if let Some(alias) = alias {
                self.entries[i].2 = alias.to_owned();
            }
            return i;
        }
        let name = alias.map(str::to_owned).unwrap_or_else(|| {
            let arg_name = arg.map(display_name).unwrap_or_else(|| "*".to_owned());
            format!("{}({})", func.trim_end_matches('*'), arg_name)
        });
        self.entries.push((func.to_owned(), arg.cloned(), name));
        self.entries.len() - 1
    }
}

fn collect_aggs(e: &Expr, alias: Option<&str>, out: &mut AggCollector) {
    match e {
        Expr::Agg { func, arg } => {
            out.add(func, arg.as_deref(), alias);
        }
        Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            collect_aggs(l, None, out);
            collect_aggs(r, None, out);
        }
        Expr::Between(a, b, c) => {
            collect_aggs(a, None, out);
            collect_aggs(b, None, out);
            collect_aggs(c, None, out);
        }
        Expr::Not(x) | Expr::Neg(x) | Expr::IsNull(x, _) => collect_aggs(x, None, out),
        Expr::Column(_) | Expr::Lit(_) => {}
    }
}

fn agg_func(name: &str) -> Result<AggFunc> {
    Ok(match name {
        "COUNT*" => AggFunc::CountStar,
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "AVG" => AggFunc::Avg,
        other => {
            return Err(PrismaError::Parse(format!(
                "unknown aggregate function {other}"
            )))
        }
    })
}

fn plan_aggregation(
    plan: LogicalPlan,
    sel: &Select,
    from_schema: &Schema,
    aggs: AggCollector,
) -> Result<LogicalPlan> {
    // Group-by ordinals against the FROM schema.
    let gcols: Vec<usize> = sel
        .group_by
        .iter()
        .map(|n| from_schema.resolve(n))
        .collect::<Result<_>>()?;

    // Pre-projection: all FROM columns followed by one computed column per
    // aggregate argument (so SUM(a*b) works).
    let arity = from_schema.arity();
    let mut pre_exprs: Vec<ScalarExpr> = (0..arity).map(ScalarExpr::Col).collect();
    let mut pre_cols = from_schema.columns().to_vec();
    let mut agg_exprs = Vec::with_capacity(aggs.entries.len());
    for (i, (func, arg, name)) in aggs.entries.iter().enumerate() {
        let func = agg_func(func)?;
        let col = match arg {
            None => 0, // COUNT(*) ignores its column
            Some(a) => {
                let se = resolve_expr(a, from_schema, None)?;
                let dtype = se.check(from_schema)?;
                pre_exprs.push(se);
                pre_cols.push(Column::nullable(format!("__agg_arg{i}"), dtype));
                arity + (pre_cols.len() - from_schema.arity()) - 1
            }
        };
        agg_exprs.push(AggExpr::new(func, col, name.clone()));
    }
    let pre_schema = Schema::new(pre_cols);
    let plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: pre_exprs,
        schema: pre_schema,
    };
    let mut plan = LogicalPlan::Aggregate {
        input: Box::new(plan),
        group_by: gcols.clone(),
        aggs: agg_exprs,
    };
    let agg_schema = plan.output_schema()?;

    // HAVING: resolved against the aggregate output, Agg nodes replaced by
    // their output columns.
    if let Some(h) = &sel.having {
        let hp = resolve_expr(h, &agg_schema, Some(&aggs))?;
        plan = plan.select(hp);
    }

    // Final projection in SELECT-list order.
    let mut exprs = Vec::new();
    let mut cols = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                // `SELECT *` with GROUP BY = all group cols + all aggregates.
                for (i, c) in agg_schema.columns().iter().enumerate() {
                    exprs.push(ScalarExpr::Col(i));
                    cols.push(c.clone());
                }
            }
            SelectItem::Expr { expr, alias } => {
                let se = resolve_expr(expr, &agg_schema, Some(&aggs))?;
                let dtype = se.check(&agg_schema)?;
                let name = alias.clone().unwrap_or_else(|| display_name(expr));
                cols.push(Column::nullable(name, dtype));
                exprs.push(se);
            }
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
        schema: Schema::new(cols),
    })
}

/// Human-readable default column name for an expression.
fn display_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_owned(),
        Expr::Agg { func, arg } => format!(
            "{}({})",
            func.trim_end_matches('*'),
            arg.as_deref().map(display_name).unwrap_or_else(|| "*".into())
        ),
        Expr::Lit(v) => v.to_string(),
        _ => "expr".to_owned(),
    }
}

/// Resolve a parsed expression against `schema`. When `aggs` is given,
/// aggregate calls resolve to the matching output column of the Aggregate
/// node (by structural identity); otherwise aggregates are illegal.
fn resolve_expr(
    e: &Expr,
    schema: &Schema,
    aggs: Option<&AggCollector>,
) -> Result<ScalarExpr> {
    Ok(match e {
        Expr::Column(name) => ScalarExpr::Col(schema.resolve(name)?),
        Expr::Lit(v) => ScalarExpr::Lit(v.clone()),
        Expr::Cmp(op, l, r) => ScalarExpr::cmp(
            *op,
            resolve_expr(l, schema, aggs)?,
            resolve_expr(r, schema, aggs)?,
        ),
        Expr::Between(x, lo, hi) => {
            let x1 = resolve_expr(x, schema, aggs)?;
            let lo = resolve_expr(lo, schema, aggs)?;
            let hi = resolve_expr(hi, schema, aggs)?;
            ScalarExpr::and(
                ScalarExpr::cmp(CmpOp::Ge, x1.clone(), lo),
                ScalarExpr::cmp(CmpOp::Le, x1, hi),
            )
        }
        Expr::Arith(op, l, r) => ScalarExpr::arith(
            *op,
            resolve_expr(l, schema, aggs)?,
            resolve_expr(r, schema, aggs)?,
        ),
        Expr::Neg(x) => ScalarExpr::Neg(Box::new(resolve_expr(x, schema, aggs)?)),
        Expr::And(l, r) => ScalarExpr::and(
            resolve_expr(l, schema, aggs)?,
            resolve_expr(r, schema, aggs)?,
        ),
        Expr::Or(l, r) => ScalarExpr::or(
            resolve_expr(l, schema, aggs)?,
            resolve_expr(r, schema, aggs)?,
        ),
        Expr::Not(x) => ScalarExpr::Not(Box::new(resolve_expr(x, schema, aggs)?)),
        Expr::IsNull(x, negated) => {
            let inner = ScalarExpr::IsNull(Box::new(resolve_expr(x, schema, aggs)?));
            if *negated {
                ScalarExpr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        Expr::Agg { func, arg } => {
            let Some(collector) = aggs else {
                return Err(PrismaError::Parse(
                    "aggregate not allowed in this clause".into(),
                ));
            };
            let pos = collector
                .entries
                .iter()
                .position(|(f, a, _)| f == func && a.as_ref() == arg.as_deref())
                .ok_or_else(|| {
                    PrismaError::Parse("aggregate not present in SELECT/HAVING".into())
                })?;
            let name = &collector.entries[pos].2;
            ScalarExpr::Col(schema.resolve(name)?)
        }
    })
}

/// Constant-fold an INSERT value expression.
fn const_eval(e: &Expr) -> Result<Value> {
    let se = resolve_expr(e, &Schema::empty(), None)
        .map_err(|_| PrismaError::Parse("INSERT values must be constants".into()))?;
    se.eval(&Tuple::unit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;
    use prisma_relalg::{eval, Relation};
    use prisma_types::{tuple, DataType};
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut c = HashMap::new();
        c.insert(
            "emp".to_owned(),
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("dept", DataType::Int),
                Column::new("sal", DataType::Double),
            ]),
        );
        c.insert(
            "dept".to_owned(),
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Str),
            ]),
        );
        c.insert(
            "edge".to_owned(),
            Schema::new(vec![
                Column::new("src", DataType::Int),
                Column::new("dst", DataType::Int),
            ]),
        );
        c
    }

    fn db() -> HashMap<String, Relation> {
        let c = catalog();
        let mut db = HashMap::new();
        db.insert(
            "emp".to_owned(),
            Relation::new(
                c["emp"].clone(),
                vec![
                    tuple![1, 10, 100.0],
                    tuple![2, 10, 200.0],
                    tuple![3, 20, 300.0],
                ],
            ),
        );
        db.insert(
            "dept".to_owned(),
            Relation::new(
                c["dept"].clone(),
                vec![tuple![10, "eng"], tuple![20, "sales"]],
            ),
        );
        db.insert(
            "edge".to_owned(),
            Relation::new(c["edge"].clone(), vec![tuple![1, 2], tuple![2, 3]]),
        );
        db
    }

    fn run(sql: &str) -> Relation {
        let stmt = parse_statement(sql).unwrap();
        let PlannedStatement::Query(plan) = plan(&stmt, &catalog()).unwrap() else {
            panic!("not a query");
        };
        eval(&plan, &db()).unwrap()
    }

    #[test]
    fn simple_select_star() {
        let out = run("SELECT * FROM emp WHERE sal >= 200");
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().arity(), 3);
    }

    #[test]
    fn join_via_where_is_correct_even_unoptimized() {
        let out = run(
            "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id AND d.name = 'eng'",
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().column(1).unwrap().name, "name");
    }

    #[test]
    fn explicit_join_on() {
        let out = run("SELECT e.id FROM emp e JOIN dept d ON e.dept = d.id ORDER BY e.id DESC");
        let ids: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 2, 1]);
    }

    #[test]
    fn aggregation_group_by_having() {
        let out = run(
            "SELECT dept, COUNT(*) AS n, AVG(sal) AS a FROM emp \
             GROUP BY dept HAVING n >= 2",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0], tuple![10, 2, 150.0]);
    }

    #[test]
    fn aggregate_over_expression() {
        let out = run("SELECT SUM(sal * 2) AS s2 FROM emp");
        assert_eq!(out.tuples()[0], tuple![1200.0]);
    }

    #[test]
    fn count_star_in_having_matches_select() {
        let out = run("SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) = 1");
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0], tuple![20]);
    }

    #[test]
    fn distinct_union_except() {
        let out = run("SELECT dept FROM emp UNION SELECT id FROM dept");
        assert_eq!(out.len(), 2); // {10, 20}
        let out = run("SELECT dept FROM emp EXCEPT SELECT id FROM dept WHERE name = 'eng'");
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0], tuple![20]);
        let out = run("SELECT DISTINCT dept FROM emp");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn closure_in_sql() {
        let out = run("SELECT * FROM CLOSURE(edge) c WHERE c.src = 1 ORDER BY c.dst");
        assert_eq!(out.len(), 2); // 1->2, 1->3
        assert_eq!(out.tuples()[1], tuple![1, 3]);
    }

    #[test]
    fn limit_and_order() {
        let out = run("SELECT id FROM emp ORDER BY sal DESC LIMIT 2");
        let ids: Vec<i64> = out
            .tuples()
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn between_desugars() {
        let out = run("SELECT id FROM emp WHERE sal BETWEEN 150 AND 250");
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0], tuple![2]);
    }

    #[test]
    fn dml_planning() {
        let c = catalog();
        let s = parse_statement("INSERT INTO dept VALUES (30, 'ops'), (40, 'hr')").unwrap();
        let p = plan(&s, &c).unwrap();
        assert!(matches!(p, PlannedStatement::Insert { ref rows, .. } if rows.len() == 2));
        // Arithmetic constants fold.
        let s = parse_statement("INSERT INTO dept VALUES (2 + 3, 'x')").unwrap();
        let PlannedStatement::Insert { rows, .. } = plan(&s, &c).unwrap() else {
            panic!()
        };
        assert_eq!(rows[0], tuple![5, "x"]);
        // Type mismatch rejected at plan time.
        let s = parse_statement("INSERT INTO dept VALUES ('x', 'y')").unwrap();
        assert!(plan(&s, &c).is_err());
        // Update resolves assignment ordinals.
        let s = parse_statement("UPDATE emp SET sal = sal * 1.1 WHERE dept = 10").unwrap();
        let PlannedStatement::Update { assignments, .. } = plan(&s, &c).unwrap() else {
            panic!()
        };
        assert_eq!(assignments[0].0, 2);
    }

    #[test]
    fn planner_errors() {
        let c = catalog();
        for sql in [
            "SELECT bogus FROM emp",
            "SELECT id FROM ghost",
            "SELECT id FROM emp WHERE COUNT(*) > 1",
            "SELECT id FROM emp UNION SELECT name FROM dept",
            "SELECT id FROM emp e, emp e WHERE 1 = 1",
            "SELECT id FROM emp HAVING id > 1",
            "SELECT id FROM emp ORDER BY nothere",
        ] {
            let stmt = parse_statement(sql).unwrap();
            assert!(plan(&stmt, &c).is_err(), "{sql} should fail");
        }
    }

    #[test]
    fn create_table_resolves_frag_column() {
        let c = catalog();
        let s = parse_statement(
            "CREATE TABLE t (a INT, b STRING) FRAGMENTED BY HASH(b) INTO 4",
        )
        .unwrap();
        let PlannedStatement::CreateTable {
            frag_column,
            frag_count,
            ..
        } = plan(&s, &c).unwrap()
        else {
            panic!()
        };
        assert_eq!(frag_column, Some(1));
        assert_eq!(frag_count, 4);
    }
}
