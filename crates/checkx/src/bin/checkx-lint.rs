//! Workspace linter for the checkx project invariants.
//!
//! ```text
//! checkx-lint [ROOT]              lint the workspace at ROOT (default .)
//! checkx-lint --wire-fingerprint  print the current wire-constant hash
//! ```
//!
//! Exits 1 when any finding survives (CI enforces zero), 2 on I/O
//! errors. Suppress an individual finding with
//! `// checkx:allow(<rule>)` on the same or preceding line.

use std::path::PathBuf;
use std::process::ExitCode;

use prisma_checkx::lint;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut print_fingerprint = false;
    for a in &args {
        match a.as_str() {
            "--wire-fingerprint" => print_fingerprint = true,
            "--help" | "-h" => {
                eprintln!("usage: checkx-lint [--wire-fingerprint] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }
    let sources = match lint::collect_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("checkx-lint: cannot read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if print_fingerprint {
        match sources
            .iter()
            .find(|f| f.path.ends_with("types/src/wire.rs"))
        {
            Some(wire) => {
                println!("{:016x}", lint::wire_constants_hash(&wire.lexed.toks));
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!("checkx-lint: wire.rs not found under {}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    let findings = lint::run_all(&sources);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!(
            "checkx-lint: {} files clean (sync-unwrap, wall-clock, gdhmsg-exhaustive, wire-fingerprint)",
            sources.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("checkx-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
