//! The project-invariant rules.
//!
//! Each rule is a pure function from lexed source to [`Finding`]s, so
//! the fixture tests drive them on string literals and the `checkx-lint`
//! binary drives them over the workspace — same code, no test double.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use super::lexer::{test_module_mask, Lexed, Tok, TokKind};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Rule id (the name `checkx:allow(...)` suppresses).
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Methods whose results must not be `unwrap()`/`expect()`ed in
/// non-test code: lock acquisition, channel endpoints, thread joins, and
/// wire/frame decoding. All of them fail for *environmental* reasons
/// (poisoning, disconnection, a corrupt frame off the interconnect) that
/// production code must handle or deliberately wave through with an
/// annotated `checkx:allow`.
const SYNC_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "write",
    "recv",
    "try_recv",
    "recv_timeout",
    "send",
    "try_send",
    "join",
    "decode",
    "decode_chunk",
    "decode_block",
];

/// `sync-unwrap`: flag `<sync method>(…).unwrap()` / `.expect(…)`
/// outside `#[cfg(test)]` modules.
pub fn sync_unwrap(path: &Path, lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mask = test_module_mask(toks);
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        // Pattern: `.` {unwrap|expect} `(` …
        if !(is_punct(toks, i, ".")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect"))
            && is_punct(toks, i + 2, "("))
        {
            continue;
        }
        // Receiver must be a call `…method(…)` ending right before the dot.
        let Some(close) = i.checked_sub(1) else {
            continue;
        };
        if !is_punct(toks, close, ")") {
            continue;
        }
        let Some(open) = match_backward(toks, close) else {
            continue;
        };
        let Some(method) = open.checked_sub(1) else {
            continue;
        };
        let m = &toks[method];
        if m.kind != TokKind::Ident || !SYNC_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        // Require a method call (`.method(...)`) so free functions named
        // `send`/`read` etc. don't trip the rule.
        if !method.checked_sub(1).is_some_and(|d| is_punct(toks, d, ".")) {
            continue;
        }
        let line = toks[i + 1].line;
        if lexed.allowed("sync-unwrap", line) {
            continue;
        }
        findings.push(Finding {
            path: path.to_path_buf(),
            line,
            rule: "sync-unwrap",
            message: format!(
                "`{}()` result passed to `{}()` in non-test code — handle the failure \
                 (shim locks return guards directly; channel/decode errors \
                 are real at runtime) or annotate `// checkx:allow(sync-unwrap)`",
                m.text,
                toks[i + 1].text
            ),
        });
    }
    findings
}

/// `wall-clock`: flag `Instant::now` / `SystemTime::now` in
/// simulation-deterministic code. The cost model, the planners, and the
/// codecs must produce bit-identical results for identical inputs;
/// reading a wall clock there makes replays diverge. (Timeout plumbing
/// in the live actor runtime is *not* in scope — the scope is chosen per
/// file by the driver.)
pub fn wall_clock(path: &Path, lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mask = test_module_mask(toks);
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = matches!(t.text.as_str(), "Instant" | "SystemTime")
            && is_punct(toks, i + 1, ":")
            && is_punct(toks, i + 2, ":")
            && toks.get(i + 3).is_some_and(|t| t.text == "now");
        if !hit || lexed.allowed("wall-clock", t.line) {
            continue;
        }
        findings.push(Finding {
            path: path.to_path_buf(),
            line: t.line,
            rule: "wall-clock",
            message: format!(
                "`{}::now` read in a simulation-deterministic path — thread \
                 a virtual clock / seed through instead, or annotate \
                 `// checkx:allow(wall-clock)` with the reason",
                t.text
            ),
        });
    }
    findings
}

/// `gdhmsg-exhaustive`: every variant of the `GdhMsg` protocol enum must
/// be named (`GdhMsg::Variant`) in the OFM actor's dispatch file, and in
/// the union of the actor-loop files. The OFM dispatch `match` has no
/// wildcard arm, so rustc forces totality *there*; this rule prevents
/// the cheap regression of adding a variant and "handling" it by adding
/// a `_ => {}` arm instead — the variant's name must literally appear.
pub fn gdhmsg_exhaustive(
    enum_file: (&Path, &Lexed),
    ofm_file: (&Path, &Lexed),
    actor_files: &[(&Path, &Lexed)],
) -> Vec<Finding> {
    let (enum_path, enum_lexed) = enum_file;
    let Some((enum_line, variants)) = enum_variants(&enum_lexed.toks, "GdhMsg") else {
        return vec![Finding {
            path: enum_path.to_path_buf(),
            line: 1,
            rule: "gdhmsg-exhaustive",
            message: "could not find `enum GdhMsg` — the rule's anchor moved".into(),
        }];
    };
    let used_in = |lexed: &Lexed| -> BTreeSet<String> {
        let toks = &lexed.toks;
        let mut used = BTreeSet::new();
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "GdhMsg"
                && is_punct(toks, i + 1, ":")
                && is_punct(toks, i + 2, ":")
            {
                if let Some(v) = toks.get(i + 3) {
                    if v.kind == TokKind::Ident {
                        used.insert(v.text.clone());
                    }
                }
            }
        }
        used
    };
    let ofm_used = used_in(ofm_file.1);
    let mut union_used = ofm_used.clone();
    for (_, lexed) in actor_files {
        union_used.extend(used_in(lexed));
    }
    let mut findings = Vec::new();
    for v in &variants {
        if !ofm_used.contains(v) {
            findings.push(Finding {
                path: ofm_file.0.to_path_buf(),
                line: enum_line,
                rule: "gdhmsg-exhaustive",
                message: format!(
                    "GdhMsg::{v} is never named in the OFM actor dispatch \
                     ({}) — handle it explicitly, wildcard arms hide \
                     protocol drift",
                    ofm_file.0.display()
                ),
            });
        } else if !union_used.contains(v) {
            findings.push(Finding {
                path: enum_path.to_path_buf(),
                line: enum_line,
                rule: "gdhmsg-exhaustive",
                message: format!("GdhMsg::{v} is handled by no actor loop"),
            });
        }
    }
    findings
}

/// Locate `enum <name> { … }` and collect its variant idents. Returns
/// the enum's line and variants; fields inside variant payloads are at
/// brace/paren depth > 1 and skipped, as are attributes.
fn enum_variants(toks: &[Tok], name: &str) -> Option<(u32, Vec<String>)> {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "enum"
            && toks[i + 1].text == name
            && is_punct(toks, i + 2, "{")
        {
            break;
        }
        i += 1;
    }
    if i + 2 >= toks.len() {
        return None;
    }
    let line = toks[i].line;
    let mut variants = Vec::new();
    let mut depth = 1usize; // inside the enum braces
    let mut j = i + 3;
    let mut at_variant = true; // next depth-1 ident is a variant name
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") | (TokKind::Punct, "(") => {
                depth += 1;
                j += 1;
            }
            (TokKind::Punct, "}") | (TokKind::Punct, ")") => {
                depth -= 1;
                j += 1;
            }
            (TokKind::Punct, "#") if depth == 1 => {
                // Attribute: skip the bracketed group.
                j += 1;
                if is_punct(toks, j, "[") {
                    let mut d = 0usize;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            (TokKind::Punct, ",") if depth == 1 => {
                at_variant = true;
                j += 1;
            }
            (TokKind::Ident, _) if depth == 1 && at_variant => {
                variants.push(t.text.clone());
                at_variant = false;
                j += 1;
            }
            _ => j += 1,
        }
    }
    Some((line, variants))
}

/// `wire-fingerprint`: hash the wire-format constant declarations
/// (`MAGIC`, `HEADER_LEN`, `TAG_*`, `VTAG_*`) and compare against the
/// pinned `// checkx:wire-fingerprint <hex>` directive in the same file.
/// A mismatch means the wire format changed without touching the version
/// tag — the reviewer-visible act this rule exists to force.
pub fn wire_fingerprint(path: &Path, lexed: &Lexed) -> Vec<Finding> {
    let computed = format!("{:016x}", wire_constants_hash(&lexed.toks));
    let mut findings = Vec::new();
    match lexed.fingerprints.as_slice() {
        [] => findings.push(Finding {
            path: path.to_path_buf(),
            line: 1,
            rule: "wire-fingerprint",
            message: format!(
                "no `// checkx:wire-fingerprint` directive next to the \
                 version tag; pin the current constants with \
                 `// checkx:wire-fingerprint {computed}`"
            ),
        }),
        [(line, pinned)] if *pinned != computed => findings.push(Finding {
            path: path.to_path_buf(),
            line: *line,
            rule: "wire-fingerprint",
            message: format!(
                "wire constants changed (fingerprint {computed}, pinned \
                 {pinned}) — bump the `MAGIC` version tag for incompatible \
                 changes, then re-pin the fingerprint"
            ),
        }),
        [_] => {}
        many => findings.push(Finding {
            path: path.to_path_buf(),
            line: many[1].0,
            rule: "wire-fingerprint",
            message: "multiple wire-fingerprint directives; keep exactly one".into(),
        }),
    }
    findings
}

/// FNV-1a over the token text of every wire-constant declaration
/// (`const <NAME>: … = … ;` where NAME is `MAGIC`, `HEADER_LEN`, or
/// `TAG_`/`VTAG_`-prefixed), tokens joined with single spaces so
/// reformatting never changes the hash.
pub fn wire_constants_hash(toks: &[Tok]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |s: &str| {
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b' ');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_decl = toks[i].kind == TokKind::Ident
            && toks[i].text == "const"
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident
                    && (t.text == "MAGIC"
                        || t.text == "HEADER_LEN"
                        || t.text.starts_with("TAG_")
                        || t.text.starts_with("VTAG_"))
            });
        if !is_decl {
            i += 1;
            continue;
        }
        // Hash to the statement-terminating `;` — the one at bracket
        // depth 0, not the array-length `;` inside `&[u8; 4]`.
        let mut depth = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            push(&t.text);
            i += 1;
        }
        push(";");
        i += 1;
    }
    h
}

fn is_punct(toks: &[Tok], i: usize, p: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
}

/// Index of the `(` matching the `)` at `close`.
fn match_backward(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        match (toks[i].kind, toks[i].text.as_str()) {
            (TokKind::Punct, ")") => depth += 1,
            (TokKind::Punct, "(") => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i = i.checked_sub(1)?;
    }
}
