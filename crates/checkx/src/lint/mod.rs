//! Project-invariant lint: lexer, rules, and the workspace driver the
//! `checkx-lint` binary wraps.

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use lexer::{lex, Lexed};
pub use rules::{
    gdhmsg_exhaustive, sync_unwrap, wall_clock, wire_constants_hash, wire_fingerprint, Finding,
};

/// Crates whose sources must be simulation-deterministic: the data
/// model and codecs, storage, the planners, the cost-model simulator,
/// the workload generator, and the (seeded) fault injector. These are
/// the components whose outputs are asserted bit-identical across runs
/// and replicas; the live actor runtime (`gdh`, `ofm`, `poolx`, `core`)
/// legitimately reads wall clocks for timeouts and metrics and is out of
/// scope.
const DETERMINISTIC_CRATES: &[&str] = &[
    "types",
    "storage",
    "stable",
    "relalg",
    "optimizer",
    "sqlfe",
    "prismalog",
    "multicomputer",
    "workload",
    "faultx",
];

/// Where the wire-format constants (and their pinned fingerprint) live.
const WIRE_FILE: &str = "crates/types/src/wire.rs";

/// One source file staged for linting.
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Lexed content.
    pub lexed: Lexed,
}

/// Collect every lintable `.rs` file under `root` (the workspace
/// checkout): `crates/*/src/**`. Deliberately excluded:
///
/// * `crates/shims/` — vendored stand-ins for third-party crates, held
///   to the upstream API (poisoning-`unwrap_or_else` patterns and
///   timeout clocks are *their* contract, not project style);
/// * `tests/`, `benches/`, `examples/` — the rules' "outside tests"
///   scope, plus this crate's own deliberately-violating lint fixtures.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() || entry.file_name() == "shims" {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            walk(&src, root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk(&path, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let content = std::fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.push(SourceFile {
                path: rel,
                lexed: lex(&content),
            });
        }
    }
    Ok(())
}

/// True when `path` (workspace-relative) belongs to a crate whose
/// sources must be simulation-deterministic.
pub fn in_deterministic_scope(path: &Path) -> bool {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    comps.next().is_some_and(|c| c == "crates")
        && comps.next().is_some_and(|c| DETERMINISTIC_CRATES.contains(&c.as_ref()))
}

/// Run every rule over the staged sources. This is the whole linter:
/// the binary only adds I/O and an exit code.
pub fn run_all(sources: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in sources {
        findings.extend(sync_unwrap(&f.path, &f.lexed));
        if in_deterministic_scope(&f.path) {
            findings.extend(wall_clock(&f.path, &f.lexed));
        }
        if f.path == Path::new(WIRE_FILE) {
            findings.extend(wire_fingerprint(&f.path, &f.lexed));
        }
    }
    // The GdhMsg protocol rule needs the enum file plus the actor loops.
    let find = |name: &str| sources.iter().find(|f| f.path == Path::new(name));
    let enum_file = find("crates/gdh/src/message.rs");
    if let Some(enum_file) = enum_file {
        let actors: Vec<(&Path, &Lexed)> = [
            "crates/gdh/src/gdh.rs",
            "crates/gdh/src/exec.rs",
            "crates/gdh/src/txn.rs",
            "crates/gdh/src/message.rs",
        ]
        .iter()
        .filter_map(|n| find(n).map(|f| (f.path.as_path(), &f.lexed)))
        .collect();
        findings.extend(gdhmsg_exhaustive(
            (enum_file.path.as_path(), &enum_file.lexed),
            (enum_file.path.as_path(), &enum_file.lexed),
            &actors,
        ));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}
