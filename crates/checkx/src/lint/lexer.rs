//! A minimal Rust lexer — just enough to lint token *sequences* without
//! tripping over comments, strings, or lifetimes.
//!
//! This is deliberately not a parser: the project-invariant rules all
//! match short token patterns (`.` `unwrap` `(`, `Instant` `::` `now`,
//! `GdhMsg` `::` `Variant`), and a lexer that correctly skips string and
//! comment content is exactly the precision they need. Two comment
//! dialects carry lint metadata and are surfaced instead of skipped:
//!
//! * `// checkx:allow(<rule>)` — suppress findings of `<rule>` on the
//!   same line and the following line (so the directive works both
//!   trailing and as its own line above the code);
//! * `// checkx:wire-fingerprint <hex>` — the pinned wire-constant
//!   fingerprint checked by the `wire-fingerprint` rule.

use std::collections::{HashMap, HashSet};

/// Token class — enough to distinguish structure from content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive tokens: `::` is `:` `:`).
    Punct,
    /// String / char / numeric literal (content collapsed).
    Lit,
    /// Lifetime marker (`'a`), distinct from char literals.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class. A whole string literal is *one* [`TokKind::Lit`]
    /// token, so its content can never match a multi-token rule pattern
    /// (which require [`TokKind::Ident`]/[`TokKind::Punct`] tokens).
    pub kind: TokKind,
    /// Source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A lexed file: the token stream plus lint metadata mined from
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and string contents stripped.
    pub toks: Vec<Tok>,
    /// Line → rules suppressed on that line (from `checkx:allow`).
    pub allows: HashMap<u32, HashSet<String>>,
    /// `checkx:wire-fingerprint` directives: (line, pinned hex value).
    pub fingerprints: Vec<(u32, String)>,
}

impl Lexed {
    /// True when findings of `rule` are suppressed at `line` — an allow
    /// on the same line (trailing comment) or the line above (directive
    /// on its own line).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|set| set.contains(rule)))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src`. Unterminated constructs lex as best-effort to end of file
/// — the linter must never panic on the code it inspects.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let comment: String = b[start..i].iter().collect();
                mine_comment(&comment, line, &mut out);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comment, nesting honored as rustc does.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (start, start_line) = (i, line);
                i = skip_string(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (start, start_line) = (i, line);
                i = skip_raw_or_byte_string(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime iff an ident follows and the char after the
                // ident is not a closing quote ('a vs 'a').
                let mut j = i + 1;
                if j < b.len() && is_ident_start(b[j]) {
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if b.get(j) != Some(&'\'') {
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: b[i + 1..j].iter().collect(),
                            line,
                        });
                        i = j;
                        continue;
                    }
                }
                // Char literal: scan to the closing quote, escapes aware.
                let start = i;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        '\n' => break, // malformed; don't eat the file
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i.min(b.len())].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_continue(b[i]) || b[i] == '.') {
                    // `1.0` is one literal but `1.max(2)` is not: only
                    // consume a dot followed by a digit.
                    if b[i] == '.' && !b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Plain string literal: from the opening quote past the closing one.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// True at `r"`, `r#"`, `b"`, `br"`, `br#"` … — the raw/byte string
/// openers (plain `b'x'` byte chars fall through to the char lexer).
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    b[i] == 'b' && b.get(j) == Some(&'"')
}

fn skip_raw_or_byte_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b[i] == 'b' {
        i += 1;
    }
    let mut hashes = 0;
    if b.get(i) == Some(&'r') {
        i += 1;
        while b.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        while i < b.len() {
            if b[i] == '\n' {
                *line += 1;
                i += 1;
            } else if b[i] == '"' && (1..=hashes).all(|k| b.get(i + k) == Some(&'#')) {
                return i + 1 + hashes;
            } else {
                i += 1;
            }
        }
        return i;
    }
    // b"..." — escape rules of a plain string.
    skip_string(b, i, line)
}

/// Extract `checkx:` directives from one line comment.
fn mine_comment(comment: &str, line: u32, out: &mut Lexed) {
    if let Some(rest) = comment.split("checkx:allow(").nth(1) {
        if let Some(rules) = rest.split(')').next() {
            let entry = out.allows.entry(line).or_default();
            for rule in rules.split(',') {
                entry.insert(rule.trim().to_string());
            }
        }
    }
    if let Some(rest) = comment.split("checkx:wire-fingerprint").nth(1) {
        if let Some(value) = rest.split_whitespace().next() {
            out.fingerprints.push((line, value.to_string()));
        }
    }
}

/// Token-index ranges lying inside `#[cfg(test)] mod … { … }` blocks —
/// code the style rules must ignore (the "outside tests" half of their
/// contract). Returns a boolean mask over `toks`.
pub fn test_module_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            // Find the mod's opening brace, then mask to its close.
            let mut j = i;
            while j < toks.len() && !(toks[j].kind == TokKind::Punct && toks[j].text == "{") {
                j += 1;
            }
            let mut depth = 0usize;
            while j < toks.len() {
                match (toks[j].kind, toks[j].text.as_str()) {
                    (TokKind::Punct, "{") => depth += 1,
                    (TokKind::Punct, "}") => {
                        depth -= 1;
                        if depth == 0 {
                            mask[j] = true;
                            break;
                        }
                    }
                    _ => {}
                }
                mask[j] = true;
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Match `# [ cfg ( test ) ]` or `# [ cfg ( test , … ) ]` at `i`,
/// immediately followed (after the `]`) by `mod`.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    let texts: Vec<&str> = toks[i..].iter().take(6).map(|t| t.text.as_str()).collect();
    if texts.len() < 6 || texts[..5] != ["#", "[", "cfg", "(", "test"] {
        return false;
    }
    // Walk to the closing `]` of the attribute, then require `mod`.
    let mut j = i + 5;
    let mut depth = 1usize; // inside the `(`
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    // toks[j] should be `]`.
    if toks.get(j).map(|t| t.text.as_str()) != Some("]") {
        return false;
    }
    toks.get(j + 1)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == "mod")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_lifetimes() {
        let lexed = lex(concat!(
            "fn f<'a>(x: &'a str) { // lock().unwrap() in a comment\n",
            "  let s = \"lock().unwrap()\"; let c = 'x'; let r = r#\"\"unwrap\"\"#;\n",
            "}\n"
        ));
        // Nothing from comment or string content leaks into the stream.
        assert!(!lexed.toks.iter().any(|t| t.text == "unwrap"));
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let lexed = lex("let a = 1; // checkx:allow(sync-unwrap)\nlet b = 2;\nlet c = 3;\n");
        assert!(lexed.allowed("sync-unwrap", 1));
        assert!(lexed.allowed("sync-unwrap", 2));
        assert!(!lexed.allowed("sync-unwrap", 3));
        assert!(!lexed.allowed("wall-clock", 1));
    }

    #[test]
    fn fingerprint_directive_is_mined() {
        let lexed = lex("// checkx:wire-fingerprint deadbeef\nconst MAGIC: u8 = 1;\n");
        assert_eq!(lexed.fingerprints, vec![(1, "deadbeef".to_string())]);
    }

    #[test]
    fn test_modules_are_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.lock().unwrap(); }\n}\nfn also_live() {}\n";
        let lexed = lex(src);
        let mask = test_module_mask(&lexed.toks);
        let unwrap_idx = lexed
            .toks
            .iter()
            .position(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert!(mask[unwrap_idx]);
        let live_idx = lexed
            .toks
            .iter()
            .position(|t| t.text == "also_live")
            .expect("fn after tests");
        assert!(!mask[live_idx]);
    }
}
