//! Concrete systems-under-test for the [`crate::explore`] enumerator.
//!
//! Two families:
//!
//! * **Deque linearizability** ([`DequeState`]): every op runs against
//!   the real `crossbeam::deque` shim *and* a sequential [`SpecDeque`]
//!   oracle, in the same schedule order, and the results must agree.
//!   Because the shim's ops are atomic (mutex-held for their whole
//!   body), the schedule order *is* the linearization order — so a
//!   single mismatch anywhere in an exhaustive sweep refutes
//!   linearizability, and zero mismatches across all schedules proves it
//!   at the explored bounds.
//! * **Pool scheduling** ([`PoolState`]): the real worker-pool
//!   acquisition discipline, driven thread-free through
//!   [`prisma_poolx::PoolHarness`] (the production `next_task` + task
//!   bookkeeping code, not a model). Invariants checked over every
//!   interleaving: no job lost, no job run twice, and a panicking job
//!   still completes its batch with the panic flag raised.
//!
//! [`StaleEmptyStealer`] is the *intentionally buggy* deque variant the
//! test-suite uses to prove the explorer can refute, not just confirm:
//! it caches one "observed empty" result — a plausible optimization that
//! is only wrong under schedules where the owner pushes *after* the
//! failed steal, exactly the kind of ordering bug that survives unit
//! tests and dies under exhaustive interleaving.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::deque::{Steal, Stealer, Worker};
use prisma_poolx::{BatchHandle, PoolHarness};

use crate::explore::Op;

/// Sequential specification of the pool's deque: owner end is LIFO,
/// thief end is FIFO, over one `VecDeque`.
#[derive(Default)]
pub struct SpecDeque {
    q: VecDeque<u32>,
}

impl SpecDeque {
    /// Owner push (hot end).
    pub fn push(&mut self, v: u32) {
        self.q.push_back(v);
    }

    /// Owner pop — most recent push.
    pub fn pop(&mut self) -> Option<u32> {
        self.q.pop_back()
    }

    /// Thief steal — oldest entry.
    pub fn steal(&mut self) -> Steal<u32> {
        match self.q.pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }
}

/// The thief end under test: the real [`Stealer`] or a buggy variant.
pub trait StealEnd {
    /// Attempt to take the oldest entry.
    fn steal(&mut self) -> Steal<u32>;
}

impl StealEnd for Stealer<u32> {
    fn steal(&mut self) -> Steal<u32> {
        Stealer::steal(self)
    }
}

/// Deliberately broken stealer: remembers having seen the deque empty
/// and short-circuits every later attempt. Sound if the deque could
/// never grow again; wrong the moment a push races in after the miss.
/// Exists so `tests/explorer.rs` can prove the enumerator detects real
/// schedule-dependent bugs (and pins *which* schedule shape exposes it).
pub struct StaleEmptyStealer {
    inner: Stealer<u32>,
    saw_empty: bool,
}

impl StaleEmptyStealer {
    /// Wrap a real stealer with the stale-empty cache.
    pub fn new(inner: Stealer<u32>) -> StaleEmptyStealer {
        StaleEmptyStealer {
            inner,
            saw_empty: false,
        }
    }
}

impl StealEnd for StaleEmptyStealer {
    fn steal(&mut self) -> Steal<u32> {
        if self.saw_empty {
            return Steal::Empty;
        }
        let r = self.inner.steal();
        if r.is_empty() {
            self.saw_empty = true;
        }
        r
    }
}

/// Shared state of one deque-vs-spec replay.
pub struct DequeState<St: StealEnd> {
    worker: Worker<u32>,
    thief: St,
    spec: SpecDeque,
    /// Mismatches between implementation and oracle, in schedule order.
    pub violations: Vec<String>,
}

/// Fresh state over the real stealer.
pub fn real_deque() -> DequeState<Stealer<u32>> {
    let worker = Worker::new_lifo();
    let thief = worker.stealer();
    DequeState {
        worker,
        thief,
        spec: SpecDeque::default(),
        violations: Vec::new(),
    }
}

/// Fresh state over the intentionally buggy stealer.
pub fn buggy_deque() -> DequeState<StaleEmptyStealer> {
    let worker = Worker::new_lifo();
    let thief = StaleEmptyStealer::new(worker.stealer());
    DequeState {
        worker,
        thief,
        spec: SpecDeque::default(),
        violations: Vec::new(),
    }
}

impl<St: StealEnd + 'static> DequeState<St> {
    /// Op: owner pushes `v` (implementation and oracle agree by
    /// construction — pushes return nothing).
    pub fn op_push(v: u32) -> Op<Self> {
        Box::new(move |s| {
            s.worker.push(v);
            s.spec.push(v);
        })
    }

    /// Op: owner pops; result must match the oracle.
    pub fn op_pop() -> Op<Self> {
        Box::new(|s| {
            let got = s.worker.pop();
            let want = s.spec.pop();
            if got != want {
                s.violations
                    .push(format!("pop returned {got:?}, spec says {want:?}"));
            }
        })
    }

    /// Op: thief steals; result must match the oracle.
    pub fn op_steal() -> Op<Self> {
        Box::new(|s| {
            let got = s.thief.steal();
            let want = s.spec.steal();
            if got != want {
                s.violations
                    .push(format!("steal returned {got:?}, spec says {want:?}"));
            }
        })
    }

    /// Invariant check for [`crate::explore::explore`]: no recorded
    /// mismatch, and the implementation drained iff the oracle did.
    pub fn check(s: &Self) -> Result<(), String> {
        if let Some(v) = s.violations.first() {
            return Err(v.clone());
        }
        let got = s.worker.len();
        let want = s.spec.q.len();
        if got != want {
            return Err(format!("{got} tasks left in deque, spec says {want}"));
        }
        Ok(())
    }
}

/// Shared state of one pool replay: a thread-free harness over the real
/// acquisition discipline, one submitted batch, and a per-job run
/// counter the jobs bump.
pub struct PoolState {
    /// The harness — virtual workers stepped by the explorer.
    pub harness: PoolHarness,
    /// Completion state of the submitted batch.
    pub handle: BatchHandle,
    /// `runs[i]` = times job `i` has executed (must end at exactly 1).
    pub runs: Arc<Vec<AtomicUsize>>,
}

/// Fresh pool state: `workers` virtual workers with `jobs` counting jobs
/// scattered round-robin; job `panic_job` (if any) panics after
/// counting. Panics are caught by the pool's own task bookkeeping —
/// the same `catch_unwind` path the threaded pool uses.
pub fn pool_state(workers: usize, jobs: usize, panic_job: Option<usize>) -> PoolState {
    let runs: Arc<Vec<AtomicUsize>> = Arc::new((0..jobs).map(|_| AtomicUsize::new(0)).collect());
    let mut harness = PoolHarness::new(workers);
    let batch: Vec<Box<dyn FnOnce() + Send + 'static>> = (0..jobs)
        .map(|i| {
            let runs = Arc::clone(&runs);
            Box::new(move || {
                runs[i].fetch_add(1, Ordering::Relaxed);
                if panic_job == Some(i) {
                    panic!("checkx: seeded job panic");
                }
            }) as Box<dyn FnOnce() + Send + 'static>
        })
        .collect();
    let handle = harness.submit(batch);
    PoolState {
        harness,
        handle,
        runs,
    }
}

/// Op: virtual worker `w` runs one acquisition round (drain → pop →
/// steal → execute). A round that executes a seeded panicking job is
/// contained here — the panic is already caught inside the pool's
/// `run_task`, so stepping never unwinds into the explorer.
pub fn op_step(w: usize) -> Op<PoolState> {
    Box::new(move |s| {
        // Defensive double containment: the harness must not leak job
        // panics, and if it ever did, the violation should surface as a
        // check failure on this schedule, not abort the whole sweep.
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| s.harness.step(w)));
    })
}

/// Invariant check over a completed pool replay, parameterized by
/// whether a panic was seeded: every job ran exactly once, the batch
/// reached `remaining == 0` (what unblocks `WorkerPool::run`), and the
/// panic flag is raised iff a panic was seeded.
pub fn check_pool(expect_panic: bool) -> impl Fn(&PoolState) -> Result<(), String> {
    move |s| {
        for (i, r) in s.runs.iter().enumerate() {
            let n = r.load(Ordering::Relaxed);
            if n != 1 {
                return Err(format!("job {i} ran {n} times (want exactly 1)"));
            }
        }
        if s.handle.remaining() != 0 {
            return Err(format!(
                "{} jobs unaccounted for in the batch",
                s.handle.remaining()
            ));
        }
        if s.harness.has_work() {
            return Err("queues non-empty after all jobs accounted".into());
        }
        if s.handle.panicked() != expect_panic {
            return Err(format!(
                "panicked flag is {}, want {expect_panic}",
                s.handle.panicked()
            ));
        }
        Ok(())
    }
}
